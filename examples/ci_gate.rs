//! The CI-gate workflow (paper Fig 3, left half): generate a small
//! monorepo, seed the suppression list with a trial run, then gate two
//! PRs — one clean, one that introduces a new leak.
//!
//! Run with: `cargo run --example ci_gate`

use corpus::{Corpus, CorpusConfig, KindMix};
use leakcore::ci::{CiConfig, CiGate};

fn main() {
    // A legacy repo that already contains leaks (as every repo does).
    let legacy = Corpus::generate(CorpusConfig {
        packages: 120,
        leak_rate: 0.3,
        seed: 1,
        mix: KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    println!(
        "legacy repo: {} packages, {} known-injected leak sites",
        legacy.packages.len(),
        legacy.truth.len()
    );

    // Offline trial run: collect every pre-existing leaking goroutine
    // into the suppression list so the rollout does not block everyone.
    let mut gate = CiGate::new(CiConfig::default());
    let legacy_leaks = gate.trial_run(&legacy);
    println!("trial run: suppressed {legacy_leaks} legacy leaking goroutine functions\n");

    // PR 1: a clean package.
    let clean_pr = Corpus::generate(CorpusConfig {
        packages: 1,
        leak_rate: 0.0,
        seed: 77,
        mix: KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    let r1 = gate.check_pr(&[&clean_pr.packages[0]]);
    println!(
        "PR #1 (clean): {}",
        if r1.passed() { "MERGED" } else { "BLOCKED" }
    );
    assert!(r1.passed());

    // PR 2: introduces a fresh goroutine leak.
    let leaky_pr = Corpus::generate(CorpusConfig {
        packages: 1,
        leak_rate: 1.0,
        seed: 78,
        mix: KindMix {
            mp: 1.0,
            sm: 0.0,
            both: 0.0,
        },
        ..CorpusConfig::default()
    });
    let r2 = gate.check_pr(&[&leaky_pr.packages[0]]);
    println!(
        "PR #2 (leaky): {}",
        if r2.passed() { "MERGED" } else { "BLOCKED" }
    );
    for outcome in &r2.outcomes {
        if !outcome.verdict.passed() {
            print!("{}", outcome.verdict.render());
        }
    }
    assert!(!r2.passed(), "the gate must block the new leak");
    println!("\nOK: legacy leaks suppressed, new leaks blocked.");
}
