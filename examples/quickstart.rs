//! Quickstart: write a leaky mini-Go program, run it on the simulated
//! runtime, and catch the leak with goleak — the 60-second tour.
//!
//! Run with: `cargo run --example quickstart`

use goleak::{find_with_retry, Options};
use gosim::Runtime;

fn main() {
    // The paper's Listing 1: if getBaseCost fails, the discount sender
    // blocks forever on the unbuffered channel.
    let src = r#"
package transactions

func ComputeCost(err bool) {
	ch := make(chan int)
	go func() {
		sim.Work(3)
		ch <- 1
	}()
	if err {
		return
	}
	disc := <-ch
	_ = disc
}
"#;
    let prog = minigo::compile(src, "transactions/cost.go").expect("mini-Go compiles");

    // Run the error path on a deterministic runtime.
    let mut rt = Runtime::with_seed(42);
    prog.spawn_func(&mut rt, "transactions.ComputeCost", vec![true.into()])
        .expect("function exists");
    rt.run_until_blocked(100_000);

    // goleak at "test end": anything still alive is suspect.
    let leaks = find_with_retry(&mut rt, &Options::default());
    println!("goleak found {} leak(s):\n", leaks.len());
    for leak in &leaks {
        println!("  {leak}");
        println!("  retained: {} bytes\n", leak.retained_bytes);
    }

    // The full pprof-style profile, exactly what LeakProf consumes.
    println!("{}", rt.goroutine_profile("quickstart").render());

    assert_eq!(leaks.len(), 1);
    assert_eq!(
        leaks[0].blocking_frame.as_ref().unwrap().loc.to_string(),
        "transactions/cost.go:8"
    );
    println!("OK: the leak was pinned to transactions/cost.go:8 (the blocked send).");
}
