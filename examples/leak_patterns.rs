//! A guided tour of every goroutine-leak pattern from the paper
//! (Sections VI-A/B/C and VII-A), each run twice: the leaky variant and
//! its fix, with the runtime verdict printed side by side.
//!
//! Run with: `cargo run --example leak_patterns`

use corpus::patterns::{render_benign, render_leaky, BenignPattern, LeakPattern};
use gosim::rng::SplitMix64;
use gosim::Runtime;

fn run(source: &str, path: &str, test_src: &str, test_path: &str, test_func: &str) -> usize {
    let prog = minigo::compile_many(&[
        (source.to_string(), path.to_string()),
        (test_src.to_string(), test_path.to_string()),
    ])
    .expect("scenario compiles");
    let pkg = path.split('/').next().unwrap();
    let mut rt = Runtime::with_seed(9);
    prog.spawn_func(&mut rt, &format!("{pkg}.{test_func}"), vec![])
        .unwrap();
    rt.advance(5_000, 30_000);
    rt.live_count()
}

fn main() {
    let mut rng = SplitMix64::new(2024);
    let pairs: &[(LeakPattern, BenignPattern, &str)] = &[
        (
            LeakPattern::PrematureReturn,
            BenignPattern::BufferedHandoff,
            "buffer the channel",
        ),
        (
            LeakPattern::Timeout,
            BenignPattern::TimeoutFixed,
            "capacity-one channel",
        ),
        (
            LeakPattern::NCast,
            BenignPattern::GatherCap,
            "capacity = len(items)",
        ),
        (
            LeakPattern::UnclosedRange,
            BenignPattern::ClosedPipeline,
            "close(ch) after produce",
        ),
        (
            LeakPattern::ContractViolation,
            BenignPattern::WorkerWithStop,
            "always call Stop",
        ),
        (
            LeakPattern::CtxContractViolation,
            BenignPattern::HeartbeatCtx,
            "cancel the context",
        ),
    ];

    println!(
        "{:<24} | leaked goroutines | fix                     | after fix",
        "pattern"
    );
    println!("{}", "-".repeat(90));
    for (i, (leak, fix, fix_desc)) in pairs.iter().enumerate() {
        let l = render_leaky(*leak, "demo", i, &mut rng);
        let leaked = run(
            &l.source,
            &l.path,
            &l.test_source,
            &l.test_path,
            &l.test_func,
        );
        let b = render_benign(*fix, "demofix", i, &mut rng);
        let fixed = run(
            &b.source,
            &b.path,
            &b.test_source,
            &b.test_path,
            &b.test_func,
        );
        println!(
            "{:<24} | {leaked:>17} | {fix_desc:<23} | {fixed:>9}",
            format!("{leak:?}")
        );
        assert!(leaked > 0, "{leak:?} must leak");
        assert_eq!(fixed, 0, "{fix:?} must be clean");
    }
    println!("\nEach leaky variant leaves goroutines blocked forever; each remediation");
    println!("from the paper brings the count to zero.");
}
