//! The production-monitoring workflow (paper Fig 3, right half): run a
//! small fleet with one leaky service, sweep goroutine profiles daily,
//! and let LeakProf threshold, filter, rank, and route the alert.
//!
//! Run with: `cargo run --example production_monitor`

use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};
use leakprof::{Config, LeakProf};

fn main() {
    let mut f = Fleet::new(FleetConfig {
        ticks_per_day: 48,
        ..FleetConfig::default()
    });

    // A leaky payments service and a healthy geo service.
    let mut pay = default_service(
        "payments",
        4,
        handlers::timeout_leak("payments", 16_000),
        handlers::timeout_fixed("payments", 16_000),
    );
    pay.arg = HandlerArg::NilCtx;
    pay.leak_activation = 0.5;
    f.add_service(pay);

    let mut geo = default_service(
        "geo",
        4,
        handlers::timeout_fixed("geo", 16_000),
        handlers::timeout_fixed("geo", 16_000),
    );
    geo.arg = HandlerArg::NilCtx;
    geo.fix_day = Some(0); // healthy from day zero
    f.add_service(geo);

    // LeakProf: threshold scaled for the fleet's 1:8 sampling, AST
    // filter fed with the deployed handler sources, owners registered.
    let mut lp = LeakProf::new(Config {
        threshold: 50,
        ast_filter: true,
        top_n: 5,
    });
    for (src, path) in f.handler_sources() {
        lp.index_source(&src, &path).expect("handler sources parse");
    }
    lp.add_owner("payments/", "team-payments");
    lp.add_owner("geo/", "team-geo");

    for day in 1..=3 {
        f.run_days(1);
        let profiles = f.collect_profiles();
        let report = lp.analyze(&profiles);
        println!("── day {day}: {} profiles swept ──", profiles.len());
        print!("{}", report.render());
        if day == 3 {
            assert_eq!(report.suspects.len(), 1, "exactly the payments leak");
            let s = &report.suspects[0];
            assert_eq!(s.owner.as_deref(), Some("team-payments"));
            assert_eq!(s.stats.op.loc.to_string(), "payments/handler.go:10");
        }
    }
    println!("OK: the alert names the blocked send, its fleet impact, and its owner.");
}
