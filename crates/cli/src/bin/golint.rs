//! `golint` — run the static partial-deadlock analyzers over `.go` files.
//!
//! ```text
//! golint <files-or-dirs...> [--tool pathcheck|absint|modelcheck|rangeclose|interproc|all]
//!                           [--wrappers]   # recognize wrapper spawns
//! ```
//!
//! Exit code: 0 when no findings, 1 when findings exist, 2 on errors.

use std::process::ExitCode;

use leaklab_cli::{collect_go_files, flag, read_source, split_flags};
use staticlint::absint::{AbsInt, AbsIntConfig};
use staticlint::modelcheck::ModelCheck;
use staticlint::pathcheck::{PathCheck, PathCheckConfig};
use staticlint::{Analyzer, Interproc, RangeClose};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (pos, flags) = split_flags(args);
    let files = collect_go_files(&pos);
    if files.is_empty() {
        eprintln!("usage: golint <files-or-dirs...> [--tool NAME] [--wrappers]");
        return ExitCode::from(2);
    }
    let tool = flag(&flags, "tool").unwrap_or("all");
    let wrappers = flag(&flags, "wrappers").is_some();

    let mut analyzers: Vec<Box<dyn Analyzer>> = Vec::new();
    if tool == "all" || tool == "pathcheck" {
        analyzers.push(Box::new(PathCheck {
            config: PathCheckConfig {
                follow_wrappers: wrappers,
            },
        }));
    }
    if tool == "all" || tool == "absint" {
        analyzers.push(Box::new(AbsInt {
            config: AbsIntConfig {
                follow_wrappers: wrappers,
            },
        }));
    }
    if tool == "all" || tool == "modelcheck" {
        analyzers.push(Box::new(ModelCheck::new()));
    }
    if tool == "all" || tool == "rangeclose" {
        analyzers.push(Box::new(RangeClose::new()));
    }
    if tool == "all" || tool == "interproc" {
        analyzers.push(Box::new(Interproc::new()));
    }
    if analyzers.is_empty() {
        eprintln!("error: unknown tool {tool}");
        return ExitCode::from(2);
    }

    let mut parsed = Vec::new();
    for f in &files {
        let src = match read_source(f) {
            Ok(s) => s,
            Err(code) => return code,
        };
        match minigo::parse_file(&src, &f.display().to_string()) {
            Ok(ast) => parsed.push(ast),
            Err(diags) => {
                for d in diags {
                    eprintln!("{}: {d}", f.display());
                }
                return ExitCode::from(2);
            }
        }
    }

    let mut total = 0;
    for a in &analyzers {
        for finding in a.analyze_files(&parsed) {
            println!("{finding}");
            total += 1;
        }
    }
    if total == 0 {
        println!("clean: no potential partial deadlocks found");
        ExitCode::SUCCESS
    } else {
        println!("{total} finding(s)");
        ExitCode::from(1)
    }
}
