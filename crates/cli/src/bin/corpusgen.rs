//! `corpusgen` — materialize a ground-truth-labelled synthetic monorepo
//! on disk.
//!
//! ```text
//! corpusgen <out-dir> [--packages N] [--seed S] [--leak-rate F] [--heavy]
//! ```
//!
//! Writes `<out>/<pkg>/*.go`, `<out>/TRUTH.json` (leak labels), and
//! `<out>/OWNERS.tsv`, then prints summary statistics.

use std::path::PathBuf;
use std::process::ExitCode;

use corpus::{census, Corpus, CorpusConfig, KindMix};
use leaklab_cli::{flag, split_flags};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (pos, flags) = split_flags(args);
    let Some(out) = pos.first() else {
        eprintln!("usage: corpusgen <out-dir> [--packages N] [--seed S] [--leak-rate F] [--heavy]");
        return ExitCode::from(2);
    };
    let config = CorpusConfig {
        packages: flag(&flags, "packages")
            .and_then(|v| v.parse().ok())
            .unwrap_or(200),
        seed: flag(&flags, "seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xC60),
        leak_rate: flag(&flags, "leak-rate")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.18),
        mix: if flag(&flags, "heavy").is_some() {
            KindMix::concurrent_heavy()
        } else {
            KindMix::default()
        },
        ..CorpusConfig::default()
    };
    let repo = Corpus::generate(config);
    let root = PathBuf::from(out);
    if let Err(e) = repo.write_to_dir(&root) {
        eprintln!("error: writing {}: {e}", root.display());
        return ExitCode::from(2);
    }
    let c = census(&repo);
    let (src, tst) = repo.eloc();
    println!(
        "wrote {} packages ({} source files, {} test files, {} + {} ELoC) to {}",
        repo.packages.len(),
        c.files_source,
        c.files_test,
        src,
        tst,
        root.display()
    );
    println!(
        "ground truth: {} injected leak sites (TRUTH.json); owners in OWNERS.tsv",
        repo.truth.len()
    );
    ExitCode::SUCCESS
}
