//! `leakprofd` — the continuous profile-collection and streaming-analysis
//! daemon, plus self-contained demo modes.
//!
//! ```text
//! leakprofd serve       [--instances N] [--days D] [--seed S] [--port P]
//!                       [--cycles N] [--interval-ms MS] [--threshold T]
//!                       [--top N] [--history PATH] [--keep N]
//!                       [--state-dir PATH] [--snapshot-every N]
//!                       [--source-dir PATH] [--ast-filter]
//!                       [--keepalive BOOL] [--adaptive]
//!                       [--interval-min-ms MS] [--interval-max-ms MS]
//!                       [--shard I/N] [--shard-map PATH]
//!                       [--push] [--push-queue N] [--push-shards N]
//!                       [--accept-pending N] [--http-workers N]
//! leakprofd scrape-once [--addr HOST:PORT] [--instances N] [--days D]
//!                       [--seed S] [--threshold T] [--top N] [--workers N]
//!                       [--source-dir PATH] [--ast-filter]
//! leakprofd status      (--history PATH | --addr HOST:PORT [--addr ...])
//! leakprofd top         --addr HOST:PORT [--addr ...] [--refresh-ms MS]
//!                       [--frames N]
//! leakprofd trace       --addr HOST:PORT [--out PATH]
//! leakprofd flame       --addr HOST:PORT [--out PATH] [--txt]
//!                       [--from N --to N] [--self]
//! leakprofd recover     --state-dir PATH [--threshold T] [--top N]
//!                       [--source-dir PATH]
//! leakprofd backtest    (--state-dir PATH | --history PATH) [--out DIR]
//!                       [--week-len N] [--top N]
//! leakprofd migrate-history --history PATH --state-dir PATH
//! leakprofd merge       --state-dir PATH [--state-dir ...] [--out DIR]
//!                       [--threshold T] [--top N]
//! leakprofd fleet       --shard-addr HOST:PORT [--shard-addr ...]
//!                       [--port P] [--interval-ms MS] [--polls N]
//!                       [--shards N | --shard-map PATH] [--out-map PATH]
//! leakprofd chaos       [--instances N] [--cycles N] [--seed S]
//!                       [--restart-every N] [--state-dir PATH]
//! leakprofd push        --addr HOST:PORT --fleet-addr HOST:PORT
//!                       [--pushers N] [--rounds N] [--watermark N]
//!                       [--heartbeat N] [--interval-ms MS] [--seed S]
//! ```
//!
//! The criterion-2 static filter defaults to **off**. Two ways to turn
//! it on:
//!
//! * `--source-dir PATH` enables the daemon's static tier: sources under
//!   PATH are parsed once, their transient verdicts cached in a
//!   persistent `verdicts.json` (in `--state-dir` when given), and every
//!   later cycle — and every later daemon start — answers filter queries
//!   from the cache without parsing. Demo modes write the fleet's
//!   handler sources into PATH first.
//! * `--ast-filter` (demo modes only) uses the legacy in-memory AST
//!   index instead, re-indexing sources at startup.
//!
//! * `serve` stands up a demo fleet behind one loopback HTTP listener,
//!   then runs scrape cycles against it, exposing the daemon's own
//!   `/metrics` and `/status` on an adjacent port. With `--cycles 0`
//!   (default) it runs until interrupted. With `--state-dir` the daemon
//!   is crash-safe: snapshot + WAL recovery, persistent report ledger,
//!   and a durable multi-resolution telemetry store behind `/health`
//!   and `/api/series`. With `--adaptive` the scrape interval is
//!   trend-driven: it backs off toward `--interval-max-ms` while the
//!   fleet is quiet and tightens toward `--interval-min-ms` when the
//!   top-K changes or a site's trend fires.
//! * `scrape-once` runs exactly one scatter-gather cycle — against
//!   `--addr` if given, otherwise against a freshly built demo fleet —
//!   and prints the ranked report plus scrape-health stats.
//! * `status` summarizes a history JSONL written with `--history`.
//! * `top` polls a serving daemon's `/status` and renders a live text
//!   dashboard: cycle counters, per-stage latency quantiles, breaker
//!   and keep-alive pool state, and the current top suspects.
//! * `trace` exports a serving daemon's `/trace` span trees in Chrome
//!   trace-event format (load the file in `chrome://tracing` or
//!   Perfetto; without `--out` the JSON goes to stdout).
//! * `flame` fetches a serving daemon's (or fleet aggregator's)
//!   blocked-goroutine flamegraph: the self-contained SVG/HTML by
//!   default, the collapsed folded-stack text with `--txt` (pipe it to
//!   `inferno-flamegraph` or load in speedscope). `--from N --to N`
//!   renders the *differential* flame — growth between two cycle (or
//!   fleet poll) indices — and `--self` the daemon's own worker/stage
//!   self-time flame instead.
//! * `recover` inspects a state directory offline: what a restarting
//!   daemon would reconstruct (snapshot + WAL replay), the ranking it
//!   would resume with, and the report ledger.
//! * `backtest` replays a persisted telemetry store (`--state-dir`) or
//!   a raw cycle history (`--history`) offline into weekly per-site
//!   trend tables — the same classification path as the live
//!   `/health`, so verdicts reproduce exactly. `--out DIR` also writes
//!   `report.txt`, `weekly_rms.csv`, and `verdicts.csv`.
//! * `migrate-history` backfills a history JSONL into the telemetry
//!   store under `--state-dir`, so backtests cover cycles recorded
//!   before the store existed. Idempotent: already-migrated cycles are
//!   skipped.
//! * **Sharded collection**: `serve --shard I/N` scrapes only the slice
//!   a deterministic rendezvous map assigns seat I (from `--shard-map`
//!   when given, else the canonical N-seat map), tagging its state dir
//!   with the shard identity. `merge` folds N shard state dirs into one
//!   fleet-wide state — byte-identical ranking to a single whole-fleet
//!   daemon — and `--out DIR` persists it as a regular state dir.
//!   `fleet` is the live merge tier: it polls each `--shard-addr`'s
//!   `/api/snapshot` behind circuit breakers, marks dark slices stale
//!   (their last snapshot keeps contributing), emits a rebalanced map
//!   on failover (`--out-map`), and serves the merged `/status`,
//!   `/health`, `/metrics`, `/api/snapshot`. `status`/`top` accept
//!   repeated `--addr` and render one freshness row per shard above
//!   the merged ranking.
//! * `chaos` runs the deterministic chaos harness (scrape faults,
//!   instance churn, kill/restart) against a demo fleet and reports
//!   whether the crash-safety invariants held.
//! * **Push-mode ingestion**: `serve --push` opens `POST /api/push` —
//!   instances deliver their own profiles instead of (or in addition
//!   to) being scraped. Admission is bounded: beyond `--push-queue`
//!   profiles in flight the daemon sheds with `429 Retry-After`
//!   (deterministic jittered hints), and beyond `--accept-pending`
//!   queued connections the accept pool sheds with `503 Retry-After`.
//!   Push and pull land in one ranking, newest profile per instance
//!   winning. `push` is the client: it discovers instances at
//!   `--fleet-addr`, polls their profiles, and pushes each to
//!   `--addr`'s `/api/push` when the blocked-goroutine count crosses
//!   `--watermark` (or every `--heartbeat` polls), retrying shed
//!   pushes with capped exponential backoff honoring `Retry-After`.
//!
//! The serving daemon also dogfoods the analysis pipeline on itself: it
//! tracks its own worker threads (driver, scrape pool, endpoint pool)
//! on a worker board and serves them at `/debug/self` in the exact
//! profile JSON format the fleet instances serve — so
//! `leakprofd scrape-once --addr <daemon> --threshold 1` produces a
//! leak ranking over the daemon's **own** blocking sites.
//!
//! Exit code: 0 on success (scrape-once: even with suspects), 1 when a
//! cycle scraped nothing at all (or chaos invariants failed), 2 on
//! usage/IO errors.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use collector::{
    backtest_history, backtest_store, load_jsonl, merge_state_dirs, migrate_history, render_table,
    run_chaos, serve_daemon_endpoints_with, serve_fleet_endpoints, write_merged, write_report,
    AdaptiveConfig, ApiSnapshot, BacktestConfig, ChaosConfig, ChaosPlanConfig, CycleRecord, Daemon,
    DaemonConfig, DemoFleet, FleetAggregator, FleetConfig, FleetHealth, HistoryLog, MergeConfig,
    ProfileHub, PushClient, PushConfig, PushError, ReportLedger, ScrapeConfig, ScrapeTarget,
    ShardSpec, SnapshotStore, WatermarkTrigger,
};
use leaklab_cli::{flag, flags_all, split_flags};
use leakprof::FleetAccumulator;
use shardmap::ShardMap;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    let (_, flags) = split_flags(args);
    match cmd.as_str() {
        "serve" => serve(&flags),
        "scrape-once" => scrape_once(&flags),
        "status" => status(&flags),
        "top" => top(&flags),
        "trace" => trace(&flags),
        "flame" => flame_cmd(&flags),
        "recover" => recover(&flags),
        "backtest" => backtest(&flags),
        "migrate-history" => migrate(&flags),
        "merge" => merge_cmd(&flags),
        "fleet" => fleet_cmd(&flags),
        "chaos" => chaos(&flags),
        "push" => push_cmd(&flags),
        "racecheck" => racecheck_cmd(&flags),
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: leakprofd <serve|scrape-once|status|top|trace|flame|recover|backtest|migrate-history|merge|fleet|chaos|push|racecheck> [flags]\n\
         \x20 serve       [--instances N] [--days D] [--seed S] [--port P] [--cycles N]\n\
         \x20             [--interval-ms MS] [--threshold T] [--top N] [--history PATH] [--keep N]\n\
         \x20             [--state-dir PATH] [--snapshot-every N] [--source-dir PATH] [--ast-filter]\n\
         \x20             [--race-dir PATH]\n\
         \x20             [--adaptive] [--interval-min-ms MS] [--interval-max-ms MS]\n\
         \x20             [--shard I/N] [--shard-map PATH]\n\
         \x20             [--push] [--push-queue N] [--push-shards N] [--accept-pending N]\n\
         \x20             [--http-workers N] [--tail-sample]\n\
         \x20 scrape-once [--addr HOST:PORT] [--instances N] [--days D] [--seed S]\n\
         \x20             [--threshold T] [--top N] [--workers N] [--source-dir PATH] [--ast-filter]\n\
         \x20 status      (--history PATH | --addr HOST:PORT [--addr ...]) [--threshold T] [--top N]\n\
         \x20 top         --addr HOST:PORT [--addr ...] [--refresh-ms MS] [--frames N]\n\
         \x20             [--threshold T] [--top N]\n\
         \x20 trace       --addr HOST:PORT [--addr ...] [--out PATH]\n\
         \x20 flame       --addr HOST:PORT [--out PATH] [--txt] [--from N --to N] [--self]\n\
         \x20 recover     --state-dir PATH [--threshold T] [--top N] [--source-dir PATH]\n\
         \x20 backtest    (--state-dir PATH | --history PATH) [--out DIR] [--week-len N] [--top N]\n\
         \x20 migrate-history --history PATH --state-dir PATH\n\
         \x20 merge       --state-dir PATH [--state-dir ...] [--out DIR] [--threshold T] [--top N]\n\
         \x20 fleet       --shard-addr HOST:PORT [--shard-addr ...] [--port P] [--interval-ms MS]\n\
         \x20             [--polls N] [--shards N | --shard-map PATH] [--out-map PATH]\n\
         \x20             [--threshold T] [--top N]\n\
         \x20 chaos       [--instances N] [--cycles N] [--seed S] [--restart-every N]\n\
         \x20             [--state-dir PATH]\n\
         \x20 push        --addr HOST:PORT --fleet-addr HOST:PORT [--pushers N] [--rounds N]\n\
         \x20             [--watermark N] [--heartbeat N] [--interval-ms MS] [--seed S]\n\
         \x20             [--trace-out PATH]\n\
         \x20 racecheck   --dir PATH [--entry NAME] [--seed S] [--ticks N] [--json]\n\
         \x20             (exit 0: race-free, 1: races found, 2: error)"
    );
}

fn parsed<T: std::str::FromStr>(flags: &[(String, String)], name: &str, default: T) -> T {
    flag(flags, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the static-tier config when `--source-dir` is present. The
/// verdict cache lands in the state dir when one is configured,
/// otherwise as `verdicts.json` beside the sources (only `.go` files
/// are scanned, so the cache never shadows a source file).
fn static_tier_config(
    flags: &[(String, String)],
    state_dir: Option<&std::path::Path>,
) -> Option<collector::StaticTierConfig> {
    let source_dir = std::path::PathBuf::from(flag(flags, "source-dir")?);
    Some(match state_dir {
        Some(dir) => collector::StaticTierConfig::in_state_dir(source_dir, dir),
        None => {
            let cache_path = source_dir.join("verdicts.json");
            collector::StaticTierConfig {
                source_dir,
                cache_path,
                threads: 4,
            }
        }
    })
}

/// Builds the race-tier config when `--race-dir` is present. The
/// suspect cache lands in the state dir when one is configured,
/// otherwise as `races.json` beside the sources.
fn race_tier_config(
    flags: &[(String, String)],
    state_dir: Option<&std::path::Path>,
) -> Option<collector::RaceTierConfig> {
    let source_dir = std::path::PathBuf::from(flag(flags, "race-dir")?);
    Some(match state_dir {
        Some(dir) => collector::RaceTierConfig::in_state_dir(source_dir, dir),
        None => {
            let cache_path = source_dir.join("races.json");
            collector::RaceTierConfig {
                source_dir,
                cache_path,
                run: racecheck::RunConfig::default(),
            }
        }
    })
}

/// Parses `--shard I/N` (+ optional `--shard-map PATH`) into a
/// [`ShardSpec`]. Without `--shard-map` the canonical N-seat map is
/// used — every shard computing `ShardMap::new(N)` independently gets
/// the identical assignment, so no coordination is needed.
fn shard_spec(flags: &[(String, String)]) -> Result<Option<ShardSpec>, ExitCode> {
    let Some(spec) = flag(flags, "shard") else {
        return Ok(None);
    };
    let parsed: Option<(u32, u32)> = spec
        .split_once('/')
        .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)));
    let Some((index, of)) = parsed else {
        eprintln!("error: --shard must be I/N (e.g. 0/3), got {spec}");
        return Err(ExitCode::from(2));
    };
    let map = match flag(flags, "shard-map") {
        Some(path) => ShardMap::load(std::path::Path::new(path)).map_err(|e| {
            eprintln!("error: cannot load shard map {path}: {e}");
            ExitCode::from(2)
        })?,
        None => ShardMap::new(of),
    };
    if map.total() != of {
        eprintln!(
            "error: --shard {spec} does not match the {}-seat shard map",
            map.total()
        );
        return Err(ExitCode::from(2));
    }
    if index >= of {
        eprintln!("error: --shard index {index} out of range for {of} shard(s)");
        return Err(ExitCode::from(2));
    }
    Ok(Some(ShardSpec { map, index }))
}

fn build_demo(flags: &[(String, String)]) -> (DemoFleet, collector::HttpServer) {
    let instances: usize = parsed(flags, "instances", 100);
    let seed: u64 = parsed(flags, "seed", 7);
    let days: u32 = parsed(flags, "days", 3);
    eprintln!(
        "leakprofd: building demo fleet ({instances} instances, {days} day(s) of traffic, seed {seed})..."
    );
    let demo = DemoFleet::build(instances, days, seed);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    eprintln!(
        "leakprofd: fleet of {} instances listening on http://{}",
        demo.hub.instances().len(),
        server.addr()
    );
    (demo, server)
}

fn scrape_once(flags: &[(String, String)]) -> ExitCode {
    let threshold: u64 = parsed(flags, "threshold", 40);
    let top_n: usize = parsed(flags, "top", 10);
    let ast_filter: bool = parsed(flags, "ast-filter", false);
    let static_tier = static_tier_config(flags, None);
    let scrape = ScrapeConfig {
        workers: parsed(flags, "workers", 0),
        jitter_seed: parsed(flags, "seed", 7u64),
        keepalive: parsed(flags, "keepalive", false),
        ..ScrapeConfig::default()
    };

    // Keep demo-fleet state (and its server) alive for the scrape.
    let demo_parts;
    let (lp, targets) = match flag(flags, "addr") {
        Some(addr) => {
            // Against an external hub: discover instances via /instances.
            let addr: std::net::SocketAddr = match addr.parse() {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: bad --addr {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            let body = match collector::http_get(
                addr,
                "/instances",
                std::time::Duration::from_millis(500),
                std::time::Duration::from_millis(1000),
            ) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: cannot list instances at {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            let ids: Vec<String> = match std::str::from_utf8(&body)
                .ok()
                .and_then(|s| serde_json::from_str(s).ok())
            {
                Some(ids) => ids,
                None => {
                    eprintln!("error: {addr}/instances did not return a JSON string array");
                    return ExitCode::from(2);
                }
            };
            let targets = ids
                .into_iter()
                .map(|id| ScrapeTarget {
                    path: ProfileHub::profile_path(&id),
                    instance: id,
                    addr,
                })
                .collect();
            let lp = leakprof::LeakProf::new(leakprof::Config {
                threshold,
                // Off unless --source-dir points at a checkout of the
                // fleet's sources (the static tier then enables it).
                ast_filter: false,
                top_n,
            });
            (lp, targets)
        }
        None => {
            let (demo, server) = build_demo(flags);
            if let Some(tier) = &static_tier {
                if let Err(e) = demo.write_sources(&tier.source_dir) {
                    eprintln!(
                        "error: cannot write sources to {}: {e}",
                        tier.source_dir.display()
                    );
                    return ExitCode::from(2);
                }
            }
            let targets = demo.targets(server.addr());
            let lp = if ast_filter && static_tier.is_none() {
                demo.leakprof(threshold, top_n)
            } else {
                leakprof::LeakProf::new(leakprof::Config {
                    threshold,
                    ast_filter: false,
                    top_n,
                })
            };
            demo_parts = (demo, server);
            let _ = &demo_parts;
            (lp, targets)
        }
    };

    let mut daemon = match Daemon::new(
        DaemonConfig {
            scrape,
            static_tier,
            ..DaemonConfig::default()
        },
        lp,
        targets,
    ) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let started = std::time::Instant::now();
    let cycle = daemon.run_cycle();
    let wall = started.elapsed();

    println!("{}", cycle.stats.render());
    for e in &cycle.errors {
        println!(
            "  failed: {} after {} attempt(s): {} ({})",
            e.instance, e.attempts, e.kind, e.detail
        );
    }
    if let Some(report) = daemon.last_report() {
        print!("{}", report.render());
    }
    println!("cycle wall time: {:.2} s", wall.as_secs_f64());
    if cycle.stats.succeeded == 0 && cycle.stats.targets > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn serve(flags: &[(String, String)]) -> ExitCode {
    let threshold: u64 = parsed(flags, "threshold", 40);
    let top_n: usize = parsed(flags, "top", 10);
    let cycles: u64 = parsed(flags, "cycles", 0);
    let interval_ms: u64 = parsed(flags, "interval-ms", 1000);
    let port: u16 = parsed(flags, "port", 0);
    let keep: usize = parsed(flags, "keep", 500);

    let ast_filter: bool = parsed(flags, "ast-filter", false);
    let state_dir = flag(flags, "state-dir").map(std::path::PathBuf::from);
    let static_tier = static_tier_config(flags, state_dir.as_deref());
    let race_tier = race_tier_config(flags, state_dir.as_deref());
    let shard = match shard_spec(flags) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let (mut demo, fleet_server) = build_demo(flags);
    if let Some(tier) = &static_tier {
        if let Err(e) = demo.write_sources(&tier.source_dir) {
            eprintln!(
                "error: cannot write sources to {}: {e}",
                tier.source_dir.display()
            );
            return ExitCode::from(2);
        }
    }
    let targets = demo.targets(fleet_server.addr());
    let lp = if ast_filter && static_tier.is_none() {
        demo.leakprof(threshold, top_n)
    } else {
        // Filter off by default; with --source-dir the daemon's static
        // tier installs cached verdicts and turns it on itself.
        leakprof::LeakProf::new(leakprof::Config {
            threshold,
            ast_filter: false,
            top_n,
        })
    };

    let config = DaemonConfig {
        scrape: ScrapeConfig {
            jitter_seed: parsed(flags, "seed", 7u64),
            // Keep-alive on by default: the daemon re-scrapes the same
            // fleet every cycle, the textbook case for pooling.
            keepalive: parsed(flags, "keepalive", true),
            ..ScrapeConfig::default()
        },
        history_path: flag(flags, "history").map(std::path::PathBuf::from),
        history_keep: keep,
        state_dir,
        snapshot_every: parsed(flags, "snapshot-every", 5u64).max(1),
        trace: obs::TraceConfig {
            // Tail sampling keeps full span detail only for flagged or
            // slow cycles; stage histograms stay always-on either way.
            tail_sample: parsed(flags, "tail-sample", false),
            ..obs::TraceConfig::default()
        },
        static_tier,
        race_tier,
        adaptive: if parsed(flags, "adaptive", false) {
            AdaptiveConfig::enabled(
                parsed(flags, "interval-min-ms", 250),
                parsed(flags, "interval-max-ms", 8000),
                interval_ms,
            )
        } else {
            AdaptiveConfig::default()
        },
        shard,
        ingest: parsed(flags, "push", false).then(|| collector::IngestConfig {
            queue_capacity: parsed(flags, "push-queue", 4096),
            shards: parsed(flags, "push-shards", 4),
            accept_pending: parsed(flags, "accept-pending", 1024),
            jitter_seed: parsed(flags, "seed", 7u64),
            ..collector::IngestConfig::default()
        }),
        ..DaemonConfig::default()
    };
    let push_enabled = config.ingest.is_some();
    let http_workers: usize = parsed(flags, "http-workers", 2);
    let daemon = match Daemon::new(config, lp, targets) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot open daemon state: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = daemon.shard() {
        println!(
            "leakprofd: shard {id}: scraping {} of {} instance(s)",
            daemon.targets().len(),
            demo.hub.instances().len()
        );
    }
    if daemon.recovered_cycle() > 0 {
        println!(
            "leakprofd: recovered durable state up to cycle {}",
            daemon.recovered_cycle()
        );
    }
    let daemon = Arc::new(Mutex::new(daemon));
    let endpoints = match serve_daemon_endpoints_with(
        Arc::clone(&daemon),
        &format!("127.0.0.1:{port}"),
        http_workers,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind daemon endpoints: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "leakprofd: serving /metrics, /status, /trace, /logs, /debug/self{} on http://{} (fleet at http://{})",
        if push_enabled { ", /api/push" } else { "" },
        endpoints.addr(),
        fleet_server.addr()
    );

    // Dogfood: the driver loop is itself a tracked worker, so the
    // daemon's own /debug/self profile shows whether it is mid-cycle
    // or parked between cycles — and `scrape-once --addr` ranks it.
    let driver = daemon
        .lock()
        .expect("daemon poisoned")
        .worker_board()
        .register("driver", obs::site!("leakprofd::serve"));

    let mut ran = 0u64;
    loop {
        driver.set(
            obs::WorkerState::Analyze,
            obs::site!("leakprofd::serve::cycle"),
        );
        let report = daemon.lock().expect("daemon poisoned").run_cycle();
        ran += 1;
        println!("cycle {ran}: {}", report.stats.render());
        {
            let d = daemon.lock().expect("daemon poisoned");
            if let Some(outcome) = d.last_outcome() {
                for fp in &outcome.reported {
                    println!("  paged: {fp}");
                }
            }
        }
        if report.stats.succeeded == 0 && report.stats.targets > 0 {
            eprintln!("leakprofd: cycle scraped nothing; aborting");
            return ExitCode::from(1);
        }
        if cycles > 0 && ran >= cycles {
            break;
        }
        driver.set(
            obs::WorkerState::Idle,
            obs::site!("leakprofd::serve::interval_sleep"),
        );
        // With --adaptive the controller decides the pacing; otherwise
        // the fixed --interval-ms.
        let sleep_ms = {
            let d = daemon.lock().expect("daemon poisoned");
            let adaptive = d.adaptive_status();
            if adaptive.enabled && adaptive.last_change_cycle == d.health().cycles {
                println!(
                    "  interval -> {} ms ({})",
                    adaptive.interval_ms, adaptive.last_change_reason
                );
            }
            d.current_interval_ms(interval_ms)
        };
        std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        demo.advance_and_republish(1);
    }
    let mut daemon = daemon.lock().expect("daemon poisoned");
    // Clean shutdown: checkpoint so the next start replays no WAL.
    if let Err(e) = daemon.commit_snapshot() {
        eprintln!("leakprofd: final snapshot failed: {e}");
    }
    if let Err(e) = daemon.flush_telemetry() {
        eprintln!("leakprofd: telemetry flush failed: {e}");
    }
    if let Some(report) = daemon.last_report() {
        print!("{}", report.render());
    }
    print!("{}", daemon.metrics_text());
    ExitCode::SUCCESS
}

fn status(flags: &[(String, String)]) -> ExitCode {
    let addr_values = flags_all(flags, "addr");
    if !addr_values.is_empty() {
        let addrs = match parse_addrs(&addr_values, "addr") {
            Ok(a) => a,
            Err(code) => return code,
        };
        let peeks: Vec<ShardPeek> = addrs.into_iter().map(peek_shard).collect();
        print!(
            "{}",
            render_overview(
                &peeks,
                parsed(flags, "threshold", 40),
                parsed(flags, "top", 10),
            )
        );
        return ExitCode::SUCCESS;
    }
    let Some(path) = flag(flags, "history") else {
        eprintln!("usage: leakprofd status (--history PATH | --addr HOST:PORT [--addr ...])");
        return ExitCode::from(2);
    };
    let log = match HistoryLog::open(path, 1) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot open {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let records = match log.load() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if records.is_empty() {
        println!("no cycles recorded in {path}");
        return ExitCode::SUCCESS;
    }
    let last = records.last().expect("nonempty");
    println!("{} cycle(s) on record; latest:", records.len());
    println!(
        "  cycle {}: {} profiles, {} failures, {} retries, {:.1} ms; latency p50 {} µs p99 {} µs",
        last.cycle,
        last.profiles,
        last.failures,
        last.retries,
        last.wall_ms,
        last.p50_us,
        last.p99_us
    );
    if last.top.is_empty() {
        println!("  no suspects at latest cycle");
    } else {
        println!("  top sites:");
        for (i, t) in last.top.iter().enumerate() {
            println!(
                "    #{} {} (rms {:.1}, total {}, max-instance {})",
                i + 1,
                t.op,
                t.rms,
                t.total,
                t.max_instance
            );
        }
    }
    ExitCode::SUCCESS
}

/// Parses `--addr`, printing a usage line naming `cmd` when absent or
/// malformed.
fn addr_flag(flags: &[(String, String)], cmd: &str) -> Result<std::net::SocketAddr, ExitCode> {
    let Some(addr) = flag(flags, "addr") else {
        eprintln!("usage: leakprofd {cmd} --addr HOST:PORT");
        return Err(ExitCode::from(2));
    };
    addr.parse().map_err(|e| {
        eprintln!("error: bad --addr {addr}: {e}");
        ExitCode::from(2)
    })
}

/// GETs `path` from a serving daemon and returns the UTF-8 body.
fn fetch(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    let body = collector::http_get(
        addr,
        path,
        std::time::Duration::from_millis(1000),
        std::time::Duration::from_millis(2000),
    )
    .map_err(|e| format!("{path}: {e}"))?;
    String::from_utf8(body).map_err(|e| format!("{path}: not UTF-8: {e}"))
}

/// Parses a repeated address flag, naming the flag in errors.
fn parse_addrs(values: &[&str], flag_name: &str) -> Result<Vec<std::net::SocketAddr>, ExitCode> {
    values
        .iter()
        .map(|a| {
            a.parse().map_err(|e| {
                eprintln!("error: bad --{flag_name} {a}: {e}");
                ExitCode::from(2)
            })
        })
        .collect()
}

/// One polled daemon in the multi-address overview: its snapshot (the
/// merge input), its breaker counters if it serves a daemon `/status`,
/// or why it could not be reached.
struct ShardPeek {
    addr: std::net::SocketAddr,
    snap: Option<ApiSnapshot>,
    breakers: Option<collector::BreakerSummary>,
    error: Option<String>,
}

/// Fetches one peer's `/api/snapshot` (and, best-effort, its `/status`
/// breaker counters — a fleet aggregator serves a different status
/// document, so this stays optional).
fn peek_shard(addr: std::net::SocketAddr) -> ShardPeek {
    match fetch(addr, "/api/snapshot").and_then(|body| {
        serde_json::from_str::<ApiSnapshot>(&body).map_err(|e| format!("/api/snapshot: {e}"))
    }) {
        Ok(snap) => {
            let breakers = fetch(addr, "/status")
                .ok()
                .and_then(|body| serde_json::from_str::<collector::DaemonStatus>(&body).ok())
                .map(|s| s.breakers);
            ShardPeek {
                addr,
                snap: Some(snap),
                breakers,
                error: None,
            }
        }
        Err(e) => ShardPeek {
            addr,
            snap: None,
            breakers: None,
            error: Some(e),
        },
    }
}

/// Renders the multi-address overview: one freshness row per shard
/// (shard order, unsharded last — the merge tiers' fold order), then
/// the client-side merged ranking and deduplicated ledger counts.
fn render_overview(peeks: &[ShardPeek], threshold: u64, top_n: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut order: Vec<usize> = (0..peeks.len()).collect();
    order.sort_by_key(|&i| {
        (
            peeks[i]
                .snap
                .as_ref()
                .and_then(|s| s.shard.as_ref())
                .map_or(u32::MAX, |s| s.shard),
            peeks[i].addr.to_string(),
        )
    });
    let _ = writeln!(
        out,
        "{:<8} {:<21} {:>6} {:>7} {:>8}  {:<16} state",
        "shard", "addr", "cycle", "targets", "ingested", "breakers"
    );
    let mut acc = FleetAccumulator::new();
    let mut ledger = ReportLedger::new(Default::default());
    let mut reachable = 0usize;
    for &i in &order {
        let p = &peeks[i];
        match &p.snap {
            Some(snap) => {
                reachable += 1;
                let shard = snap
                    .shard
                    .as_ref()
                    .map_or("whole".to_string(), |s| format!("{}/{}", s.shard, s.of));
                let breakers = p.breakers.as_ref().map_or("-".to_string(), |b| {
                    format!("{}c/{}o/{}h", b.closed, b.open, b.half_open)
                });
                let _ = writeln!(
                    out,
                    "{:<8} {:<21} {:>6} {:>7} {:>8}  {:<16} fresh",
                    shard,
                    p.addr,
                    snap.cycle,
                    snap.targets,
                    snap.acc.instances.len(),
                    breakers
                );
                match FleetAccumulator::from_snapshot(&snap.acc) {
                    Ok(shard_acc) => acc.merge(&shard_acc),
                    Err(e) => {
                        let _ = writeln!(out, "  warning: bad snapshot from {}: {e}", p.addr);
                    }
                }
                // In-memory ledger: merging entries cannot fail to persist.
                let _ = ledger.merge_entries(snap.ledger.iter());
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<8} {:<21} {:>6} {:>7} {:>8}  {:<16} stale ({})",
                    "?",
                    p.addr,
                    "-",
                    "-",
                    "-",
                    "-",
                    p.error.as_deref().unwrap_or("unreachable")
                );
            }
        }
    }
    if reachable == 0 {
        let _ = writeln!(out, "\nno shard answered; nothing to merge");
        return out;
    }
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold,
        ast_filter: false,
        top_n,
    });
    let _ = writeln!(
        out,
        "\nmerged view ({reachable}/{} shard(s), {} profiles):",
        peeks.len(),
        acc.profiles_ingested()
    );
    let _ = write!(out, "{}", lp.report_from_accumulator(&acc).render());
    let s = ledger.summary();
    let _ = writeln!(
        out,
        "ledger: {} site(s) tracked ({} active), {} paged / {} suppressed all-time",
        s.tracked, s.active, s.reported_total, s.suppressed_total
    );
    out
}

/// Live text dashboard over a serving daemon's `/status` — or, with
/// repeated `--addr`, a per-shard freshness board above the merged
/// fleet ranking.
fn top(flags: &[(String, String)]) -> ExitCode {
    let addr_values = flags_all(flags, "addr");
    if addr_values.len() > 1 {
        let addrs = match parse_addrs(&addr_values, "addr") {
            Ok(a) => a,
            Err(code) => return code,
        };
        let refresh_ms: u64 = parsed(flags, "refresh-ms", 1000);
        let frames: u64 = parsed(flags, "frames", 0);
        let threshold: u64 = parsed(flags, "threshold", 40);
        let top_n: usize = parsed(flags, "top", 10);
        let mut shown = 0u64;
        loop {
            let peeks: Vec<ShardPeek> = addrs.iter().copied().map(peek_shard).collect();
            if shown > 0 {
                print!("\x1b[2J\x1b[H");
            }
            println!("leakprofd top — {} shard(s)", addrs.len());
            print!("{}", render_overview(&peeks, threshold, top_n));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            shown += 1;
            if frames > 0 && shown >= frames {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
        }
        return ExitCode::SUCCESS;
    }
    let addr = match addr_flag(flags, "top") {
        Ok(a) => a,
        Err(code) => return code,
    };
    let refresh_ms: u64 = parsed(flags, "refresh-ms", 1000);
    let frames: u64 = parsed(flags, "frames", 0);
    let mut shown = 0u64;
    loop {
        let status: collector::DaemonStatus = match fetch(addr, "/status")
            .and_then(|body| serde_json::from_str(&body).map_err(|e| format!("/status: {e}")))
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        // Health (trend verdicts + sparklines) is best-effort: absent
        // before the first cycle completes.
        let health: Option<FleetHealth> = fetch(addr, "/health")
            .ok()
            .and_then(|body| serde_json::from_str(&body).ok());
        if shown > 0 {
            // Repaint in place so the dashboard refreshes rather than
            // scrolls.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(addr, &status, health.as_ref()));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        shown += 1;
        if frames > 0 && shown >= frames {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
    }
    ExitCode::SUCCESS
}

/// One dashboard frame.
fn render_top(
    addr: std::net::SocketAddr,
    s: &collector::DaemonStatus,
    health: Option<&FleetHealth>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "leakprofd top — {addr}");
    let _ = writeln!(
        out,
        "cycles {}  targets {}  ingested {}  success {:.1}%  scrape p50 {} µs  p99 {} µs",
        s.cycles,
        s.targets,
        s.profiles_ingested,
        s.success_rate * 100.0,
        s.p50_us,
        s.p99_us
    );
    let _ = writeln!(
        out,
        "breakers  closed {}  open {}  half-open {}  (opened {} all-time)",
        s.breakers.closed, s.breakers.open, s.breakers.half_open, s.breakers.opened_total
    );
    let ka = &s.keepalive;
    let conn_total = ka.reused + ka.fresh;
    let reuse_pct = if conn_total > 0 {
        ka.reused as f64 / conn_total as f64 * 100.0
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "conns     reused {}  fresh {}  expired {}  reuse-failures {}  (reuse {reuse_pct:.0}%)",
        ka.reused, ka.fresh, ka.expired, ka.reuse_failures
    );
    let _ = writeln!(
        out,
        "spans     recorded {}  dropped {}",
        s.spans_recorded, s.spans_dropped
    );
    let _ = writeln!(
        out,
        "ledger    tracked {}  active {}  paged {}  suppressed {}",
        s.ledger.tracked, s.ledger.active, s.ledger.reported_total, s.ledger.suppressed_total
    );
    let a = &s.adaptive;
    if a.enabled {
        let _ = writeln!(
            out,
            "interval  {} ms  (last change: {} @ cycle {}; tightened {}x, backed off {}x)",
            a.interval_ms,
            a.last_change_reason,
            a.last_change_cycle,
            a.tightened_total,
            a.backed_off_total
        );
    }
    if !s.stages.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<12} {:>8} {:>10} {:>10} {:>10}",
            "stage", "count", "p50 µs", "p99 µs", "max µs"
        );
        for st in &s.stages {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>10} {:>10} {:>10}",
                st.stage, st.count, st.p50_us, st.p99_us, st.max_us
            );
        }
    }
    if s.top.is_empty() {
        let _ = writeln!(out, "\nno suspects above threshold");
    } else {
        let _ = writeln!(out, "\ntop suspects:");
        for (i, t) in s.top.iter().enumerate() {
            let _ = writeln!(
                out,
                " #{:<2} {}  rms {:.1}  total {}  max-instance {}",
                i + 1,
                t.op,
                t.rms,
                t.total,
                t.max_instance
            );
        }
    }
    if let Some(h) = health {
        if !h.sites.is_empty() {
            let _ = writeln!(out, "\ntrends (cycle {}):", h.cycle);
            for site in &h.sites {
                let _ = writeln!(
                    out,
                    " {} {:<10} {}  — {}",
                    collector::sparkline(&site.spark),
                    site.class,
                    site.fingerprint,
                    site.why
                );
            }
        }
    }
    out
}

/// Exports serving daemons' `/trace` as Chrome trace-event JSON. One
/// `--addr` keeps the flat single-process export; repeating the flag
/// stitches every process's snapshot into one timeline with per-process
/// lanes and cross-process flow arrows (the distributed trace view).
fn trace(flags: &[(String, String)]) -> ExitCode {
    let addr_values = flags_all(flags, "addr");
    if addr_values.is_empty() {
        eprintln!("usage: leakprofd trace --addr HOST:PORT [--addr ...] [--out PATH]");
        return ExitCode::from(2);
    }
    let addrs = match parse_addrs(&addr_values, "addr") {
        Ok(a) => a,
        Err(code) => return code,
    };
    let mut snapshots: Vec<obs::TraceSnapshot> = Vec::with_capacity(addrs.len());
    for addr in &addrs {
        // A daemon's /trace is a raw TraceSnapshot; a fleet
        // aggregator's /trace is an already-stitched Chrome array, so
        // fall back to its /trace/self for the restitchable snapshot.
        let snap = fetch(*addr, "/trace").and_then(|body| {
            if body.trim_start().starts_with('[') {
                fetch(*addr, "/trace/self").and_then(|body| {
                    serde_json::from_str(&body).map_err(|e| format!("/trace/self: {e}"))
                })
            } else {
                serde_json::from_str(&body).map_err(|e| format!("/trace: {e}"))
            }
        });
        match snap {
            Ok(s) => snapshots.push(s),
            Err(e) => {
                eprintln!("error: {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let spans: usize = snapshots
        .iter()
        .flat_map(|s| s.cycles.iter())
        .map(|c| c.spans.len())
        .sum();
    let cycles: usize = snapshots.iter().map(|s| s.cycles.len()).sum();
    let chrome = match snapshots.as_slice() {
        [one] => obs::to_chrome(one),
        many => obs::to_chrome_stitched(many),
    };
    match flag(flags, "out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &chrome) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {spans} span(s) across {cycles} cycle(s) from {} process(es) to {path} \
                 (open in chrome://tracing or Perfetto)",
                snapshots.len()
            );
        }
        None => println!("{chrome}"),
    }
    ExitCode::SUCCESS
}

/// Fetches a flamegraph from a serving daemon or fleet aggregator:
/// HTML/SVG by default, collapsed folded-stack text with `--txt`;
/// `--from`/`--to` selects the differential view, `--self` the
/// daemon's own worker/stage self-time flame.
fn flame_cmd(flags: &[(String, String)]) -> ExitCode {
    let Some(addr_value) = flag(flags, "addr") else {
        eprintln!("usage: leakprofd flame --addr HOST:PORT [--out PATH] [--txt] [--from N --to N] [--self]");
        return ExitCode::from(2);
    };
    let addrs = match parse_addrs(&[addr_value], "addr") {
        Ok(a) => a,
        Err(code) => return code,
    };
    let txt: bool = parsed(flags, "txt", false);
    let self_flame: bool = parsed(flags, "self", false);
    let path = if self_flame {
        if flag(flags, "from").is_some() || flag(flags, "to").is_some() {
            eprintln!("error: --self has no differential view (drop --from/--to)");
            return ExitCode::from(2);
        }
        if txt {
            "/flame/self.txt"
        } else {
            "/flame/self"
        }
        .to_string()
    } else {
        let base = if txt { "/flame.txt" } else { "/flame" };
        match (flag(flags, "from"), flag(flags, "to")) {
            (None, None) => base.to_string(),
            (Some(from), Some(to)) => format!("{base}?from={from}&to={to}"),
            _ => {
                eprintln!("error: --from and --to must be given together");
                return ExitCode::from(2);
            }
        }
    };
    let body = match fetch(addrs[0], &path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {}: {e}", addrs[0]);
            return ExitCode::from(2);
        }
    };
    match flag(flags, "out") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &body) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {} from {}{path} to {out}{}",
                if txt { "folded stacks" } else { "flamegraph" },
                addrs[0],
                if txt { "" } else { " (open in a browser)" },
            );
        }
        None => print!("{body}"),
    }
    ExitCode::SUCCESS
}

/// Offline inspection of a state directory: what a restarting daemon
/// would reconstruct, and the ranking it would resume with.
fn recover(flags: &[(String, String)]) -> ExitCode {
    let Some(dir) = flag(flags, "state-dir") else {
        eprintln!("usage: leakprofd recover --state-dir PATH [--threshold T] [--top N]");
        return ExitCode::from(2);
    };
    let threshold: u64 = parsed(flags, "threshold", 40);
    let top_n: usize = parsed(flags, "top", 10);

    let store = match SnapshotStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot open {dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let recovery = match store.recover() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot recover {dir}: {e}");
            return ExitCode::from(2);
        }
    };
    if recovery.is_empty() {
        println!("no durable state in {dir}: a daemon would start fresh");
        return ExitCode::SUCCESS;
    }
    let mut acc = match &recovery.snapshot {
        Some(snap) => {
            println!(
                "snapshot: cycle {} ({} profiles ingested)",
                snap.cycle, snap.health.scrapes_ok
            );
            match FleetAccumulator::from_snapshot(&snap.acc) {
                Ok(acc) => acc,
                Err(e) => {
                    eprintln!("error: snapshot does not restore: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => {
            println!("no snapshot committed yet");
            FleetAccumulator::new()
        }
    };
    println!(
        "wal: {} replayable cycle(s){}",
        recovery.wal.len(),
        match &recovery.dropped_trailing {
            Some(e) => format!(" (+1 torn trailing entry discarded: {e})"),
            None => String::new(),
        }
    );
    for entry in &recovery.wal {
        for p in &entry.profiles {
            acc.ingest(p);
        }
    }
    println!(
        "a restarting daemon resumes at cycle {}",
        recovery.last_cycle()
    );

    let mut lp = leakprof::LeakProf::new(leakprof::Config {
        threshold,
        ast_filter: false,
        top_n,
    });
    // Sources are not part of durable state, but --source-dir plus the
    // persisted verdict cache recovers the filter too — warm caches
    // answer without parsing anything.
    if let Some(tier_config) = static_tier_config(flags, Some(std::path::Path::new(dir))) {
        match collector::StaticTier::open(tier_config).and_then(|mut t| t.sync()) {
            Ok(verdicts) => {
                lp.install_verdicts(verdicts);
                lp.set_ast_filter(true);
            }
            Err(e) => eprintln!("warning: static tier unavailable: {e}"),
        }
    }
    print!("{}", lp.report_from_accumulator(&acc).render());

    let ledger_path = std::path::Path::new(dir).join("ledger.json");
    if ledger_path.exists() {
        match ReportLedger::open(&ledger_path, Default::default()) {
            Ok(ledger) => {
                let s = ledger.summary();
                println!(
                    "ledger: {} site(s) tracked ({} active), {} paged / {} suppressed all-time",
                    s.tracked, s.active, s.reported_total, s.suppressed_total
                );
                for e in ledger.entries() {
                    println!(
                        "  {} episode {} ({:?}) acked-rms {:.1} peak {:.1} owner {}",
                        e.fingerprint,
                        e.episode,
                        e.state,
                        e.acked_rms,
                        e.peak_rms,
                        e.owner.as_deref().unwrap_or("-")
                    );
                }
            }
            Err(e) => eprintln!("warning: ledger unreadable: {e}"),
        }
    }
    ExitCode::SUCCESS
}

/// Offline replay of fleet telemetry into weekly per-site trend tables
/// — the same classification path as the live `/health`.
fn backtest(flags: &[(String, String)]) -> ExitCode {
    let config = BacktestConfig {
        week_len: parsed(flags, "week-len", 7u64).max(1),
        top: parsed(flags, "top", 0usize),
        ..BacktestConfig::default()
    };
    let report = match (flag(flags, "state-dir"), flag(flags, "history")) {
        (Some(dir), _) => {
            // The store a serving daemon persisted under --state-dir.
            let ts = match timeseries::TsStore::open(
                std::path::Path::new(dir).join("ts"),
                Default::default(),
            ) {
                Ok(ts) => ts,
                Err(e) => {
                    eprintln!("error: cannot open telemetry store under {dir}: {e}");
                    return ExitCode::from(2);
                }
            };
            backtest_store(&ts, &config)
        }
        (None, Some(path)) => {
            // A raw cycle history, replayed through an in-memory store.
            let load = match load_jsonl::<CycleRecord>(std::path::Path::new(path)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(e) = &load.dropped_trailing {
                eprintln!("warning: discarded torn trailing history line: {e}");
            }
            backtest_history(&load.records, Default::default(), &config)
        }
        (None, None) => {
            eprintln!(
                "usage: leakprofd backtest (--state-dir PATH | --history PATH) [--out DIR] \
                 [--week-len N] [--top N]"
            );
            return ExitCode::from(2);
        }
    };
    print!("{}", render_table(&report));
    if let Some(out) = flag(flags, "out") {
        let out = std::path::Path::new(out);
        if let Err(e) = write_report(&report, out) {
            eprintln!("error: cannot write report to {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote report.txt, weekly_rms.csv, verdicts.csv to {}",
            out.display()
        );
    }
    ExitCode::SUCCESS
}

/// Backfills a history JSONL into the durable telemetry store, so
/// backtests cover cycles recorded before the store existed.
fn migrate(flags: &[(String, String)]) -> ExitCode {
    let (Some(path), Some(dir)) = (flag(flags, "history"), flag(flags, "state-dir")) else {
        eprintln!("usage: leakprofd migrate-history --history PATH --state-dir PATH");
        return ExitCode::from(2);
    };
    let load = match load_jsonl::<CycleRecord>(std::path::Path::new(path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(e) = &load.dropped_trailing {
        eprintln!("warning: discarded torn trailing history line (not migrated): {e}");
    }
    let mut ts =
        match timeseries::TsStore::open(std::path::Path::new(dir).join("ts"), Default::default()) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("error: cannot open telemetry store under {dir}: {e}");
                return ExitCode::from(2);
            }
        };
    let (appended, skipped) = match migrate_history(&load.records, &mut ts) {
        Ok(counts) => counts,
        Err(e) => {
            eprintln!("error: migration failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = ts.flush() {
        eprintln!("error: cannot flush telemetry store: {e}");
        return ExitCode::from(2);
    }
    println!(
        "migrated {} cycle(s) into {dir}/ts ({} already present or out of order)",
        appended, skipped
    );
    ExitCode::SUCCESS
}

/// `leakprofd merge`: fold N shard state dirs (snapshot + WAL replay
/// each, exactly like a restarting daemon) into one fleet-wide ranking
/// — byte-identical to a single whole-fleet daemon's. `--out DIR`
/// persists the fold as a regular state dir.
fn merge_cmd(flags: &[(String, String)]) -> ExitCode {
    let dirs: Vec<std::path::PathBuf> = flags_all(flags, "state-dir")
        .into_iter()
        .map(std::path::PathBuf::from)
        .collect();
    if dirs.is_empty() {
        eprintln!(
            "usage: leakprofd merge --state-dir PATH [--state-dir ...] [--out DIR] \
             [--threshold T] [--top N]"
        );
        return ExitCode::from(2);
    }
    let config = MergeConfig::default();
    let mut merged = match merge_state_dirs(&dirs, &config) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: merge failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "merged {} shard state dir(s), fleet cycle {}:",
        merged.shards.len(),
        merged.cycle
    );
    for s in &merged.shards {
        let shard = s
            .shard
            .as_ref()
            .map_or("untagged".to_string(), |id| id.to_string());
        println!(
            "  {:<16} cycle {:>4}  {:>6} profiles  {}",
            shard, s.cycle, s.profiles_ingested, s.dir
        );
    }
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: parsed(flags, "threshold", 40),
        ast_filter: false,
        top_n: parsed(flags, "top", 10),
    });
    print!("{}", lp.report_from_accumulator(&merged.acc).render());
    let s = merged.ledger.summary();
    println!(
        "ledger: {} site(s) tracked ({} active), {} paged / {} suppressed all-time",
        s.tracked, s.active, s.reported_total, s.suppressed_total
    );
    if let Some(out) = flag(flags, "out") {
        let out = std::path::Path::new(out);
        if let Err(e) = write_merged(out, &mut merged, &config) {
            eprintln!("error: cannot write merged state to {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote merged state dir to {} (snapshot + ledger.json + ts)",
            out.display()
        );
    }
    ExitCode::SUCCESS
}

/// `leakprofd fleet`: the long-running live merge tier. Polls each
/// `--shard-addr`'s `/api/snapshot` behind circuit breakers, serves
/// the merged endpoints, and — with `--shard-map`/`--out-map` — writes
/// every rebalanced map version out for shard daemons to pick up.
fn fleet_cmd(flags: &[(String, String)]) -> ExitCode {
    let addr_values = flags_all(flags, "shard-addr");
    if addr_values.is_empty() {
        eprintln!(
            "usage: leakprofd fleet --shard-addr HOST:PORT [--shard-addr ...] [--port P] \
             [--interval-ms MS] [--polls N] [--shards N | --shard-map PATH] [--out-map PATH] \
             [--threshold T] [--top N]"
        );
        return ExitCode::from(2);
    }
    let addrs = match parse_addrs(&addr_values, "shard-addr") {
        Ok(a) => a,
        Err(code) => return code,
    };
    let map = match flag(flags, "shard-map") {
        Some(path) => match ShardMap::load(std::path::Path::new(path)) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("error: cannot load shard map {path}: {e}");
                return ExitCode::from(2);
            }
        },
        // --shards N is the canonical N-seat map — the same one
        // `serve --shard I/N` uses without a map file.
        None => {
            let n: u32 = parsed(flags, "shards", 0);
            (n > 0).then(|| ShardMap::new(n))
        }
    };
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: parsed(flags, "threshold", 40),
        ast_filter: false,
        top_n: parsed(flags, "top", 10),
    });
    let fleet = Arc::new(Mutex::new(FleetAggregator::new(
        FleetConfig {
            map,
            ..FleetConfig::new(addrs.clone())
        },
        lp,
    )));
    let port: u16 = parsed(flags, "port", 0);
    let mut server = match serve_fleet_endpoints(Arc::clone(&fleet), &format!("127.0.0.1:{port}")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind fleet endpoints: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "leakprofd: fleet tier over {} shard(s), serving merged /metrics, /status, /health, \
         /api/snapshot on http://{}",
        addrs.len(),
        server.addr()
    );
    let polls: u64 = parsed(flags, "polls", 0);
    let interval_ms: u64 = parsed(flags, "interval-ms", 1000);
    let out_map = flag(flags, "out-map").map(std::path::PathBuf::from);
    let mut saved_version = 0u64;
    let mut ran = 0u64;
    loop {
        let (answered, status) = {
            let mut f = fleet.lock().expect("fleet poisoned");
            let answered = f.poll_once();
            // Persist every new map version — the initial one, failover
            // rebalances, recoveries — so shard daemons can pick it up.
            if let (Some(path), Some(map)) = (&out_map, f.map()) {
                if map.version > saved_version {
                    match map.save(path) {
                        Ok(()) => {
                            saved_version = map.version;
                            println!(
                                "leakprofd: fleet: wrote shard map v{} to {}",
                                map.version,
                                path.display()
                            );
                        }
                        Err(e) => eprintln!("leakprofd: fleet: cannot write shard map: {e}"),
                    }
                }
            }
            (answered, f.status())
        };
        ran += 1;
        println!(
            "poll {ran}: {answered}/{} shard(s) answered, {} stale, {} profiles, {} suspect(s)",
            status.shards.len(),
            status.stale_shards,
            status.profiles_ingested,
            status.top.len()
        );
        if polls > 0 && ran >= polls {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    let f = fleet.lock().expect("fleet poisoned");
    if let Some(report) = f.last_report() {
        print!("{}", report.render());
    }
    print!("{}", f.metrics_text());
    drop(f);
    server.shutdown();
    ExitCode::SUCCESS
}

/// Runs the deterministic chaos harness against a demo fleet and
/// reports whether the crash-safety invariants held.
fn chaos(flags: &[(String, String)]) -> ExitCode {
    let seed: u64 = parsed(flags, "seed", 7);
    let state_dir = flag(flags, "state-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("leakprofd-chaos-{seed}")));
    let mut config = ChaosConfig::quick(seed, state_dir.clone());
    config.instances = parsed(flags, "instances", 8);
    config.cycles = parsed(flags, "cycles", 12u64);
    config.plan = ChaosPlanConfig {
        restart_every: parsed(flags, "restart-every", 4u64),
        ..ChaosPlanConfig::default()
    };
    println!(
        "leakprofd: chaos over {} instances, {} cycles, seed {seed}, state in {}",
        config.instances,
        config.cycles,
        state_dir.display()
    );
    match run_chaos(&config, |line| println!("{line}")) {
        Ok(outcome) => {
            println!("{}", outcome.render());
            if outcome.invariants_hold() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: chaos run failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// `leakprofd push`: the push client. Discovers instances at
/// `--fleet-addr`, then `--pushers` worker threads each poll their
/// slice of the fleet's profiles and push them to `--addr`'s
/// `/api/push` when the blocked count crosses `--watermark` (or every
/// `--heartbeat` polls), retrying shed pushes with capped exponential
/// backoff honoring `Retry-After`.
fn push_cmd(flags: &[(String, String)]) -> ExitCode {
    let daemon_addr = match addr_flag(flags, "push") {
        Ok(a) => a,
        Err(code) => return code,
    };
    let Some(fleet) = flag(flags, "fleet-addr") else {
        eprintln!("usage: leakprofd push --addr HOST:PORT --fleet-addr HOST:PORT");
        return ExitCode::from(2);
    };
    let fleet_addr: std::net::SocketAddr = match fleet.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: bad --fleet-addr {fleet}: {e}");
            return ExitCode::from(2);
        }
    };
    let ids: Vec<String> = match fetch(fleet_addr, "/instances")
        .and_then(|body| serde_json::from_str(&body).map_err(|e| format!("/instances: {e}")))
    {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("error: cannot list instances at {fleet_addr}: {e}");
            return ExitCode::from(2);
        }
    };
    if ids.is_empty() {
        eprintln!("error: {fleet_addr} serves no instances");
        return ExitCode::from(1);
    }
    let pushers: usize = parsed(flags, "pushers", 4usize).max(1).min(ids.len());
    let rounds: u64 = parsed(flags, "rounds", 1);
    let watermark: u64 = parsed(flags, "watermark", 1);
    let heartbeat: u64 = parsed(flags, "heartbeat", 0);
    let interval_ms: u64 = parsed(flags, "interval-ms", 500);
    let seed: u64 = parsed(flags, "seed", 7);
    let trace_out = flag(flags, "trace-out").map(String::from);
    println!(
        "leakprofd: pushing {} instance(s) from http://{fleet_addr} to http://{daemon_addr}/api/push \
         ({pushers} pusher(s), watermark {watermark})",
        ids.len()
    );
    let slices: Vec<Vec<String>> = {
        let mut slices = vec![Vec::new(); pushers];
        for (i, id) in ids.into_iter().enumerate() {
            slices[i % pushers].push(id);
        }
        slices
    };
    let traced = trace_out.is_some();
    let handles: Vec<_> = slices
        .into_iter()
        .enumerate()
        .map(|(pusher, slice)| {
            std::thread::spawn(move || {
                let mut client = PushClient::new(
                    daemon_addr,
                    PushConfig {
                        jitter_seed: seed,
                        ..PushConfig::default()
                    },
                );
                if traced {
                    let tracer = obs::Tracer::new(&obs::TraceConfig::default());
                    tracer.set_service(&format!("push-{pusher}"), env!("CARGO_PKG_VERSION"));
                    client.set_tracer(tracer);
                }
                let mut triggers: Vec<WatermarkTrigger> = slice
                    .iter()
                    .map(|_| WatermarkTrigger::new(watermark, heartbeat))
                    .collect();
                let mut round = 0u64;
                loop {
                    round += 1;
                    for (id, trigger) in slice.iter().zip(triggers.iter_mut()) {
                        let profile: gosim::GoroutineProfile =
                            match fetch(fleet_addr, &ProfileHub::profile_path(id))
                                .and_then(|b| serde_json::from_str(&b).map_err(|e| e.to_string()))
                            {
                                Ok(p) => p,
                                Err(e) => {
                                    eprintln!("leakprofd: push: cannot fetch {id}: {e}");
                                    continue;
                                }
                            };
                        if !trigger.should_push(profile.goroutines.len() as u64) {
                            continue;
                        }
                        match client.push(&profile) {
                            Ok(_) => {}
                            Err(e @ PushError::Rejected { .. }) => {
                                eprintln!("leakprofd: push: {id}: {e}");
                            }
                            // Shed budgets exhausted or transport down:
                            // drop this round's profile, the next round
                            // pushes a fresher one anyway.
                            Err(_) => {}
                        }
                    }
                    if rounds > 0 && round >= rounds {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                }
                let snapshot = traced.then(|| client.tracer().snapshot());
                (client.stats().clone(), snapshot)
            })
        })
        .collect();
    let mut total = collector::PushStats::default();
    let mut snapshots: Vec<obs::TraceSnapshot> = Vec::new();
    for h in handles {
        let (s, snapshot) = h.join().expect("pusher thread panicked");
        total.pushed += s.pushed;
        total.sheds += s.sheds;
        total.transport_errors += s.transport_errors;
        total.failed += s.failed;
        snapshots.extend(snapshot);
    }
    if let Some(path) = &trace_out {
        let chrome = match snapshots.as_slice() {
            [one] => obs::to_chrome(one),
            many => obs::to_chrome_stitched(many),
        };
        if let Err(e) = std::fs::write(path, &chrome) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {} pusher trace(s) to {path} (stitch with `leakprofd trace --addr ...` \
             for the daemon side)",
            snapshots.len()
        );
    }
    println!(
        "pushed {} profile(s); {} shed response(s) absorbed, {} transport error(s), {} failed",
        total.pushed, total.sheds, total.transport_errors, total.failed
    );
    if total.pushed == 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Reads every `.go` file under `dir` as `(text, rel_path)` pairs in
/// deterministic (sorted) order.
fn read_go_tree(dir: &std::path::Path) -> std::io::Result<Vec<(String, String)>> {
    fn walk(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "go") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(dir, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(dir)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((text, rel));
    }
    Ok(sources)
}

/// `leakprofd racecheck --dir PATH`: one-shot happens-before race
/// detection over a source tree. Compiles every `.go` file in race
/// mode, runs every zero-arg entry point (or just `--entry NAME`) under
/// the vector-clock engine, and reports the findings `go run -race`
/// style (or as JSON with `--json`). Exit 0 when race-free, 1 when
/// races were found, 2 on compile/IO errors.
fn racecheck_cmd(flags: &[(String, String)]) -> ExitCode {
    let Some(dir) = flag(flags, "dir") else {
        eprintln!("error: racecheck requires --dir PATH");
        return ExitCode::from(2);
    };
    let dir = std::path::PathBuf::from(dir);
    let sources = match read_go_tree(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    if sources.is_empty() {
        eprintln!("error: no .go files under {}", dir.display());
        return ExitCode::from(2);
    }
    let cfg = racecheck::RunConfig {
        seed: parsed(flags, "seed", 13u64),
        ticks: parsed(flags, "ticks", 5_000u64),
        ..racecheck::RunConfig::default()
    };
    let entries = match flag(flags, "entry") {
        Some(entry) => vec![entry.to_string()],
        None => match racecheck::discover_entries(&sources) {
            Ok(entries) => entries,
            Err(diags) => {
                for d in &diags {
                    eprintln!("error: {d}");
                }
                return ExitCode::from(2);
            }
        },
    };
    if entries.is_empty() {
        eprintln!(
            "error: no zero-argument entry points under {}",
            dir.display()
        );
        return ExitCode::from(2);
    }
    let report = match racecheck::check_entries(&sources, &entries, &cfg) {
        Ok(r) => r,
        Err(diags) => {
            for d in &diags {
                eprintln!("error: {d}");
            }
            return ExitCode::from(2);
        }
    };
    if flags.iter().any(|(k, _)| k == "json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        eprintln!(
            "leakprofd: racecheck: {} file(s), {} entry point(s), {} access event(s)",
            sources.len(),
            entries.len(),
            report.events_analyzed
        );
        print!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
