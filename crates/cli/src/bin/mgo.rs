//! `mgo` — compile and run mini-Go programs on the simulated runtime.
//!
//! ```text
//! mgo run   <files...> [--func pkg.F] [--seed N] [--ticks T]   execute
//! mgo leaks <files...> [--func pkg.F] [--seed N]               goleak verdict
//! mgo dump  <files...> [--func pkg.F] [--seed N]               goroutine profile
//! ```
//!
//! Exit code: 0 on success / no leaks, 1 when leaks are found, 2 on
//! usage or compile errors.

use std::path::PathBuf;
use std::process::ExitCode;

use gosim::Runtime;
use leaklab_cli::{collect_go_files, flag, read_source, split_flags};

fn usage() -> ExitCode {
    eprintln!("usage: mgo <run|leaks|dump> <files...> [--func pkg.F] [--seed N] [--ticks T]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let (pos, flags) = split_flags(args);
    let files = collect_go_files(&pos);
    if files.is_empty() {
        return usage();
    }

    let seed: u64 = flag(&flags, "seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let ticks: u64 = flag(&flags, "ticks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    let mut sources = Vec::new();
    for f in &files {
        let src = match read_source(f) {
            Ok(s) => s,
            Err(code) => return code,
        };
        sources.push((src, f.display().to_string()));
    }
    let prog = match minigo::compile_many(&sources) {
        Ok(p) => p,
        Err(diags) => {
            for d in diags {
                eprintln!("error: {d}");
            }
            return ExitCode::from(2);
        }
    };

    // Pick the entry: --func, else `main`, else the only zero-arg func.
    let entry = match flag(&flags, "func") {
        Some(f) => f.to_string(),
        None => {
            if prog.func("main").is_some() {
                "main".to_string()
            } else {
                let mut names: Vec<&str> = prog.func_names().collect();
                names.sort_unstable();
                match names.as_slice() {
                    [one] => one.to_string(),
                    _ => {
                        eprintln!(
                            "error: multiple functions; pick one with --func (have: {})",
                            names.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
        }
    };

    let mut rt = Runtime::with_seed(seed);
    if prog.spawn_func(&mut rt, &entry, vec![]).is_none() {
        eprintln!("error: no function named {entry}");
        return ExitCode::from(2);
    }
    rt.run_until_blocked(1_000_000);
    rt.advance(ticks, 1_000_000);

    match cmd.as_str() {
        "run" => {
            let stats = rt.stats();
            println!(
                "done: {} goroutines spawned, {} completed, {} panicked, {} messages, {} live",
                stats.spawned,
                stats.completed,
                stats.panicked,
                stats.msgs_transferred,
                rt.live_count()
            );
            for e in rt.exits().iter().filter(|e| e.panic.is_some()) {
                println!(
                    "  panic in {}: {}",
                    e.name,
                    e.panic.as_deref().unwrap_or("")
                );
            }
            ExitCode::SUCCESS
        }
        "leaks" => {
            let leaks = goleak::find_with_retry(&mut rt, &goleak::Options::default());
            if leaks.is_empty() {
                println!("no goroutine leaks");
                return ExitCode::SUCCESS;
            }
            println!("{} goroutine leak(s):", leaks.len());
            for l in &leaks {
                println!("  {l}");
            }
            ExitCode::from(1)
        }
        "dump" => {
            let name = files
                .first()
                .map(|p: &PathBuf| p.display().to_string())
                .unwrap_or_else(|| "mgo".into());
            print!("{}", rt.goroutine_profile(name).render());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
