//! `leakprof-cli` — analyze goroutine-profile JSON files offline.
//!
//! Profiles are the JSON serialization of [`gosim::GoroutineProfile`]
//! (one file per instance, or a JSON array per file). Optionally index
//! mini-Go sources for the criterion-2 transient filter.
//!
//! ```text
//! leakprof-cli <profile.json...> [--threshold N] [--top N]
//!              [--src dir-or-file.go]... [--no-filter] [--store state.json]
//! ```
//!
//! With `--store`, the sweep history is loaded/saved across invocations:
//! only NEW suspects alert, ongoing ones are deduped, and vanished
//! acknowledged issues transition to Fixed — the paper's daily-sweep
//! lifecycle.
//!
//! Exit code: 0 when no suspects, 1 when suspects are reported, 2 on
//! errors.

use std::process::ExitCode;

use gosim::GoroutineProfile;
use leaklab_cli::{collect_go_files, flag, read_source, split_flags};
use leakprof::{Config, LeakProf};

fn main() -> ExitCode {
    match run() {
        Ok(c) | Err(c) => c,
    }
}

fn run() -> Result<ExitCode, ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (pos, flags) = split_flags(args);
    if pos.is_empty() {
        eprintln!(
            "usage: leakprof-cli <profile.json...> [--threshold N] [--top N] [--src PATH] [--no-filter] [--store state.json]"
        );
        return Err(ExitCode::from(2));
    }
    let threshold: u64 = flag(&flags, "threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let top_n: usize = flag(&flags, "top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let ast_filter = flag(&flags, "no-filter").is_none();

    let mut lp = LeakProf::new(Config {
        threshold,
        ast_filter,
        top_n,
    });

    // Index sources for the transient filter.
    let srcs: Vec<String> = flags
        .iter()
        .filter(|(n, _)| n == "src")
        .map(|(_, v)| v.clone())
        .collect();
    for s in collect_go_files(&srcs) {
        let text = read_source(&s)?;
        if let Err(diags) = lp.index_source(&text, &s.display().to_string()) {
            for d in diags {
                eprintln!("{}: {d}", s.display());
            }
            return Err(ExitCode::from(2));
        }
    }

    // Load profiles: each file holds one profile or an array of them.
    let mut profiles: Vec<GoroutineProfile> = Vec::new();
    for p in &pos {
        let text = read_source(std::path::Path::new(p))?;
        if let Ok(many) = serde_json::from_str::<Vec<GoroutineProfile>>(&text) {
            profiles.extend(many);
        } else {
            match serde_json::from_str::<GoroutineProfile>(&text) {
                Ok(one) => profiles.push(one),
                Err(e) => {
                    eprintln!("error: {p} is not a goroutine profile: {e}");
                    return Err(ExitCode::from(2));
                }
            }
        }
    }

    let report = lp.analyze(&profiles);
    print!("{}", report.render());

    if let Some(store_path) = flag(&flags, "store") {
        let path = std::path::Path::new(store_path);
        let mut store = if path.exists() {
            match leakprof::SweepStore::from_json(&read_source(path)?) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: bad store {store_path}: {e}");
                    return Err(ExitCode::from(2));
                }
            }
        } else {
            leakprof::SweepStore::new()
        };
        let delta = store.record_sweep(&report);
        println!(
            "sweep {}: {} new, {} ongoing, {} vanished",
            store.sweeps(),
            delta.new.len(),
            delta.ongoing.len(),
            delta.vanished.len()
        );
        for op in &delta.new {
            println!("  NEW      {op}");
        }
        for op in &delta.vanished {
            println!("  VANISHED {op}");
        }
        let (reported, acked, fixed, rejected) = store.lifecycle();
        println!(
            "lifecycle: {reported} reported, {acked} acknowledged, {fixed} fixed, {rejected} rejected"
        );
        if let Err(e) = std::fs::write(path, store.to_json()) {
            eprintln!("error: cannot write {store_path}: {e}");
            return Err(ExitCode::from(2));
        }
    }

    if report.suspects.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}
