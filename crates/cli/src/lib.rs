//! Shared plumbing for the leaklab command-line tools.
//!
//! The binaries in this crate are the "downstream user" face of the
//! toolchain:
//!
//! * `mgo` — compile and run mini-Go programs on the simulated runtime,
//!   with goleak verification and profile dumps;
//! * `golint` — run the static analyzers (pathcheck/absint/modelcheck/
//!   rangeclose) over `.go` files;
//! * `leakprof-cli` — analyze goroutine-profile JSON files offline, the
//!   way the paper's LeakProf consumes pprof dumps;
//! * `corpusgen` — materialize a ground-truth-labelled corpus on disk;
//! * `leakprofd` — the continuous networked collection daemon: serve a
//!   demo fleet over loopback TCP, scrape it concurrently, and stream
//!   profiles into the incremental analyzer.

#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Reads a source file, exiting with a message on failure.
pub fn read_source(path: &Path) -> Result<String, ExitCode> {
    fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        ExitCode::from(2)
    })
}

/// Expands arguments into `.go` files: plain files pass through,
/// directories are walked recursively.
pub fn collect_go_files(args: &[String]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for a in args {
        let p = PathBuf::from(a);
        if p.is_dir() {
            walk(&p, &mut out);
        } else {
            out.push(p);
        }
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().map(|e| e == "go").unwrap_or(false) {
            out.push(p);
        }
    }
}

/// Parses `--flag value` style options out of an argument list, returning
/// (positional, flags).
pub fn split_flags(args: Vec<String>) -> (Vec<String>, Vec<(String, String)>) {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.into_iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = if it.peek().map(|v| !v.starts_with("--")).unwrap_or(false) {
                it.next().expect("peeked")
            } else {
                "true".to_string()
            };
            flags.push((name.to_string(), value));
        } else {
            pos.push(a);
        }
    }
    (pos, flags)
}

/// Looks up a flag value. For a repeated flag this returns the first
/// occurrence; use [`flags_all`] to collect every value.
pub fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Every value of a repeatable flag, in the order given (e.g.
/// `--state-dir a --state-dir b` or `--addr` once per shard daemon).
pub fn flags_all<'a>(flags: &'a [(String, String)], name: &str) -> Vec<&'a str> {
    flags
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_flags_separates_positional_and_options() {
        let (pos, flags) = split_flags(
            ["a.go", "--seed", "7", "b.go", "--verbose"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(pos, vec!["a.go", "b.go"]);
        assert_eq!(flag(&flags, "seed"), Some("7"));
        assert_eq!(flag(&flags, "verbose"), Some("true"));
        assert_eq!(flag(&flags, "missing"), None);
    }

    #[test]
    fn repeated_flags_collect_in_order() {
        let (_, flags) = split_flags(
            [
                "--addr", "a:1", "--top", "5", "--addr", "b:2", "--addr", "c:3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        assert_eq!(flags_all(&flags, "addr"), vec!["a:1", "b:2", "c:3"]);
        assert_eq!(flag(&flags, "addr"), Some("a:1"), "flag() sees the first");
        assert_eq!(flags_all(&flags, "top"), vec!["5"]);
        assert!(flags_all(&flags, "missing").is_empty());
    }
}
