//! End-to-end CLI tests: the tools drive the same pipelines as the
//! library, through real processes and real files.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("leaklab-cli-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const LEAKY: &str = r#"
package demo

func main() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
}
"#;

const CLEAN: &str = r#"
package demo

func main() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	<-ch
}
"#;

#[test]
fn mgo_leaks_exit_codes() {
    let dir = tmp_dir("mgo");
    let leaky = dir.join("leak.go");
    let clean = dir.join("clean.go");
    fs::write(&leaky, LEAKY).unwrap();
    fs::write(&clean, CLEAN).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_mgo"))
        .args(["leaks", leaky.to_str().unwrap()])
        .output()
        .expect("mgo runs");
    assert_eq!(out.status.code(), Some(1), "leaky file exits 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chan send"), "{stdout}");

    let out = Command::new(env!("CARGO_BIN_EXE_mgo"))
        .args(["leaks", clean.to_str().unwrap()])
        .output()
        .expect("mgo runs");
    assert_eq!(out.status.code(), Some(0), "clean file exits 0");
}

#[test]
fn mgo_dump_renders_profile() {
    let dir = tmp_dir("dump");
    let leaky = dir.join("leak.go");
    fs::write(&leaky, LEAKY).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mgo"))
        .args(["dump", leaky.to_str().unwrap()])
        .output()
        .expect("mgo runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("runtime.gopark"), "{stdout}");
    assert!(stdout.contains("chansend1"), "{stdout}");
}

#[test]
fn mgo_rejects_bad_source() {
    let dir = tmp_dir("bad");
    let bad = dir.join("bad.go");
    fs::write(&bad, "package p\nfunc F() { ??? }").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mgo"))
        .args(["run", bad.to_str().unwrap()])
        .output()
        .expect("mgo runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn golint_flags_leaks_and_passes_clean_code() {
    let dir = tmp_dir("lint");
    let leaky = dir.join("leak.go");
    fs::write(&leaky, LEAKY).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_golint"))
        .args([leaky.to_str().unwrap(), "--tool", "pathcheck"])
        .output()
        .expect("golint runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("blocked send"));

    // Path-sensitive tools pass the fixed code; `absint` (by design the
    // most FP-prone baseline) would still grumble, so pick pathcheck.
    let clean = dir.join("clean.go");
    fs::write(&clean, CLEAN).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_golint"))
        .args([clean.to_str().unwrap(), "--tool", "pathcheck"])
        .output()
        .expect("golint runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn corpusgen_then_golint_on_the_tree() {
    let dir = tmp_dir("corpus");
    let out = Command::new(env!("CARGO_BIN_EXE_corpusgen"))
        .args([
            dir.to_str().unwrap(),
            "--packages",
            "12",
            "--heavy",
            "--leak-rate",
            "0.8",
            "--seed",
            "5",
        ])
        .output()
        .expect("corpusgen runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("TRUTH.json").exists());
    assert!(dir.join("OWNERS.tsv").exists());

    // Lint the generated tree: with leak_rate 0.8 something must fire.
    let out = Command::new(env!("CARGO_BIN_EXE_golint"))
        .args([dir.to_str().unwrap(), "--tool", "pathcheck"])
        .output()
        .expect("golint runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn leakprof_cli_analyzes_serialized_profiles() {
    // Build a profile with gosim, serialize it, analyze it offline.
    let dir = tmp_dir("prof");
    let src_path = dir.join("leak.go");
    fs::write(&src_path, LEAKY).unwrap();

    let prog = minigo::compile(LEAKY, src_path.to_str().unwrap()).unwrap();
    let mut profiles = Vec::new();
    for i in 0..3 {
        let mut rt = gosim::Runtime::with_seed(i);
        for _ in 0..30 {
            prog.spawn_func(&mut rt, "main", vec![]).unwrap();
        }
        rt.run_until_blocked(100_000);
        profiles.push(rt.goroutine_profile(format!("inst-{i}")));
    }
    let pfile = dir.join("profiles.json");
    fs::write(&pfile, serde_json::to_string(&profiles).unwrap()).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_leakprof-cli"))
        .args([
            pfile.to_str().unwrap(),
            "--threshold",
            "20",
            "--src",
            src_path.to_str().unwrap(),
        ])
        .output()
        .expect("leakprof-cli runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("POTENTIAL GOROUTINE LEAK"), "{stdout}");
    assert!(stdout.contains("leak.go:6"), "{stdout}");
}
