//! End-to-end observability tests for the `leakprofd` binary: the
//! dogfood loop (`scrape-once` ranking the serving daemon's own
//! blocking sites via `/debug/self`), the `/trace` ⇄ Chrome
//! trace-event round trip, and the `top` dashboard.

use std::io::BufRead as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_leakprofd");

/// Kills the daemon on drop so a panicking test never leaks a child.
struct ServeGuard {
    child: Child,
    addr: SocketAddr,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `leakprofd serve` on an ephemeral port and parses the bound
/// endpoint address out of its startup banner.
fn spawn_serve() -> ServeGuard {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--instances",
            "3",
            "--days",
            "1",
            "--seed",
            "11",
            "--cycles",
            "0",
            "--interval-ms",
            "50",
            "--port",
            "0",
            "--threshold",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn leakprofd serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("banner before EOF")
            .expect("readable stdout");
        if let Some(rest) = line.split("on http://").nth(1) {
            let addr = rest.split_whitespace().next().expect("addr token");
            break addr.parse().expect("bound address parses");
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    ServeGuard { child, addr }
}

fn get(addr: SocketAddr, path: &str) -> String {
    let body = collector::http_get(
        addr,
        path,
        Duration::from_millis(1000),
        Duration::from_millis(2000),
    )
    .unwrap_or_else(|e| panic!("GET {path}: {e}"));
    String::from_utf8(body).expect("utf-8 body")
}

/// Waits until the daemon has finished at least `n` cycles.
fn wait_for_cycles(addr: SocketAddr, n: u64) {
    for _ in 0..200 {
        let status: collector::DaemonStatus =
            serde_json::from_str(&get(addr, "/status")).expect("status parses");
        if status.cycles >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon never reached {n} cycles");
}

#[test]
fn self_scrape_ranks_the_daemons_own_blocking_sites() {
    let serve = spawn_serve();
    wait_for_cycles(serve.addr, 2);

    // The daemon's /debug/self is a fleet-shaped profile, so the stock
    // scrape-once flow (discover /instances, scrape, rank) runs against
    // the daemon unchanged and must produce a non-empty ranking over
    // the daemon's own blocking sites.
    let out = Command::new(BIN)
        .args([
            "scrape-once",
            "--addr",
            &serve.addr.to_string(),
            "--threshold",
            "1",
        ])
        .output()
        .expect("run scrape-once");
    assert!(out.status.success(), "scrape-once failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        stdout.contains("POTENTIAL GOROUTINE LEAK"),
        "no ranking in:\n{stdout}"
    );
    // The endpoint pool workers idle on their dispatch channel; that
    // blocking site must be in the ranking, attributed to real source.
    assert!(
        stdout.contains("collector/src/http.rs"),
        "self-profile sites missing in:\n{stdout}"
    );
    assert!(
        stdout.contains("scraped 1/1 targets"),
        "bad stats:\n{stdout}"
    );
}

#[test]
fn trace_round_trips_through_the_chrome_exporter() {
    let serve = spawn_serve();
    wait_for_cycles(serve.addr, 3);

    // One fetch, then a pure round trip on that snapshot: what /trace
    // serves must survive to_chrome → from_chrome losslessly.
    let snapshot: obs::TraceSnapshot =
        serde_json::from_str(&get(serve.addr, "/trace")).expect("trace parses");
    assert!(!snapshot.cycles.is_empty(), "no retained cycles");
    for cycle in &snapshot.cycles {
        let root = cycle
            .spans
            .iter()
            .find(|s| s.stage == obs::stage::CYCLE)
            .expect("cycle root span");
        assert!(
            cycle
                .spans
                .iter()
                .any(|s| s.stage == obs::stage::TARGET && s.parent != root.id),
            "target spans must nest under scrape, not the root"
        );
    }
    let chrome = obs::to_chrome(&snapshot);
    let back = obs::from_chrome(&chrome).expect("exporter output re-imports");
    assert_eq!(back, snapshot.cycles, "chrome round trip must be lossless");

    // The `trace --out` subcommand writes that same importable format.
    let out_path =
        std::env::temp_dir().join(format!("leakprofd-trace-{}.json", std::process::id()));
    let out = Command::new(BIN)
        .args([
            "trace",
            "--addr",
            &serve.addr.to_string(),
            "--out",
            out_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run trace");
    assert!(out.status.success(), "trace failed: {out:?}");
    let exported = std::fs::read_to_string(&out_path).expect("trace file written");
    let cycles = obs::from_chrome(&exported).expect("trace file re-imports");
    assert!(!cycles.is_empty());
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn top_renders_one_dashboard_frame() {
    let serve = spawn_serve();
    wait_for_cycles(serve.addr, 2);

    let out = Command::new(BIN)
        .args([
            "top",
            "--addr",
            &serve.addr.to_string(),
            "--frames",
            "1",
            "--refresh-ms",
            "10",
        ])
        .output()
        .expect("run top");
    assert!(out.status.success(), "top failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        stdout.contains("leakprofd top —"),
        "header missing:\n{stdout}"
    );
    for needle in ["cycles ", "breakers  closed", "conns     reused", "stage"] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    // Keep-alive defaults on in serve mode: after two cycles against a
    // live fleet the pool must be reusing connections.
    let status: collector::DaemonStatus =
        serde_json::from_str(&get(serve.addr, "/status")).expect("status parses");
    assert!(
        status.keepalive.reused > 0,
        "no reuse: {:?}",
        status.keepalive
    );
    // And the per-stage table must cover the whole pipeline.
    let stages: Vec<&str> = status.stages.iter().map(|s| s.stage.as_str()).collect();
    for want in [
        obs::stage::CYCLE,
        obs::stage::SCRAPE,
        obs::stage::TARGET,
        obs::stage::INGEST,
        obs::stage::ANALYZE,
        obs::stage::LEDGER,
    ] {
        assert!(
            stages.contains(&want),
            "stage {want} missing from {stages:?}"
        );
    }
}
