//! Cycle history: an append-only JSONL file recording what each scrape
//! cycle found, with size-bounded compaction so a long-running daemon
//! does not grow its log without bound.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Result of a lenient JSONL load: the parsed records, plus whether a
/// corrupt trailing line (the signature of a crash mid-append) was
/// discarded.
#[derive(Debug)]
pub struct JsonlLoad<T> {
    /// Records parsed, oldest first.
    pub records: Vec<T>,
    /// The parse error of a discarded trailing line, if there was one.
    pub dropped_trailing: Option<String>,
}

/// Loads a JSONL file, tolerating exactly one corrupt or truncated
/// *trailing* line — the normal aftermath of a crash mid-append — by
/// discarding it. A corrupt line anywhere else means real data loss and
/// fails the load with [`std::io::ErrorKind::InvalidData`].
///
/// A missing file loads as empty.
///
/// # Errors
///
/// IO errors reading the file, or `InvalidData` for mid-file corruption.
pub fn load_jsonl<T: serde::Deserialize>(path: &Path) -> std::io::Result<JsonlLoad<T>> {
    if !path.exists() {
        return Ok(JsonlLoad {
            records: Vec::new(),
            dropped_trailing: None,
        });
    }
    let content = std::fs::read_to_string(path)?;
    let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records = Vec::with_capacity(lines.len());
    let mut dropped_trailing = None;
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<T>(line) {
            Ok(r) => records.push(r),
            Err(e) if i + 1 == lines.len() => {
                dropped_trailing = Some(e.to_string());
            }
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: corrupt record on line {} of {}: {e}",
                        path.display(),
                        i + 1,
                        lines.len()
                    ),
                ));
            }
        }
    }
    Ok(JsonlLoad {
        records,
        dropped_trailing,
    })
}

/// One ranked site, as persisted per cycle (a compact projection of
/// [`leakprof::SiteStats`] — enough to plot leak growth over time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopSite {
    /// Rendered blocking operation, e.g. `send at pay/handler.go:10`.
    pub op: String,
    /// Fleet-wide RMS impact at this cycle.
    pub rms: f64,
    /// Total blocked goroutines across instances.
    pub total: u64,
    /// Largest single-instance count.
    pub max_instance: u64,
}

/// One line of the history log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Monotonic cycle counter (daemon lifetime).
    pub cycle: u64,
    /// Profiles successfully scraped this cycle.
    pub profiles: usize,
    /// Targets that failed this cycle.
    pub failures: usize,
    /// Retry attempts this cycle.
    pub retries: u64,
    /// Cycle wall time in milliseconds.
    pub wall_ms: f64,
    /// p50 scrape latency (µs).
    pub p50_us: u64,
    /// p99 scrape latency (µs).
    pub p99_us: u64,
    /// Ranked top-K sites at this cycle.
    pub top: Vec<TopSite>,
}

/// Append-only JSONL history with automatic compaction.
#[derive(Debug)]
pub struct HistoryLog {
    path: PathBuf,
    /// Compaction threshold: when the file exceeds `2 * keep` records it
    /// is rewritten to the most recent `keep`.
    keep: usize,
    records_in_file: usize,
}

impl HistoryLog {
    /// Opens (or creates) a history log at `path`, keeping at least the
    /// most recent `keep` records across compactions. A corrupt trailing
    /// line left by a crash mid-append is truncated away on open (with a
    /// warning), so subsequent appends cannot bury it mid-file.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the existing file cannot be read, or
    /// [`std::io::ErrorKind::InvalidData`] for corruption that is *not*
    /// a torn trailing line (that is real data loss, not a torn write).
    pub fn open(path: impl AsRef<Path>, keep: usize) -> std::io::Result<HistoryLog> {
        let path = path.as_ref().to_path_buf();
        let records_in_file = if path.exists() {
            let loaded = load_jsonl::<CycleRecord>(&path)?;
            if let Some(e) = &loaded.dropped_trailing {
                eprintln!(
                    "leakprofd: history {}: truncating corrupt trailing record (crash mid-append?): {e}",
                    path.display()
                );
                let content = std::fs::read_to_string(&path)?;
                let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
                let tmp = path.with_extension("jsonl.tmp");
                {
                    let mut f = std::fs::File::create(&tmp)?;
                    for line in &lines[..lines.len() - 1] {
                        writeln!(f, "{line}")?;
                    }
                    f.flush()?;
                }
                std::fs::rename(&tmp, &path)?;
            }
            loaded.records.len()
        } else {
            0
        };
        Ok(HistoryLog {
            path,
            keep: keep.max(1),
            records_in_file,
        })
    }

    /// Appends one cycle record, compacting first if the file has grown
    /// past twice the retention target.
    ///
    /// # Errors
    ///
    /// Returns an IO error on write failure.
    pub fn append(&mut self, record: &CycleRecord) -> std::io::Result<()> {
        if self.records_in_file >= self.keep * 2 {
            self.compact()?;
        }
        let line = serde_json::to_string(record).expect("record serializes");
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(f, "{line}")?;
        self.records_in_file += 1;
        Ok(())
    }

    /// Rewrites the file keeping only the most recent `keep` records.
    /// The rewrite goes through a temp file + rename so a crash cannot
    /// truncate the log.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let content = std::fs::read_to_string(&self.path).unwrap_or_default();
        let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
        let start = lines.len().saturating_sub(self.keep);
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for line in &lines[start..] {
                writeln!(f, "{line}")?;
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.records_in_file = lines.len() - start;
        Ok(())
    }

    /// Loads every record currently in the file (oldest first). A
    /// corrupt or truncated *trailing* line — a crash mid-append — is
    /// discarded with a warning instead of failing the whole load;
    /// corruption anywhere else is real data loss and errors.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the file exists but cannot be read, or
    /// [`std::io::ErrorKind::InvalidData`] for mid-file corruption.
    pub fn load(&self) -> std::io::Result<Vec<CycleRecord>> {
        let loaded = load_jsonl::<CycleRecord>(&self.path)?;
        if let Some(e) = &loaded.dropped_trailing {
            eprintln!(
                "leakprofd: history {}: discarded corrupt trailing record (crash mid-append?): {e}",
                self.path.display()
            );
        }
        Ok(loaded.records)
    }

    /// Records currently in the file.
    pub fn len(&self) -> usize {
        self.records_in_file
    }

    /// True when no records have been written.
    pub fn is_empty(&self) -> bool {
        self.records_in_file == 0
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            profiles: 10,
            failures: 0,
            retries: 0,
            wall_ms: 1.5,
            p50_us: 100,
            p99_us: 900,
            top: vec![TopSite {
                op: format!("send at x.go:{cycle}"),
                rms: cycle as f64,
                total: cycle * 10,
                max_instance: cycle,
            }],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leakprofd-history-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_load_roundtrips() {
        let path = temp_path("roundtrip");
        let mut log = HistoryLog::open(&path, 100).unwrap();
        for c in 0..5 {
            log.append(&record(c)).unwrap();
        }
        let records = log.load().unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4].cycle, 4);
        assert_eq!(records[4].top[0].op, "send at x.go:4");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_bounds_the_file() {
        let path = temp_path("compact");
        let mut log = HistoryLog::open(&path, 10).unwrap();
        for c in 0..55 {
            log.append(&record(c)).unwrap();
        }
        // Never more than 2*keep + a cycle of growth.
        assert!(log.len() <= 21, "log holds {} records", log.len());
        let records = log.load().unwrap();
        // The newest records always survive.
        assert_eq!(records.last().unwrap().cycle, 54);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trailing_line_is_discarded_not_fatal() {
        // A crash mid-append leaves half a record at the end of the file.
        let path = temp_path("truncated");
        {
            let mut log = HistoryLog::open(&path, 10).unwrap();
            log.append(&record(1)).unwrap();
            log.append(&record(2)).unwrap();
        }
        // Hand-truncate: chop the last record's line in half (no newline).
        let content = std::fs::read_to_string(&path).unwrap();
        let cut = content.len() - content.len() / 4;
        std::fs::write(&path, &content[..cut]).unwrap();

        let mut log = HistoryLog::open(&path, 10).unwrap();
        let records = log.load().unwrap();
        assert_eq!(
            records.iter().map(|r| r.cycle).collect::<Vec<_>>(),
            vec![1],
            "the torn trailing record is dropped, the rest survives"
        );
        // The torn line was truncated on open, so appending keeps the
        // file loadable.
        log.append(&record(3)).unwrap();
        let records = HistoryLog::open(&path, 10).unwrap().load().unwrap();
        assert_eq!(
            records.iter().map(|r| r.cycle).collect::<Vec<_>>(),
            vec![1, 3]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp_path("midfile");
        {
            let mut log = HistoryLog::open(&path, 10).unwrap();
            log.append(&record(1)).unwrap();
        }
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{{torn write").unwrap();
            writeln!(f, "{}", serde_json::to_string(&record(2)).unwrap()).unwrap();
        }
        // Corruption that is NOT the trailing line is data loss: refuse.
        let err = HistoryLog::open(&path, 10).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_counts_existing_records() {
        let path = temp_path("reopen");
        {
            let mut log = HistoryLog::open(&path, 10).unwrap();
            log.append(&record(1)).unwrap();
            log.append(&record(2)).unwrap();
        }
        let log = HistoryLog::open(&path, 10).unwrap();
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
