//! Cycle history: an append-only JSONL file recording what each scrape
//! cycle found, with size-bounded compaction so a long-running daemon
//! does not grow its log without bound.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// One ranked site, as persisted per cycle (a compact projection of
/// [`leakprof::SiteStats`] — enough to plot leak growth over time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopSite {
    /// Rendered blocking operation, e.g. `send at pay/handler.go:10`.
    pub op: String,
    /// Fleet-wide RMS impact at this cycle.
    pub rms: f64,
    /// Total blocked goroutines across instances.
    pub total: u64,
    /// Largest single-instance count.
    pub max_instance: u64,
}

/// One line of the history log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Monotonic cycle counter (daemon lifetime).
    pub cycle: u64,
    /// Profiles successfully scraped this cycle.
    pub profiles: usize,
    /// Targets that failed this cycle.
    pub failures: usize,
    /// Retry attempts this cycle.
    pub retries: u64,
    /// Cycle wall time in milliseconds.
    pub wall_ms: f64,
    /// p50 scrape latency (µs).
    pub p50_us: u64,
    /// p99 scrape latency (µs).
    pub p99_us: u64,
    /// Ranked top-K sites at this cycle.
    pub top: Vec<TopSite>,
}

/// Append-only JSONL history with automatic compaction.
#[derive(Debug)]
pub struct HistoryLog {
    path: PathBuf,
    /// Compaction threshold: when the file exceeds `2 * keep` records it
    /// is rewritten to the most recent `keep`.
    keep: usize,
    records_in_file: usize,
}

impl HistoryLog {
    /// Opens (or creates) a history log at `path`, keeping at least the
    /// most recent `keep` records across compactions.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the existing file cannot be read.
    pub fn open(path: impl AsRef<Path>, keep: usize) -> std::io::Result<HistoryLog> {
        let path = path.as_ref().to_path_buf();
        let records_in_file = if path.exists() {
            std::fs::read_to_string(&path)?
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count()
        } else {
            0
        };
        Ok(HistoryLog {
            path,
            keep: keep.max(1),
            records_in_file,
        })
    }

    /// Appends one cycle record, compacting first if the file has grown
    /// past twice the retention target.
    ///
    /// # Errors
    ///
    /// Returns an IO error on write failure.
    pub fn append(&mut self, record: &CycleRecord) -> std::io::Result<()> {
        if self.records_in_file >= self.keep * 2 {
            self.compact()?;
        }
        let line = serde_json::to_string(record).expect("record serializes");
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(f, "{line}")?;
        self.records_in_file += 1;
        Ok(())
    }

    /// Rewrites the file keeping only the most recent `keep` records.
    /// The rewrite goes through a temp file + rename so a crash cannot
    /// truncate the log.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let content = std::fs::read_to_string(&self.path).unwrap_or_default();
        let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
        let start = lines.len().saturating_sub(self.keep);
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for line in &lines[start..] {
                writeln!(f, "{line}")?;
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.records_in_file = lines.len() - start;
        Ok(())
    }

    /// Loads every record currently in the file (oldest first). Corrupt
    /// lines are skipped rather than failing the load, so a torn write
    /// cannot brick `status`.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the file exists but cannot be read.
    pub fn load(&self) -> std::io::Result<Vec<CycleRecord>> {
        if !self.path.exists() {
            return Ok(Vec::new());
        }
        let content = std::fs::read_to_string(&self.path)?;
        Ok(content
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str(l).ok())
            .collect())
    }

    /// Records currently in the file.
    pub fn len(&self) -> usize {
        self.records_in_file
    }

    /// True when no records have been written.
    pub fn is_empty(&self) -> bool {
        self.records_in_file == 0
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            profiles: 10,
            failures: 0,
            retries: 0,
            wall_ms: 1.5,
            p50_us: 100,
            p99_us: 900,
            top: vec![TopSite {
                op: format!("send at x.go:{cycle}"),
                rms: cycle as f64,
                total: cycle * 10,
                max_instance: cycle,
            }],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leakprofd-history-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_load_roundtrips() {
        let path = temp_path("roundtrip");
        let mut log = HistoryLog::open(&path, 100).unwrap();
        for c in 0..5 {
            log.append(&record(c)).unwrap();
        }
        let records = log.load().unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4].cycle, 4);
        assert_eq!(records[4].top[0].op, "send at x.go:4");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_bounds_the_file() {
        let path = temp_path("compact");
        let mut log = HistoryLog::open(&path, 10).unwrap();
        for c in 0..55 {
            log.append(&record(c)).unwrap();
        }
        // Never more than 2*keep + a cycle of growth.
        assert!(log.len() <= 21, "log holds {} records", log.len());
        let records = log.load().unwrap();
        // The newest records always survive.
        assert_eq!(records.last().unwrap().cycle, 54);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_on_load() {
        let path = temp_path("corrupt");
        let mut log = HistoryLog::open(&path, 10).unwrap();
        log.append(&record(1)).unwrap();
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{{torn write").unwrap();
        }
        log.append(&record(2)).unwrap();
        let records = HistoryLog::open(&path, 10).unwrap().load().unwrap();
        assert_eq!(
            records.iter().map(|r| r.cycle).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_counts_existing_records() {
        let path = temp_path("reopen");
        {
            let mut log = HistoryLog::open(&path, 10).unwrap();
            log.append(&record(1)).unwrap();
            log.append(&record(2)).unwrap();
        }
        let log = HistoryLog::open(&path, 10).unwrap();
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
