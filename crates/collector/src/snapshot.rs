//! Durable daemon state: a versioned snapshot of the streaming
//! accumulator plus a write-ahead log of ingested cycles.
//!
//! The crash-safety protocol:
//!
//! 1. Every cycle's scraped profiles are appended to `wal.jsonl`
//!    **before** they are ingested into the accumulator.
//! 2. Every `snapshot_every` cycles the full accumulator state is
//!    written to `snapshot.json` via temp-file + rename, then the WAL is
//!    truncated.
//! 3. Recovery loads the snapshot (if any) and replays WAL entries with
//!    `cycle > snapshot.cycle`. The filter makes a crash *between* the
//!    rename and the truncate harmless: stale WAL entries are simply
//!    ignored.
//!
//! Because [`leakprof::AccumulatorSnapshot`] preserves the accumulator's
//! per-instance ingestion order verbatim and WAL replay re-ingests the
//! exact profiles, a recovered daemon produces **byte-identical** ranked
//! reports to one that never crashed (see `tests/chaos.rs`).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use gosim::GoroutineProfile;
use leakprof::AccumulatorSnapshot;
use serde::{Deserialize, Serialize};

use crate::history::load_jsonl;
use crate::stats::{CycleStats, HealthCounters};

/// Version tag written into every daemon snapshot. Bump on any layout
/// change; recovery refuses unknown versions instead of misparsing.
pub const DAEMON_SNAPSHOT_VERSION: u32 = 1;

/// The durable image of a daemon at a cycle boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonSnapshot {
    /// Format version ([`DAEMON_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The cycle this snapshot was taken after; WAL entries at or below
    /// this cycle are already folded in.
    pub cycle: u64,
    /// The streaming accumulator, ranking-exact.
    pub acc: AccumulatorSnapshot,
    /// Lifetime health counters as of `cycle`.
    pub health: HealthCounters,
}

/// One write-ahead-log line: everything needed to replay a cycle's
/// effect on the daemon without re-scraping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalEntry {
    /// The cycle number this entry records (1-based, daemon lifetime).
    pub cycle: u64,
    /// Profiles scraped this cycle, in ingestion order.
    pub profiles: Vec<GoroutineProfile>,
    /// The cycle's scrape-health stats (replayed into the counters).
    pub stats: CycleStats,
}

/// What recovery found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The committed snapshot, if one exists.
    pub snapshot: Option<DaemonSnapshot>,
    /// WAL entries newer than the snapshot, oldest first.
    pub wal: Vec<WalEntry>,
    /// Parse error of a torn trailing WAL line that was discarded (the
    /// signature of a crash mid-append).
    pub dropped_trailing: Option<String>,
}

impl Recovery {
    /// True when there was no durable state at all (fresh start).
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.wal.is_empty()
    }

    /// The highest cycle the recovered state reaches.
    pub fn last_cycle(&self) -> u64 {
        self.wal
            .last()
            .map(|e| e.cycle)
            .or_else(|| self.snapshot.as_ref().map(|s| s.cycle))
            .unwrap_or(0)
    }
}

/// Manages `snapshot.json` + `wal.jsonl` inside a state directory.
pub struct SnapshotStore {
    dir: PathBuf,
    tracer: obs::Tracer,
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("dir", &self.dir)
            .finish()
    }
}

impl SnapshotStore {
    /// Opens (creating if needed) the state directory.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<SnapshotStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotStore {
            dir,
            tracer: obs::Tracer::disabled(),
        })
    }

    /// Records a span for every WAL append and snapshot commit on
    /// `tracer` from now on.
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }

    /// Path of the committed snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.jsonl")
    }

    /// Appends one WAL entry and flushes it to the OS. Call *before*
    /// ingesting the cycle, so a crash after the append replays the
    /// cycle instead of losing it.
    ///
    /// # Errors
    ///
    /// Returns an IO error on write failure.
    pub fn append_wal(&self, entry: &WalEntry) -> std::io::Result<()> {
        let line = serde_json::to_string(entry).expect("wal entry serializes");
        let mut span = self.tracer.start(obs::stage::WAL_APPEND, "");
        span.attr("bytes", line.len());
        span.attr("profiles", entry.profiles.len());
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())?;
        writeln!(f, "{line}")?;
        f.flush()?;
        f.sync_data()?;
        Ok(())
    }

    /// Commits a snapshot atomically (temp file + rename) and truncates
    /// the WAL it supersedes. A crash between the rename and the
    /// truncate leaves stale WAL entries behind, which [`Self::recover`]
    /// filters out by cycle number.
    ///
    /// # Errors
    ///
    /// Returns an IO error on write failure.
    pub fn commit_snapshot(&self, snapshot: &DaemonSnapshot) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.json.tmp");
        let body = serde_json::to_string_pretty(snapshot).expect("snapshot serializes");
        let mut span = self.tracer.start(obs::stage::SNAPSHOT, "");
        span.attr("bytes", body.len());
        span.attr("cycle", snapshot.cycle);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.flush()?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.snapshot_path())?;
        // The WAL up to snapshot.cycle is now redundant.
        std::fs::File::create(self.wal_path())?.sync_data()?;
        Ok(())
    }

    /// Loads the committed snapshot and the WAL entries newer than it.
    /// A torn trailing WAL line (crash mid-append) is discarded and
    /// reported via [`Recovery::dropped_trailing`]; mid-file corruption
    /// or an unknown snapshot version is an error.
    ///
    /// # Errors
    ///
    /// IO errors, [`std::io::ErrorKind::InvalidData`] for a corrupt
    /// snapshot, mid-WAL corruption, or an unsupported version.
    pub fn recover(&self) -> std::io::Result<Recovery> {
        let snapshot = if self.snapshot_path().exists() {
            let text = std::fs::read_to_string(self.snapshot_path())?;
            let snap: DaemonSnapshot = serde_json::from_str(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: corrupt snapshot: {e}", self.snapshot_path().display()),
                )
            })?;
            if snap.version != DAEMON_SNAPSHOT_VERSION {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: snapshot version {} unsupported (expected {})",
                        self.snapshot_path().display(),
                        snap.version,
                        DAEMON_SNAPSHOT_VERSION
                    ),
                ));
            }
            Some(snap)
        } else {
            None
        };
        let loaded = load_jsonl::<WalEntry>(&self.wal_path())?;
        let floor = snapshot.as_ref().map(|s| s.cycle).unwrap_or(0);
        let wal: Vec<WalEntry> = loaded
            .records
            .into_iter()
            .filter(|e| e.cycle > floor)
            .collect();
        Ok(Recovery {
            snapshot,
            wal,
            dropped_trailing: loaded.dropped_trailing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::Gid;
    use gosim::{Frame, GoStatus, GoroutineRecord, Loc};
    use leakprof::FleetAccumulator;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leakprofd-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn profile(instance: &str, count: usize) -> GoroutineProfile {
        let rec = GoroutineRecord {
            gid: Gid(1),
            name: "pay.Process$1".into(),
            status: GoStatus::ChanSend { nil_chan: false },
            stack: vec![
                Frame::runtime("runtime.gopark"),
                Frame::runtime("runtime.chansend1"),
                Frame::new("pay.Process$1", Loc::new("pay/handler.go", 42)),
            ],
            created_by: Frame::new("pay.Process", Loc::new("pay/handler.go", 1)),
            wait_ticks: 100,
            retained_bytes: 8192,
        };
        GoroutineProfile {
            instance: instance.into(),
            captured_at: 0,
            goroutines: vec![rec; count],
        }
    }

    fn snapshot_at(cycle: u64, profiles: &[GoroutineProfile]) -> DaemonSnapshot {
        let mut acc = FleetAccumulator::new();
        for p in profiles {
            acc.ingest(p);
        }
        DaemonSnapshot {
            version: DAEMON_SNAPSHOT_VERSION,
            cycle,
            acc: acc.snapshot(),
            health: HealthCounters::default(),
        }
    }

    #[test]
    fn fresh_store_recovers_empty() {
        let dir = temp_dir("fresh");
        let store = SnapshotStore::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.is_empty());
        assert_eq!(rec.last_cycle(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrips_and_truncates_wal() {
        let dir = temp_dir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        let profiles = vec![profile("svc-0", 60), profile("svc-1", 40)];
        store
            .append_wal(&WalEntry {
                cycle: 1,
                profiles: profiles.clone(),
                stats: CycleStats::default(),
            })
            .unwrap();
        store.commit_snapshot(&snapshot_at(1, &profiles)).unwrap();

        let rec = store.recover().unwrap();
        let snap = rec.snapshot.expect("snapshot present");
        assert_eq!(snap.cycle, 1);
        let acc = FleetAccumulator::from_snapshot(&snap.acc).unwrap();
        assert_eq!(acc.profiles_ingested(), 2);
        // The commit truncated the WAL.
        assert!(rec.wal.is_empty());
        assert_eq!(std::fs::metadata(store.wal_path()).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_filters_wal_by_snapshot_cycle() {
        let dir = temp_dir("filter");
        let store = SnapshotStore::open(&dir).unwrap();
        store.commit_snapshot(&snapshot_at(2, &[])).unwrap();
        // Simulate a crash between rename and truncate: stale entries
        // (cycle <= 2) coexist with fresh ones.
        for cycle in 1..=4 {
            store
                .append_wal(&WalEntry {
                    cycle,
                    profiles: vec![profile("svc-0", cycle as usize)],
                    stats: CycleStats::default(),
                })
                .unwrap();
        }
        let rec = store.recover().unwrap();
        assert_eq!(
            rec.wal.iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![3, 4],
            "entries already folded into the snapshot are skipped"
        );
        assert_eq!(rec.last_cycle(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_wal_entry_is_discarded() {
        let dir = temp_dir("torn");
        let store = SnapshotStore::open(&dir).unwrap();
        store
            .append_wal(&WalEntry {
                cycle: 1,
                profiles: vec![profile("svc-0", 3)],
                stats: CycleStats::default(),
            })
            .unwrap();
        // Crash mid-append: half a second entry, no newline.
        let mut content = std::fs::read_to_string(store.wal_path()).unwrap();
        let half: String = content.chars().take(content.len() / 2).collect();
        content.push_str(&half);
        std::fs::write(store.wal_path(), &content).unwrap();

        let rec = store.recover().unwrap();
        assert_eq!(rec.wal.len(), 1);
        assert_eq!(rec.wal[0].cycle, 1);
        assert!(rec.dropped_trailing.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_snapshot_version_is_rejected() {
        let dir = temp_dir("version");
        let store = SnapshotStore::open(&dir).unwrap();
        let mut snap = snapshot_at(1, &[]);
        snap.version = DAEMON_SNAPSHOT_VERSION + 7;
        store.commit_snapshot(&snap).unwrap();
        let err = store.recover().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
