//! Minimal HTTP/1.1 over `std::net`: enough server and client to move
//! goroutine profiles between fleet instances and the collection daemon.
//!
//! The server multiplexes every registered instance behind one listener
//! (path routing does the demultiplexing), accepts connections on a
//! bounded worker pool, and supports deliberate response faults so tests
//! can exercise the scraper's failure paths.
//!
//! Both sides speak optional HTTP keep-alive. Clients that send
//! `connection: keep-alive` (see [`HttpConnection`]) get their socket
//! *parked* after the response instead of closed: a sentry thread polls
//! parked sockets with a non-blocking peek and redispatches them to the
//! worker pool the moment the next request arrives. Workers therefore
//! never block on an idle connection — a fleet of persistent scrapers
//! cannot starve a small pool. [`http_get`] still sends
//! `connection: close` and behaves exactly as before.
//!
//! `GET` and `POST` are supported (`POST` bodies are bounded by
//! `content-length`); the push-ingest tier POSTs profiles to the
//! daemon. Servers can bound their pending-connection queue
//! ([`ServerOptions::max_pending`]): a saturated accept pool answers a
//! proper `503` with `Retry-After` instead of silently dropping the
//! connection, so well-behaved pushers back off instead of retrying
//! into a black hole.

use obs::{site, WorkerBoard, WorkerState};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the server keeps an idle kept-alive connection parked
/// before closing it.
const PARK_IDLE_EXPIRY: Duration = Duration::from_secs(30);
/// Maximum parked connections; beyond this the oldest is closed (its
/// client falls back to a fresh connect on reuse failure).
const PARK_CAP: usize = 128;
/// Largest request body the server will read; larger `content-length`
/// values are answered with a 400 without reading the body.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request line, headers, and (for `POST`) the body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET` or `POST`).
    pub method: String,
    /// Request path, e.g. `/instance/pay-0/debug/pprof/goroutine`.
    pub path: String,
    /// True when the client asked for `connection: keep-alive`; the
    /// server then parks the socket for reuse after responding.
    pub keep_alive: bool,
    /// The raw `traceparent` header value, when the client sent one.
    /// Carried verbatim; handlers parse it with
    /// [`obs::TraceContext::parse`], which maps anything malformed to
    /// `None` (fresh root) rather than an error.
    pub traceparent: Option<String>,
    /// Request body (`content-length`-bound; empty for `GET`).
    pub body: Vec<u8>,
}

/// A response, including the fault the handler wants injected into its
/// delivery (used by the test fleet server; honest handlers leave
/// `fault` as [`ResponseFault::None`]).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra response headers, written verbatim after the standard set
    /// (used for `Retry-After` on backpressure responses).
    pub headers: Vec<(String, String)>,
    /// Delivery fault to inject.
    pub fault: ResponseFault,
}

/// How (and whether) to corrupt the delivery of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFault {
    /// Deliver normally.
    None,
    /// Sleep before writing anything (stalls slow-read clients; with a
    /// long enough delay, forces a client read timeout).
    Delay(Duration),
    /// Write headers and only the first half of the body, then close the
    /// socket — a mid-body disconnect.
    DropMidBody,
    /// Close the socket without writing anything.
    CloseBeforeResponse,
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into(),
            headers: Vec::new(),
            fault: ResponseFault::None,
        }
    }

    /// A 200 response with a plain-text body.
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
            fault: ResponseFault::None,
        }
    }

    /// A 200 response with an HTML body.
    pub fn html(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
            fault: ResponseFault::None,
        }
    }

    /// An error response with a short text body.
    pub fn error(status: u16, msg: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: msg.as_bytes().to_vec(),
            headers: Vec::new(),
            fault: ResponseFault::None,
        }
    }

    /// A backpressure response (`429` or `503`) carrying a retry hint:
    /// standard `retry-after` in whole seconds (rounded up, minimum 1)
    /// plus the precise `retry-after-ms` our own pushers prefer.
    pub fn retry_after(status: u16, retry_ms: u64, msg: &str) -> Response {
        let mut resp = Response::error(status, msg);
        resp.headers.push((
            "retry-after".to_string(),
            retry_ms.div_ceil(1000).max(1).to_string(),
        ));
        resp.headers
            .push(("retry-after-ms".to_string(), retry_ms.to_string()));
        resp
    }
}

fn status_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Server tuning beyond the worker count.
#[derive(Clone, Default)]
pub struct ServerOptions {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Register pool threads on this board (self-profile dogfood).
    pub board: Option<WorkerBoard>,
    /// Pending-connection bound: when this many accepted connections
    /// are already queued for the pool, further accepts are answered
    /// with a canned `503` + `Retry-After` and closed — the accept pool
    /// sheds load instead of queueing without bound (0 = unbounded).
    pub max_pending: usize,
    /// Retry hint (ms) sent with the saturation `503`.
    pub overload_retry_ms: u64,
    /// Counter bumped once per saturation `503`, shared with whoever
    /// exports metrics for this server.
    pub overload_rejected: Option<Arc<std::sync::atomic::AtomicU64>>,
}

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops the accept loop and joins every worker.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// requests through `handler` on a pool of `workers` threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve<H>(addr: &str, workers: usize, handler: H) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        HttpServer::serve_with_board(addr, workers, None, handler)
    }

    /// Like [`HttpServer::serve`], but registers every pool thread on
    /// `board` so the daemon's self-profile shows where its endpoint
    /// workers block (idle on the dispatch queue vs. reading a request).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve_with_board<H>(
        addr: &str,
        workers: usize,
        board: Option<WorkerBoard>,
        handler: H,
    ) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        HttpServer::serve_with_options(
            addr,
            ServerOptions {
                workers,
                board,
                ..ServerOptions::default()
            },
            handler,
        )
    }

    /// The most general constructor: worker count, optional worker
    /// board, and an optional pending-connection bound (see
    /// [`ServerOptions`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve_with_options<H>(
        addr: &str,
        options: ServerOptions,
        handler: H,
    ) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // A short accept timeout lets the loop notice the stop flag.
        listener.set_nonblocking(false)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let handler = Arc::new(handler);
        let workers = options.workers.max(1);
        let board = options.board;
        let max_pending = options.max_pending;
        let overload_retry_ms = if options.overload_retry_ms == 0 {
            250
        } else {
            options.overload_retry_ms
        };
        let rejected = options.overload_rejected;

        let spawn_site = site!("collector::http::HttpServer::serve");
        let accept_thread = std::thread::spawn(move || {
            // Connection queue feeding the worker pool. `pending` counts
            // queued-but-unclaimed connections so the accept loop can
            // shed with a 503 instead of queueing without bound.
            let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
            let rx = Arc::new(Mutex::new(rx));
            let pending = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            // Kept-alive sockets waiting for their next request; only
            // the sentry below ever blocks on them (and it never blocks).
            let parked: Arc<Mutex<Vec<ParkedConn>>> = Arc::new(Mutex::new(Vec::new()));
            let mut pool = Vec::new();
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let parked = Arc::clone(&parked);
                let pending = Arc::clone(&pending);
                let board = board.clone();
                pool.push(std::thread::spawn(move || {
                    let wh = board
                        .as_ref()
                        .map(|b| b.register("collector::http::worker", spawn_site));
                    loop {
                        if let Some(h) = &wh {
                            h.set(WorkerState::Idle, site!("collector::http::worker_recv"));
                        }
                        let conn = { rx.lock().expect("rx poisoned").recv() };
                        match conn {
                            Ok(stream) => {
                                pending.fetch_sub(1, Ordering::Relaxed);
                                if let Some(h) = &wh {
                                    h.set(
                                        WorkerState::Read,
                                        site!("collector::http::handle_connection"),
                                    );
                                }
                                if let Some(stream) = handle_connection(stream, handler.as_ref()) {
                                    park(&parked, stream);
                                }
                            }
                            Err(_) => break, // sender dropped: shutting down
                        }
                    }
                }));
            }
            // The sentry: polls parked connections without blocking and
            // feeds readable ones back to the worker queue.
            let sentry = {
                let parked = Arc::clone(&parked);
                let tx = tx.clone();
                let pending = Arc::clone(&pending);
                let stop = Arc::clone(&stop_accept);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        poll_parked(&parked, &tx, &pending);
                        std::thread::sleep(Duration::from_millis(2));
                    }
                })
            };
            listener
                .set_nonblocking(true)
                .expect("listener supports nonblocking");
            while !stop_accept.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if max_pending > 0 && pending.load(Ordering::Relaxed) >= max_pending {
                            // Accept pool saturated: answer honestly
                            // instead of queueing or dropping the
                            // connection on the floor. A detached
                            // thread does the write so the accept loop
                            // never blocks on a shed peer.
                            if let Some(c) = &rejected {
                                c.fetch_add(1, Ordering::Relaxed);
                            }
                            std::thread::spawn(move || {
                                shed_connection(stream, overload_retry_ms);
                            });
                            continue;
                        }
                        pending.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            let _ = sentry.join();
            parked.lock().expect("parked poisoned").clear();
            drop(tx);
            for w in pool {
                let _ = w.join();
            }
        });

        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the pool, and joins all threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers one saturated-pool connection with `503` + `Retry-After`.
/// The request is drained first: closing a socket with unread bytes
/// raises a TCP RST that can wipe out the response before the peer
/// reads it.
fn shed_connection(stream: TcpStream, retry_ms: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    if let Ok(peer) = stream.try_clone() {
        let mut reader = BufReader::new(peer);
        let _ = read_request(&mut reader);
    }
    let resp = Response::retry_after(503, retry_ms, "accept pool saturated");
    let _ = write_response(&stream, &resp, false);
}

/// A kept-alive socket awaiting its next request.
struct ParkedConn {
    stream: TcpStream,
    since: Instant,
}

/// Parks a connection for reuse, evicting the oldest when at capacity.
fn park(parked: &Mutex<Vec<ParkedConn>>, stream: TcpStream) {
    let mut parked = parked.lock().expect("parked poisoned");
    if parked.len() >= PARK_CAP {
        parked.remove(0); // drop = close; the client redials
    }
    parked.push(ParkedConn {
        stream,
        since: Instant::now(),
    });
}

/// One sentry pass: redispatch readable parked sockets to the worker
/// queue, close expired or dead ones, keep the rest parked. Never
/// blocks — readiness is probed with a non-blocking one-byte peek.
fn poll_parked(
    parked: &Mutex<Vec<ParkedConn>>,
    tx: &std::sync::mpsc::Sender<TcpStream>,
    pending: &std::sync::atomic::AtomicUsize,
) {
    let mut parked = parked.lock().expect("parked poisoned");
    let mut i = 0;
    while i < parked.len() {
        let conn = &parked[i];
        if conn.stream.set_nonblocking(true).is_err() {
            parked.remove(i);
            continue;
        }
        let mut probe = [0u8; 1];
        match conn.stream.peek(&mut probe) {
            Ok(0) => {
                // Peer closed while idle.
                parked.remove(i);
            }
            Ok(_) => {
                // Next request has started arriving: back to the pool.
                // Redispatches bypass the max_pending bound on purpose:
                // a parked connection already passed admission once.
                let conn = parked.remove(i);
                if conn.stream.set_nonblocking(false).is_ok() {
                    pending.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(conn.stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if conn.since.elapsed() > PARK_IDLE_EXPIRY {
                    parked.remove(i);
                } else {
                    let _ = conn.stream.set_nonblocking(false);
                    i += 1;
                }
            }
            Err(_) => {
                parked.remove(i);
            }
        }
    }
}

/// Serves one request on `stream`; returns the stream when the client
/// asked for keep-alive and the response went out intact, so the caller
/// can park it for the next request.
fn handle_connection<H>(stream: TcpStream, handler: &H) -> Option<TcpStream>
where
    H: Fn(&Request) -> Response,
{
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let Ok(peer) = stream.try_clone() else {
        return None;
    };
    let mut reader = BufReader::new(peer);
    let Some(req) = read_request(&mut reader) else {
        let _ = write_response(&stream, &Response::error(400, "malformed request"), false);
        return None;
    };
    let resp = if req.method == "GET" || req.method == "POST" {
        handler(&req)
    } else {
        Response::error(405, "only GET and POST are supported")
    };
    match resp.fault {
        ResponseFault::None => {
            if write_response(&stream, &resp, req.keep_alive).is_ok() && req.keep_alive {
                return Some(stream);
            }
        }
        ResponseFault::Delay(d) => {
            std::thread::sleep(d);
            if write_response(&stream, &resp, req.keep_alive).is_ok() && req.keep_alive {
                return Some(stream);
            }
        }
        ResponseFault::DropMidBody => {
            let half = resp.body.len() / 2;
            let _ = write_head(&stream, &resp, resp.body.len(), false);
            let _ = (&stream).write_all(&resp.body[..half]);
            // Dropping the stream here closes the socket mid-body.
        }
        ResponseFault::CloseBeforeResponse => {
            // Drop without writing: the client sees an abrupt EOF.
        }
    }
    None
}

fn read_request<R: BufRead>(reader: &mut R) -> Option<Request> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    // Drain headers until the blank line; `connection`,
    // `content-length`, and `traceparent` are the only ones the
    // collector protocol reacts to.
    let mut keep_alive = false;
    let mut content_length = 0usize;
    let mut traceparent = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("keep-alive")
            {
                keep_alive = true;
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            } else if name.eq_ignore_ascii_case(obs::TRACEPARENT) {
                traceparent = Some(value.trim().to_string());
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body = vec![0u8; content_length];
    let mut got = 0;
    while got < content_length {
        match reader.read(&mut body[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(_) => return None,
        }
    }
    Some(Request {
        method,
        path,
        keep_alive,
        traceparent,
        body,
    })
}

fn write_head(
    mut stream: &TcpStream,
    resp: &Response,
    content_length: usize,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        status_phrase(resp.status),
        resp.content_type,
        content_length,
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())
}

fn write_response(
    mut stream: &TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_head(stream, resp, resp.body.len(), keep_alive)?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Client-side failure modes, classified so scrape statistics can count
/// them separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// TCP connect failed (refused, unreachable, or timed out).
    Connect(String),
    /// The read deadline expired before a complete response arrived.
    Timeout,
    /// The peer closed the connection before the promised body length.
    Truncated {
        /// Bytes actually received.
        got: usize,
        /// Bytes promised by `content-length`.
        want: usize,
    },
    /// A complete response arrived with a non-200 status.
    Status(u16),
    /// The response could not be parsed as HTTP.
    Malformed(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Connect(e) => write!(f, "connect failed: {e}"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Truncated { got, want } => {
                write!(f, "truncated body: got {got} of {want} bytes")
            }
            HttpError::Status(s) => write!(f, "unexpected status {s}"),
            HttpError::Malformed(e) => write!(f, "malformed response: {e}"),
        }
    }
}

/// Performs a `GET` and returns the body on a 200 response.
///
/// # Errors
///
/// Returns an [`HttpError`] classifying connect failures, timeouts,
/// truncation, bad statuses, and unparseable responses.
pub fn http_get(
    addr: SocketAddr,
    path: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<Vec<u8>, HttpError> {
    http_get_with(addr, path, connect_timeout, read_timeout, None)
}

/// [`http_get`] plus an optional `traceparent` header value, so a traced
/// caller's distributed context rides the request.
///
/// # Errors
///
/// Returns an [`HttpError`] exactly as [`http_get`] does.
pub fn http_get_with(
    addr: SocketAddr,
    path: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
    traceparent: Option<&str>,
) -> Result<Vec<u8>, HttpError> {
    let stream = TcpStream::connect_timeout(&addr, connect_timeout)
        .map_err(|e| HttpError::Connect(e.to_string()))?;
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| HttpError::Connect(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    let mut req_stream = &stream;
    let request = format!(
        "GET {path} HTTP/1.1\r\nhost: collector\r\n{}connection: close\r\n\r\n",
        traceparent_header(traceparent)
    );
    req_stream
        .write_all(request.as_bytes())
        .map_err(|e| HttpError::Connect(e.to_string()))?;

    let mut reader = BufReader::new(&stream);
    read_response(&mut reader)
}

/// The `traceparent` header line (with trailing CRLF) for an outgoing
/// request, or the empty string when no context is being propagated.
fn traceparent_header(traceparent: Option<&str>) -> String {
    match traceparent {
        Some(tp) => format!("{}: {tp}\r\n", obs::TRACEPARENT),
        None => String::new(),
    }
}

/// Performs a `POST` with a `connection: close` request and reads the
/// response completely — including backpressure statuses, which come
/// back as [`ResponseMeta`] data rather than an error.
///
/// # Errors
///
/// Returns an [`HttpError`] for transport-level failures (connect,
/// timeout, truncation, unparseable response). HTTP-level rejection is
/// *not* an error here; check [`ResponseMeta::status`].
pub fn http_post(
    addr: SocketAddr,
    path: &str,
    content_type: &str,
    body: &[u8],
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<ResponseMeta, HttpError> {
    http_post_with(
        addr,
        path,
        content_type,
        body,
        connect_timeout,
        read_timeout,
        None,
    )
}

/// [`http_post`] plus an optional `traceparent` header value.
///
/// # Errors
///
/// Returns an [`HttpError`] exactly as [`http_post`] does.
#[allow(clippy::too_many_arguments)]
pub fn http_post_with(
    addr: SocketAddr,
    path: &str,
    content_type: &str,
    body: &[u8],
    connect_timeout: Duration,
    read_timeout: Duration,
    traceparent: Option<&str>,
) -> Result<ResponseMeta, HttpError> {
    let stream = TcpStream::connect_timeout(&addr, connect_timeout)
        .map_err(|e| HttpError::Connect(e.to_string()))?;
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| HttpError::Connect(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    let mut req_stream = &stream;
    let head = format!(
        "POST {path} HTTP/1.1\r\nhost: collector\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n{}connection: close\r\n\r\n",
        body.len(),
        traceparent_header(traceparent)
    );
    req_stream
        .write_all(head.as_bytes())
        .and_then(|()| req_stream.write_all(body))
        .map_err(|e| HttpError::Connect(e.to_string()))?;
    let mut reader = BufReader::new(&stream);
    read_response_meta(&mut reader)
}

/// A persistent client connection speaking `connection: keep-alive`, so
/// successive scrapes of the same target skip the TCP handshake. The
/// scraper pools one per target; [`HttpConnection::uses`] drives the
/// pool's retire-after-N policy.
#[derive(Debug)]
pub struct HttpConnection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    uses: u32,
}

impl HttpConnection {
    /// Dials `addr` with `connect_timeout` and arms every subsequent
    /// read with `read_timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Connect`] when the dial or socket setup
    /// fails.
    pub fn connect(
        addr: SocketAddr,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> Result<HttpConnection, HttpError> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)
            .map_err(|e| HttpError::Connect(e.to_string()))?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(|e| HttpError::Connect(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| HttpError::Connect(e.to_string()))?,
        );
        Ok(HttpConnection {
            stream,
            reader,
            uses: 0,
        })
    }

    /// Performs a `GET` over the persistent connection, leaving it open
    /// for the next request.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] like [`http_get`]; after an error the
    /// connection should be discarded (the stream may hold residual
    /// bytes).
    pub fn get(&mut self, path: &str) -> Result<Vec<u8>, HttpError> {
        self.get_with(path, None)
    }

    /// [`HttpConnection::get`] plus an optional `traceparent` header.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] exactly as [`HttpConnection::get`] does.
    pub fn get_with(
        &mut self,
        path: &str,
        traceparent: Option<&str>,
    ) -> Result<Vec<u8>, HttpError> {
        self.uses += 1;
        let request = format!(
            "GET {path} HTTP/1.1\r\nhost: collector\r\n{}connection: keep-alive\r\n\r\n",
            traceparent_header(traceparent)
        );
        self.stream
            .write_all(request.as_bytes())
            .map_err(|e| HttpError::Connect(e.to_string()))?;
        read_response(&mut self.reader)
    }

    /// Performs a `POST` over the persistent connection, leaving it
    /// open for the next request. Backpressure statuses come back as
    /// [`ResponseMeta`] data (the response was read completely, so the
    /// connection stays usable).
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] for transport-level failures; the
    /// connection should then be discarded.
    pub fn post(
        &mut self,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<ResponseMeta, HttpError> {
        self.post_with(path, content_type, body, None)
    }

    /// [`HttpConnection::post`] plus an optional `traceparent` header.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] exactly as [`HttpConnection::post`] does.
    pub fn post_with(
        &mut self,
        path: &str,
        content_type: &str,
        body: &[u8],
        traceparent: Option<&str>,
    ) -> Result<ResponseMeta, HttpError> {
        self.uses += 1;
        let head = format!(
            "POST {path} HTTP/1.1\r\nhost: collector\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n{}connection: keep-alive\r\n\r\n",
            body.len(),
            traceparent_header(traceparent)
        );
        self.stream
            .write_all(head.as_bytes())
            .and_then(|()| self.stream.write_all(body))
            .map_err(|e| HttpError::Connect(e.to_string()))?;
        read_response_meta(&mut self.reader)
    }

    /// Requests served over this connection so far.
    pub fn uses(&self) -> u32 {
        self.uses
    }
}

/// A fully-read HTTP response: status, retry hint (when the server sent
/// one), and body. What [`http_post`] and [`HttpConnection::post`]
/// return — backpressure statuses (`429`/`503`) are data to a pusher,
/// not errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseMeta {
    /// HTTP status code.
    pub status: u16,
    /// Retry hint in milliseconds: the server's `retry-after-ms` header
    /// when present, else `retry-after` (seconds) scaled up.
    pub retry_after_ms: Option<u64>,
    /// The server's `traceparent` response header, when present — how a
    /// push client learns which distributed trace the daemon is in so
    /// its next push can join it.
    pub traceparent: Option<String>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// Reads one HTTP response (status line, headers, `content-length`-bound
/// body) and returns the body of a 200. Does not read past the body, so
/// a kept-alive stream is left positioned at the next response.
fn read_response<R: BufRead>(reader: &mut R) -> Result<Vec<u8>, HttpError> {
    let meta = read_response_meta(reader)?;
    if meta.status != 200 {
        return Err(HttpError::Status(meta.status));
    }
    Ok(meta.body)
}

/// Reads one HTTP response completely, keeping the status and any retry
/// hint instead of collapsing non-200s into an error. Like
/// [`read_response`], leaves a kept-alive stream positioned at the next
/// response.
fn read_response_meta<R: BufRead>(reader: &mut R) -> Result<ResponseMeta, HttpError> {
    let mut status_line = String::new();
    read_line_classified(reader, &mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut retry_after_ms: Option<u64> = None;
    let mut retry_after_s: Option<u64> = None;
    let mut traceparent: Option<String> = None;
    loop {
        let mut header = String::new();
        read_line_classified(reader, &mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("retry-after-ms") {
                retry_after_ms = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after_s = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case(obs::TRACEPARENT) {
                traceparent = Some(value.trim().to_string());
            }
        }
    }
    let want =
        content_length.ok_or_else(|| HttpError::Malformed("missing content-length".to_string()))?;
    let mut body = vec![0u8; want];
    let mut got = 0;
    while got < want {
        match reader.read(&mut body[got..]) {
            Ok(0) => return Err(HttpError::Truncated { got, want }),
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(e.to_string())),
        }
    }
    Ok(ResponseMeta {
        status,
        retry_after_ms: retry_after_ms.or(retry_after_s.map(|s| s * 1000)),
        traceparent,
        body,
    })
}

fn read_line_classified<R: BufRead>(reader: &mut R, buf: &mut String) -> Result<(), HttpError> {
    match reader.read_line(buf) {
        Ok(0) => Err(HttpError::Truncated { got: 0, want: 1 }),
        Ok(_) => Ok(()),
        Err(e) if is_timeout(&e) => Err(HttpError::Timeout),
        Err(e) => Err(HttpError::Malformed(e.to_string())),
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_timeouts() -> (Duration, Duration) {
        (Duration::from_millis(500), Duration::from_millis(500))
    }

    #[test]
    fn roundtrip_get() {
        let server = HttpServer::serve("127.0.0.1:0", 2, |req: &Request| {
            Response::json(format!("{{\"path\":\"{}\"}}", req.path))
        })
        .unwrap();
        let (ct, rt) = client_timeouts();
        let body = http_get(server.addr(), "/hello", ct, rt).unwrap();
        assert_eq!(body, b"{\"path\":\"/hello\"}");
    }

    #[test]
    fn keep_alive_connection_serves_many_requests() {
        // One worker on purpose: parked connections must not occupy it,
        // or the interleaved close-mode request below would deadlock.
        let server = HttpServer::serve("127.0.0.1:0", 1, |req: &Request| {
            Response::json(format!("{{\"path\":\"{}\"}}", req.path))
        })
        .unwrap();
        let (ct, rt) = client_timeouts();
        let mut conn = HttpConnection::connect(server.addr(), ct, rt).unwrap();
        for i in 0..5 {
            let body = conn.get(&format!("/req/{i}")).unwrap();
            assert_eq!(body, format!("{{\"path\":\"/req/{i}\"}}").as_bytes());
        }
        assert_eq!(conn.uses(), 5);
        // A close-mode client interleaves fine while the connection is
        // parked...
        let body = http_get(server.addr(), "/plain", ct, rt).unwrap();
        assert_eq!(body, b"{\"path\":\"/plain\"}");
        // ...and the parked connection still works afterwards.
        let body = conn.get("/after").unwrap();
        assert_eq!(body, b"{\"path\":\"/after\"}");
    }

    #[test]
    fn worker_board_tracks_endpoint_pool() {
        let board = WorkerBoard::new();
        let server =
            HttpServer::serve_with_board("127.0.0.1:0", 3, Some(board.clone()), |_: &Request| {
                Response::text("ok")
            })
            .unwrap();
        // All three pool workers register and park idle on the queue.
        let deadline = Instant::now() + Duration::from_secs(2);
        while board.len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(board.len(), 3);
        let prof = board.self_profile("leakprofd");
        assert!(prof
            .goroutines
            .iter()
            .all(|g| g.status == gosim::GoStatus::ChanReceive { nil_chan: false }));
        drop(server);
        assert!(board.is_empty(), "shutdown deregisters the pool");
    }

    #[test]
    fn non_200_is_reported() {
        let server =
            HttpServer::serve("127.0.0.1:0", 1, |_: &Request| Response::error(404, "nope"))
                .unwrap();
        let (ct, rt) = client_timeouts();
        let err = http_get(server.addr(), "/missing", ct, rt).unwrap_err();
        assert_eq!(err, HttpError::Status(404));
    }

    #[test]
    fn mid_body_drop_is_truncation() {
        let server = HttpServer::serve("127.0.0.1:0", 1, |_: &Request| {
            let mut r = Response::json(vec![b'x'; 4096]);
            r.fault = ResponseFault::DropMidBody;
            r
        })
        .unwrap();
        let (ct, rt) = client_timeouts();
        match http_get(server.addr(), "/", ct, rt) {
            Err(HttpError::Truncated { got, want }) => {
                assert_eq!(want, 4096);
                assert!(got < want);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn delay_beyond_deadline_times_out() {
        let server = HttpServer::serve("127.0.0.1:0", 1, |_: &Request| {
            let mut r = Response::json("{}".to_string());
            r.fault = ResponseFault::Delay(Duration::from_millis(300));
            r
        })
        .unwrap();
        let err = http_get(
            server.addr(),
            "/",
            Duration::from_millis(500),
            Duration::from_millis(50),
        )
        .unwrap_err();
        assert_eq!(err, HttpError::Timeout);
    }

    #[test]
    fn post_roundtrip_carries_body() {
        let server = HttpServer::serve("127.0.0.1:0", 2, |req: &Request| {
            assert_eq!(req.method, "POST");
            Response::json(req.body.clone())
        })
        .unwrap();
        let (ct, rt) = client_timeouts();
        let meta = http_post(
            server.addr(),
            "/api/push",
            "application/json",
            b"{\"hello\":42}",
            ct,
            rt,
        )
        .unwrap();
        assert_eq!(meta.status, 200);
        assert_eq!(meta.body, b"{\"hello\":42}");
        assert_eq!(meta.retry_after_ms, None);
        // And over a kept-alive connection, twice.
        let mut conn = HttpConnection::connect(server.addr(), ct, rt).unwrap();
        for payload in [&b"one"[..], &b"two"[..]] {
            let meta = conn.post("/api/push", "application/json", payload).unwrap();
            assert_eq!(meta.status, 200);
            assert_eq!(meta.body, payload);
        }
    }

    #[test]
    fn traceparent_rides_requests_and_responses() {
        // The handler echoes the request's traceparent back as a
        // response header, proving both directions of the plumbing.
        let server = HttpServer::serve("127.0.0.1:0", 2, |req: &Request| {
            let mut resp = Response::text(match &req.traceparent {
                Some(tp) => format!("got {tp}"),
                None => "got none".to_string(),
            });
            if let Some(tp) = &req.traceparent {
                resp.headers
                    .push((obs::TRACEPARENT.to_string(), tp.clone()));
            }
            resp
        })
        .unwrap();
        let (ct, rt) = client_timeouts();
        let tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";

        let body = http_get_with(server.addr(), "/t", ct, rt, Some(tp)).unwrap();
        assert_eq!(body, format!("got {tp}").as_bytes());
        let body = http_get(server.addr(), "/t", ct, rt).unwrap();
        assert_eq!(body, b"got none");

        let meta =
            http_post_with(server.addr(), "/t", "text/plain", b"", ct, rt, Some(tp)).unwrap();
        assert_eq!(meta.traceparent.as_deref(), Some(tp));
        let meta = http_post(server.addr(), "/t", "text/plain", b"", ct, rt).unwrap();
        assert_eq!(meta.traceparent, None);

        let mut conn = HttpConnection::connect(server.addr(), ct, rt).unwrap();
        let body = conn.get_with("/t", Some(tp)).unwrap();
        assert_eq!(body, format!("got {tp}").as_bytes());
        let meta = conn.post_with("/t", "text/plain", b"", Some(tp)).unwrap();
        assert_eq!(meta.traceparent.as_deref(), Some(tp));
    }

    #[test]
    fn backpressure_response_carries_retry_hints() {
        let server = HttpServer::serve("127.0.0.1:0", 1, |_: &Request| {
            Response::retry_after(429, 1500, "shed")
        })
        .unwrap();
        let (ct, rt) = client_timeouts();
        let meta = http_post(server.addr(), "/p", "application/json", b"{}", ct, rt).unwrap();
        assert_eq!(meta.status, 429);
        // retry-after-ms (precise) wins over retry-after (2s, rounded up).
        assert_eq!(meta.retry_after_ms, Some(1500));
        assert_eq!(meta.body, b"shed");
    }

    #[test]
    fn saturated_accept_pool_sheds_with_503() {
        use std::sync::atomic::AtomicU64;
        let rejected = Arc::new(AtomicU64::new(0));
        let server = HttpServer::serve_with_options(
            "127.0.0.1:0",
            ServerOptions {
                workers: 1,
                max_pending: 1,
                overload_retry_ms: 750,
                overload_rejected: Some(Arc::clone(&rejected)),
                ..ServerOptions::default()
            },
            |_: &Request| {
                std::thread::sleep(Duration::from_millis(200));
                Response::text("slow")
            },
        )
        .unwrap();
        // Flood: one connection occupies the worker, one sits queued,
        // the rest must be answered 503 by the accept loop itself.
        let mut conns = Vec::new();
        for _ in 0..8 {
            let mut c = TcpStream::connect(server.addr()).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
            c.write_all(b"GET / HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
            conns.push(c);
        }
        let mut sheds = 0;
        let mut served = 0;
        for mut c in conns {
            use std::io::Read as _;
            let mut raw = String::new();
            if c.read_to_string(&mut raw).is_err() {
                continue;
            }
            if raw.starts_with("HTTP/1.1 503") {
                assert!(raw.contains("retry-after: 1\r\n"), "{raw}");
                assert!(raw.contains("retry-after-ms: 750\r\n"), "{raw}");
                sheds += 1;
            } else if raw.starts_with("HTTP/1.1 200") {
                served += 1;
            }
        }
        assert!(sheds > 0, "flood must force at least one 503");
        assert!(served > 0, "admitted connections must still be served");
        assert_eq!(rejected.load(Ordering::Relaxed), sheds);
    }

    #[test]
    fn connect_refused_is_classified() {
        // Bind then drop to find a port that is (very likely) closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (ct, rt) = client_timeouts();
        match http_get(addr, "/", ct, rt) {
            Err(HttpError::Connect(_)) => {}
            other => panic!("expected connect error, got {other:?}"),
        }
    }
}
