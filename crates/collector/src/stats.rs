//! Scrape-health telemetry: latency histograms and per-cycle counters
//! the daemon exposes on its own `/metrics` endpoint and in `status`.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Number of log2 latency buckets (1 µs up to ~2^47 µs).
const BUCKETS: usize = 48;

/// A log2-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` µs; quantiles are
/// reported as the upper bound of the containing bucket, which is enough
/// resolution for scrape-health dashboards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded observation, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in `[0,1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }

    /// Median latency upper bound in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency upper bound in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

/// Aggregate health of one scrape cycle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CycleStats {
    /// Targets attempted this cycle.
    pub targets: usize,
    /// Targets that yielded a parsed profile.
    pub succeeded: usize,
    /// Targets that exhausted retries.
    pub failed: usize,
    /// Targets skipped by an open circuit breaker (not attempted).
    pub skipped: usize,
    /// Extra attempts beyond the first, summed over targets.
    pub retries: u64,
    /// Wall-clock duration of the whole cycle in milliseconds.
    pub wall_ms: f64,
    /// Per-request latencies (successful attempts only).
    pub latency: LatencyHistogram,
}

impl CycleStats {
    /// Fraction of attempted targets that succeeded (1.0 for an empty
    /// cycle; quarantined targets are not attempted and do not count).
    pub fn success_rate(&self) -> f64 {
        let attempted = self.targets.saturating_sub(self.skipped);
        if attempted == 0 {
            1.0
        } else {
            self.succeeded as f64 / attempted as f64
        }
    }

    /// One-line human summary for CLI output.
    pub fn render(&self) -> String {
        format!(
            "scraped {}/{} targets ({} quarantined, {} retries, {:.1}% ok) in {:.1} ms; latency p50 {} µs p99 {} µs max {} µs",
            self.succeeded,
            self.targets,
            self.skipped,
            self.retries,
            100.0 * self.success_rate(),
            self.wall_ms,
            self.latency.p50_us(),
            self.latency.p99_us(),
            self.latency.max_us(),
        )
    }
}

/// Running totals across every cycle a daemon has executed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthCounters {
    /// Completed scrape cycles.
    pub cycles: u64,
    /// Successful target scrapes, summed over cycles.
    pub scrapes_ok: u64,
    /// Failed target scrapes (retries exhausted), summed over cycles.
    pub scrapes_failed: u64,
    /// Targets skipped by open circuit breakers, summed over cycles.
    pub scrapes_skipped: u64,
    /// Retry attempts, summed over cycles.
    pub retries: u64,
    /// All-time request latency distribution.
    pub latency: LatencyHistogram,
}

impl HealthCounters {
    /// Folds one cycle's stats into the running totals.
    pub fn absorb(&mut self, cycle: &CycleStats) {
        self.cycles += 1;
        self.scrapes_ok += cycle.succeeded as u64;
        self.scrapes_failed += cycle.failed as u64;
        self.scrapes_skipped += cycle.skipped as u64;
        self.retries += cycle.retries;
        self.latency.merge(&cycle.latency);
    }

    /// All-time scrape success rate (1.0 before any scrape).
    pub fn success_rate(&self) -> f64 {
        let total = self.scrapes_ok + self.scrapes_failed;
        if total == 0 {
            1.0
        } else {
            self.scrapes_ok as f64 / total as f64
        }
    }

    /// Renders Prometheus-style exposition text for `/metrics`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE leakprofd_cycles_total counter");
        let _ = writeln!(out, "leakprofd_cycles_total {}", self.cycles);
        let _ = writeln!(out, "# TYPE leakprofd_scrapes_total counter");
        let _ = writeln!(
            out,
            "leakprofd_scrapes_total{{result=\"ok\"}} {}",
            self.scrapes_ok
        );
        let _ = writeln!(
            out,
            "leakprofd_scrapes_total{{result=\"failed\"}} {}",
            self.scrapes_failed
        );
        let _ = writeln!(
            out,
            "leakprofd_scrapes_total{{result=\"skipped\"}} {}",
            self.scrapes_skipped
        );
        let _ = writeln!(out, "# TYPE leakprofd_retries_total counter");
        let _ = writeln!(out, "leakprofd_retries_total {}", self.retries);
        let _ = writeln!(out, "# TYPE leakprofd_scrape_latency_us summary");
        let _ = writeln!(
            out,
            "leakprofd_scrape_latency_us{{quantile=\"0.5\"}} {}",
            self.latency.p50_us()
        );
        let _ = writeln!(
            out,
            "leakprofd_scrape_latency_us{{quantile=\"0.99\"}} {}",
            self.latency.p99_us()
        );
        let _ = writeln!(
            out,
            "leakprofd_scrape_latency_us_count {}",
            self.latency.count()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        // p50 falls in the 100 µs bucket [64,128): upper bound 128.
        assert_eq!(h.p50_us(), 128);
        // p99 still lands in the 100 µs bulk; the max reflects the spike.
        assert!(h.p99_us() <= 128);
        assert!(h.max_us() >= 50_000);
        assert!(h.quantile_us(1.0) >= 50_000 / 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_us() >= 1000);
    }

    #[test]
    fn counters_absorb_cycles() {
        let mut totals = HealthCounters::default();
        let mut cycle = CycleStats {
            targets: 10,
            succeeded: 9,
            failed: 1,
            retries: 3,
            ..Default::default()
        };
        cycle.latency.record(Duration::from_micros(200));
        totals.absorb(&cycle);
        totals.absorb(&cycle);
        assert_eq!(totals.cycles, 2);
        assert_eq!(totals.scrapes_ok, 18);
        assert!((totals.success_rate() - 0.9).abs() < 1e-9);
        let text = totals.render_prometheus();
        assert!(text.contains("leakprofd_cycles_total 2"));
        assert!(text.contains("result=\"ok\"} 18"));
    }
}
