//! Scrape-health telemetry: latency histograms and per-cycle counters
//! the daemon exposes on its own `/metrics` endpoint and in `status`.

use serde::{Deserialize, Serialize};

// The histogram moved to the dependency-free `obs` crate so the tracing
// layer can use it too; re-exported here so existing imports keep working.
pub use obs::LatencyHistogram;

/// Builds Prometheus text exposition incrementally, enforcing the
/// format every scraper expects: each metric family is announced with
/// `# HELP` and `# TYPE` exactly once, immediately before its samples,
/// and label values are escaped per the exposition grammar.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Announces a metric family (`kind` is `counter`, `gauge`,
    /// `summary`, or `histogram`). Call once, before the family's
    /// samples.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line. `name` may extend the family name with a
    /// suffix (`_count`/`_sum` for summaries).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) {
        use std::fmt::Write as _;
        let _ = write!(self.out, "{name}");
        if !labels.is_empty() {
            let _ = write!(self.out, "{{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    let _ = write!(self.out, ",");
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            let _ = write!(self.out, "}}");
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Emits one histogram's full sample set: cumulative `_bucket`
    /// lines (power-of-two `le` upper bounds, then the mandatory
    /// `le="+Inf"` bucket equal to the count), `_sum`, and `_count`.
    /// The caller announces the family (kind `histogram`) once; the
    /// `le` label is appended after `labels`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &LatencyHistogram) {
        let bucket = format!("{name}_bucket");
        for (le, cum) in h.cumulative_buckets() {
            let le = le.to_string();
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", le.as_str()));
            self.sample(&bucket, &with_le, cum);
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&bucket, &with_inf, h.count());
        self.sample(&format!("{name}_sum"), labels, h.sum_us());
        self.sample(&format!("{name}_count"), labels, h.count());
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Aggregate health of one scrape cycle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CycleStats {
    /// Targets attempted this cycle.
    pub targets: usize,
    /// Targets that yielded a parsed profile.
    pub succeeded: usize,
    /// Targets that exhausted retries.
    pub failed: usize,
    /// Targets skipped by an open circuit breaker (not attempted).
    pub skipped: usize,
    /// Extra attempts beyond the first, summed over targets.
    pub retries: u64,
    /// Wall-clock duration of the whole cycle in milliseconds.
    pub wall_ms: f64,
    /// Per-request latencies (successful attempts only).
    pub latency: LatencyHistogram,
}

impl CycleStats {
    /// Fraction of attempted targets that succeeded (1.0 for an empty
    /// cycle; quarantined targets are not attempted and do not count).
    pub fn success_rate(&self) -> f64 {
        let attempted = self.targets.saturating_sub(self.skipped);
        if attempted == 0 {
            1.0
        } else {
            self.succeeded as f64 / attempted as f64
        }
    }

    /// One-line human summary for CLI output.
    pub fn render(&self) -> String {
        format!(
            "scraped {}/{} targets ({} quarantined, {} retries, {:.1}% ok) in {:.1} ms; latency p50 {} µs p99 {} µs max {} µs",
            self.succeeded,
            self.targets,
            self.skipped,
            self.retries,
            100.0 * self.success_rate(),
            self.wall_ms,
            self.latency.p50_us(),
            self.latency.p99_us(),
            self.latency.max_us(),
        )
    }
}

/// Running totals across every cycle a daemon has executed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthCounters {
    /// Completed scrape cycles.
    pub cycles: u64,
    /// Successful target scrapes, summed over cycles.
    pub scrapes_ok: u64,
    /// Failed target scrapes (retries exhausted), summed over cycles.
    pub scrapes_failed: u64,
    /// Targets skipped by open circuit breakers, summed over cycles.
    pub scrapes_skipped: u64,
    /// Retry attempts, summed over cycles.
    pub retries: u64,
    /// All-time request latency distribution.
    pub latency: LatencyHistogram,
}

impl HealthCounters {
    /// Folds one cycle's stats into the running totals.
    pub fn absorb(&mut self, cycle: &CycleStats) {
        self.cycles += 1;
        self.scrapes_ok += cycle.succeeded as u64;
        self.scrapes_failed += cycle.failed as u64;
        self.scrapes_skipped += cycle.skipped as u64;
        self.retries += cycle.retries;
        self.latency.merge(&cycle.latency);
    }

    /// All-time scrape success rate (1.0 before any scrape).
    pub fn success_rate(&self) -> f64 {
        let total = self.scrapes_ok + self.scrapes_failed;
        if total == 0 {
            1.0
        } else {
            self.scrapes_ok as f64 / total as f64
        }
    }

    /// Renders Prometheus-style exposition text for `/metrics`.
    pub fn render_prometheus(&self) -> String {
        let mut p = PromText::new();
        self.render_into(&mut p);
        p.finish()
    }

    /// Writes this struct's metric families into an exposition being
    /// built (so [`crate::Daemon::metrics_text`] can extend it).
    pub fn render_into(&self, p: &mut PromText) {
        p.family(
            "leakprofd_cycles_total",
            "counter",
            "Completed scrape cycles.",
        );
        p.sample("leakprofd_cycles_total", &[], self.cycles);
        p.family(
            "leakprofd_scrapes_total",
            "counter",
            "Target scrapes by result.",
        );
        p.sample(
            "leakprofd_scrapes_total",
            &[("result", "ok")],
            self.scrapes_ok,
        );
        p.sample(
            "leakprofd_scrapes_total",
            &[("result", "failed")],
            self.scrapes_failed,
        );
        p.sample(
            "leakprofd_scrapes_total",
            &[("result", "skipped")],
            self.scrapes_skipped,
        );
        p.family(
            "leakprofd_retries_total",
            "counter",
            "Scrape retry attempts beyond the first.",
        );
        p.sample("leakprofd_retries_total", &[], self.retries);
        p.family(
            "leakprofd_scrape_latency_us",
            "summary",
            "Per-request scrape latency in microseconds.",
        );
        p.sample(
            "leakprofd_scrape_latency_us",
            &[("quantile", "0.5")],
            self.latency.p50_us(),
        );
        p.sample(
            "leakprofd_scrape_latency_us",
            &[("quantile", "0.99")],
            self.latency.p99_us(),
        );
        p.sample(
            "leakprofd_scrape_latency_us_count",
            &[],
            self.latency.count(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_absorb_cycles() {
        let mut totals = HealthCounters::default();
        let mut cycle = CycleStats {
            targets: 10,
            succeeded: 9,
            failed: 1,
            retries: 3,
            ..Default::default()
        };
        cycle.latency.record(Duration::from_micros(200));
        totals.absorb(&cycle);
        totals.absorb(&cycle);
        assert_eq!(totals.cycles, 2);
        assert_eq!(totals.scrapes_ok, 18);
        assert!((totals.success_rate() - 0.9).abs() < 1e-9);
        let text = totals.render_prometheus();
        assert!(text.contains("# HELP leakprofd_cycles_total "));
        assert!(text.contains("# TYPE leakprofd_cycles_total counter"));
        assert!(text.contains("leakprofd_cycles_total 2"));
        assert!(text.contains("result=\"ok\"} 18"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.family("x", "gauge", "test");
        p.sample("x", &[("site", "a\"b\\c\nd")], 1);
        let text = p.finish();
        assert!(text.contains("x{site=\"a\\\"b\\\\c\\nd\"} 1"), "{text}");
    }
}
