//! Scrape-health telemetry: latency histograms and per-cycle counters
//! the daemon exposes on its own `/metrics` endpoint and in `status`.

use serde::{Deserialize, Serialize};

// The histogram moved to the dependency-free `obs` crate so the tracing
// layer can use it too; re-exported here so existing imports keep working.
pub use obs::LatencyHistogram;

/// Aggregate health of one scrape cycle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CycleStats {
    /// Targets attempted this cycle.
    pub targets: usize,
    /// Targets that yielded a parsed profile.
    pub succeeded: usize,
    /// Targets that exhausted retries.
    pub failed: usize,
    /// Targets skipped by an open circuit breaker (not attempted).
    pub skipped: usize,
    /// Extra attempts beyond the first, summed over targets.
    pub retries: u64,
    /// Wall-clock duration of the whole cycle in milliseconds.
    pub wall_ms: f64,
    /// Per-request latencies (successful attempts only).
    pub latency: LatencyHistogram,
}

impl CycleStats {
    /// Fraction of attempted targets that succeeded (1.0 for an empty
    /// cycle; quarantined targets are not attempted and do not count).
    pub fn success_rate(&self) -> f64 {
        let attempted = self.targets.saturating_sub(self.skipped);
        if attempted == 0 {
            1.0
        } else {
            self.succeeded as f64 / attempted as f64
        }
    }

    /// One-line human summary for CLI output.
    pub fn render(&self) -> String {
        format!(
            "scraped {}/{} targets ({} quarantined, {} retries, {:.1}% ok) in {:.1} ms; latency p50 {} µs p99 {} µs max {} µs",
            self.succeeded,
            self.targets,
            self.skipped,
            self.retries,
            100.0 * self.success_rate(),
            self.wall_ms,
            self.latency.p50_us(),
            self.latency.p99_us(),
            self.latency.max_us(),
        )
    }
}

/// Running totals across every cycle a daemon has executed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthCounters {
    /// Completed scrape cycles.
    pub cycles: u64,
    /// Successful target scrapes, summed over cycles.
    pub scrapes_ok: u64,
    /// Failed target scrapes (retries exhausted), summed over cycles.
    pub scrapes_failed: u64,
    /// Targets skipped by open circuit breakers, summed over cycles.
    pub scrapes_skipped: u64,
    /// Retry attempts, summed over cycles.
    pub retries: u64,
    /// All-time request latency distribution.
    pub latency: LatencyHistogram,
}

impl HealthCounters {
    /// Folds one cycle's stats into the running totals.
    pub fn absorb(&mut self, cycle: &CycleStats) {
        self.cycles += 1;
        self.scrapes_ok += cycle.succeeded as u64;
        self.scrapes_failed += cycle.failed as u64;
        self.scrapes_skipped += cycle.skipped as u64;
        self.retries += cycle.retries;
        self.latency.merge(&cycle.latency);
    }

    /// All-time scrape success rate (1.0 before any scrape).
    pub fn success_rate(&self) -> f64 {
        let total = self.scrapes_ok + self.scrapes_failed;
        if total == 0 {
            1.0
        } else {
            self.scrapes_ok as f64 / total as f64
        }
    }

    /// Renders Prometheus-style exposition text for `/metrics`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE leakprofd_cycles_total counter");
        let _ = writeln!(out, "leakprofd_cycles_total {}", self.cycles);
        let _ = writeln!(out, "# TYPE leakprofd_scrapes_total counter");
        let _ = writeln!(
            out,
            "leakprofd_scrapes_total{{result=\"ok\"}} {}",
            self.scrapes_ok
        );
        let _ = writeln!(
            out,
            "leakprofd_scrapes_total{{result=\"failed\"}} {}",
            self.scrapes_failed
        );
        let _ = writeln!(
            out,
            "leakprofd_scrapes_total{{result=\"skipped\"}} {}",
            self.scrapes_skipped
        );
        let _ = writeln!(out, "# TYPE leakprofd_retries_total counter");
        let _ = writeln!(out, "leakprofd_retries_total {}", self.retries);
        let _ = writeln!(out, "# TYPE leakprofd_scrape_latency_us summary");
        let _ = writeln!(
            out,
            "leakprofd_scrape_latency_us{{quantile=\"0.5\"}} {}",
            self.latency.p50_us()
        );
        let _ = writeln!(
            out,
            "leakprofd_scrape_latency_us{{quantile=\"0.99\"}} {}",
            self.latency.p99_us()
        );
        let _ = writeln!(
            out,
            "leakprofd_scrape_latency_us_count {}",
            self.latency.count()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_absorb_cycles() {
        let mut totals = HealthCounters::default();
        let mut cycle = CycleStats {
            targets: 10,
            succeeded: 9,
            failed: 1,
            retries: 3,
            ..Default::default()
        };
        cycle.latency.record(Duration::from_micros(200));
        totals.absorb(&cycle);
        totals.absorb(&cycle);
        assert_eq!(totals.cycles, 2);
        assert_eq!(totals.scrapes_ok, 18);
        assert!((totals.success_rate() - 0.9).abs() < 1e-9);
        let text = totals.render_prometheus();
        assert!(text.contains("leakprofd_cycles_total 2"));
        assert!(text.contains("result=\"ok\"} 18"));
    }
}
