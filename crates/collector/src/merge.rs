//! Offline merge tier: fold N shard daemons' state dirs into one
//! fleet-wide state (`leakprofd merge`).
//!
//! Each shard's state dir is recovered exactly the way the daemon
//! itself would (snapshot + WAL replay), so the fold sees each shard's
//! *current* analysis state, not just its last checkpoint. The
//! accumulator merge is order-independent ([`FleetAccumulator::merge`]
//! is commutative and associative), so the merged ranking over any
//! partition of the fleet is byte-identical to the ranking a single
//! whole-fleet daemon computes. Ledgers are deduplicated by fingerprint
//! ([`ReportLedger::merge_entry`] conflict rules) and telemetry stores
//! are folded bucket-by-bucket ([`TsStore::merge`]), oldest shard
//! first for a deterministic result.

use std::path::{Path, PathBuf};

use leakprof::FleetAccumulator;
use shardmap::ShardIdentity;
use timeseries::{StoreConfig, TsStore};

use crate::ledger::{LedgerConfig, ReportLedger};
use crate::shard::read_tag;
use crate::snapshot::{DaemonSnapshot, SnapshotStore, DAEMON_SNAPSHOT_VERSION};
use crate::stats::HealthCounters;

/// Knobs for loading shard state dirs: the same store layouts the
/// daemons were configured with.
#[derive(Debug, Clone, Default)]
pub struct MergeConfig {
    /// Telemetry store layout the shard daemons used (`<dir>/ts`).
    pub ts: StoreConfig,
    /// Ledger tuning for the merged ledger.
    pub ledger: LedgerConfig,
}

/// One shard daemon's recovered state.
pub struct ShardState {
    /// The state dir this was loaded from.
    pub dir: PathBuf,
    /// The shard tag found in the dir (`None` = unsharded daemon).
    pub identity: Option<ShardIdentity>,
    /// The cycle the shard had completed (snapshot + WAL replay).
    pub cycle: u64,
    /// The shard's analysis accumulator at that cycle.
    pub acc: FleetAccumulator,
    /// The shard's lifetime health counters.
    pub health: HealthCounters,
    /// The shard's report ledger (read-only copy).
    pub ledger: ReportLedger,
    /// The shard's telemetry store (read-only copy).
    pub ts: TsStore,
}

/// Recovers one shard's state dir exactly like a restarting daemon
/// would: snapshot, then WAL replay on top.
///
/// # Errors
///
/// IO errors, or [`std::io::ErrorKind::InvalidData`] for corrupt or
/// version-mismatched state.
pub fn load_shard_state(dir: &Path, config: &MergeConfig) -> std::io::Result<ShardState> {
    let identity = read_tag(dir)?;
    let store = SnapshotStore::open(dir)?;
    let recovery = store.recover()?;
    let mut acc = FleetAccumulator::new();
    let mut health = HealthCounters::default();
    if let Some(snap) = &recovery.snapshot {
        acc = FleetAccumulator::from_snapshot(&snap.acc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        health = snap.health.clone();
    }
    for entry in &recovery.wal {
        for p in &entry.profiles {
            acc.ingest(p);
        }
        health.absorb(&entry.stats);
    }
    let cycle = recovery.last_cycle();
    let ledger = ReportLedger::open(dir.join("ledger.json"), config.ledger.clone())?;
    let ts = TsStore::open(dir.join("ts"), config.ts.clone())?;
    Ok(ShardState {
        dir: dir.to_path_buf(),
        identity,
        cycle,
        acc,
        health,
        ledger,
        ts,
    })
}

/// Compact per-shard provenance carried on a [`MergedFleet`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShardSummary {
    /// The state dir the shard was loaded from.
    pub dir: String,
    /// The shard tag, if any.
    pub shard: Option<ShardIdentity>,
    /// The cycle the shard had completed.
    pub cycle: u64,
    /// Profiles the shard had ingested.
    pub profiles_ingested: usize,
}

/// The fleet-wide fold of N shard states.
pub struct MergedFleet {
    /// The merged accumulator — rank it with
    /// [`leakprof::LeakProf::report_from_accumulator`].
    pub acc: FleetAccumulator,
    /// Summed health counters (every shard's scrapes really happened).
    pub health: HealthCounters,
    /// The deduplicated fleet ledger (in-memory; persisted by
    /// [`write_merged`]).
    pub ledger: ReportLedger,
    /// The merged telemetry store (in-memory; persisted by
    /// [`write_merged`]).
    pub ts: TsStore,
    /// The newest cycle any shard had completed.
    pub cycle: u64,
    /// Per-shard provenance, in fold order.
    pub shards: Vec<ShardSummary>,
}

/// Folds shard states into one fleet-wide state. The fold order is
/// deterministic — by shard index, unsharded last, ties by dir — and
/// matches the live fleet aggregator's, so both tiers produce the same
/// bytes. (The accumulator and ledger merges are order-independent
/// anyway; the ts fold is where order is observable, via open-bucket
/// `last` values on series shared across shards.)
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidInput`] if shard telemetry
/// stores have mismatched rollup layouts.
pub fn merge_states(
    mut states: Vec<ShardState>,
    config: &MergeConfig,
) -> std::io::Result<MergedFleet> {
    states.sort_by(|a, b| {
        let key = |s: &ShardState| s.identity.as_ref().map_or(u32::MAX, |id| id.shard);
        (key(a), a.dir.clone()).cmp(&(key(b), b.dir.clone()))
    });
    let mut acc = FleetAccumulator::new();
    let mut health = HealthCounters::default();
    let mut ledger = ReportLedger::new(config.ledger.clone());
    let mut ts = TsStore::in_memory(config.ts.clone());
    let mut cycle = 0;
    let mut shards = Vec::with_capacity(states.len());
    for s in &states {
        acc.merge(&s.acc);
        health.cycles = health.cycles.max(s.health.cycles);
        health.scrapes_ok += s.health.scrapes_ok;
        health.scrapes_failed += s.health.scrapes_failed;
        health.scrapes_skipped += s.health.scrapes_skipped;
        health.retries += s.health.retries;
        health.latency.merge(&s.health.latency);
        ledger.merge_from(&s.ledger)?;
        ts.merge(&s.ts)?;
        cycle = cycle.max(s.cycle);
        shards.push(ShardSummary {
            dir: s.dir.display().to_string(),
            shard: s.identity.clone(),
            cycle: s.cycle,
            profiles_ingested: s.acc.profiles_ingested(),
        });
    }
    Ok(MergedFleet {
        acc,
        health,
        ledger,
        ts,
        cycle,
        shards,
    })
}

/// Loads and folds N state dirs in one call.
///
/// # Errors
///
/// Propagates [`load_shard_state`] and [`merge_states`] errors.
pub fn merge_state_dirs(dirs: &[PathBuf], config: &MergeConfig) -> std::io::Result<MergedFleet> {
    let states = dirs
        .iter()
        .map(|d| load_shard_state(d, config))
        .collect::<std::io::Result<Vec<_>>>()?;
    merge_states(states, config)
}

/// Persists a merged fleet as a regular daemon state dir: snapshot (no
/// WAL — the fold is already checkpointed), `ledger.json`, the merged
/// `ts` store, and `flame.txt` — the merged blocked-goroutine flame in
/// collapsed folded-stack form, ready for `inferno`/speedscope or a
/// byte-compare against any live daemon's `/flame.txt`. The result is
/// loadable by [`load_shard_state`], an unsharded `Daemon`, or
/// `leakprofd backtest`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_merged(
    out: &Path,
    merged: &mut MergedFleet,
    config: &MergeConfig,
) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let store = SnapshotStore::open(out)?;
    let snap = merged.acc.snapshot();
    store.commit_snapshot(&DaemonSnapshot {
        version: DAEMON_SNAPSHOT_VERSION,
        cycle: merged.cycle,
        acc: snap.clone(),
        health: merged.health.clone(),
    })?;
    let flame = crate::flame::build_flame(&snap, crate::flame::live_weight);
    std::fs::write(out.join("flame.txt"), flame.to_folded())?;
    let mut out_ledger = ReportLedger::open(out.join("ledger.json"), config.ledger.clone())?;
    out_ledger.merge_from(&merged.ledger)?;
    let mut out_ts = TsStore::open(out.join("ts"), config.ts.clone())?;
    out_ts.merge(&merged.ts)?;
    out_ts.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Daemon, DaemonConfig};
    use crate::demo::DemoFleet;
    use crate::shard::ShardSpec;
    use leakprof::LeakProf;
    use shardmap::ShardMap;

    fn lp() -> LeakProf {
        LeakProf::new(leakprof::Config {
            threshold: 1,
            ast_filter: false,
            top_n: 10,
        })
    }

    #[test]
    fn merged_state_dirs_match_the_whole_fleet_daemon() {
        let root = std::env::temp_dir().join(format!("leakprofd-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let demo = DemoFleet::build(10, 2, 7);
        let server = demo.hub.serve("127.0.0.1:0", 4).unwrap();
        let targets = demo.targets(server.addr());
        let map = ShardMap::new(3);
        let mut dirs = Vec::new();
        for i in 0..3 {
            let dir = root.join(format!("shard{i}"));
            let config = DaemonConfig {
                state_dir: Some(dir.clone()),
                snapshot_every: 2,
                shard: Some(ShardSpec {
                    map: map.clone(),
                    index: i,
                }),
                ..DaemonConfig::default()
            };
            let mut d = Daemon::new(config, lp(), targets.clone()).unwrap();
            for _ in 0..3 {
                d.run_cycle();
            }
            d.commit_snapshot().unwrap();
            d.flush_telemetry().unwrap();
            dirs.push(dir);
        }
        let mut whole = Daemon::new(DaemonConfig::default(), lp(), targets).unwrap();
        for _ in 0..3 {
            whole.run_cycle();
        }

        let config = MergeConfig::default();
        let mut merged = merge_state_dirs(&dirs, &config).unwrap();
        assert_eq!(merged.cycle, 3);
        assert_eq!(merged.shards.len(), 3);
        assert_eq!(
            merged.acc.profiles_ingested(),
            whole.accumulator().profiles_ingested()
        );
        let merged_report = lp().report_from_accumulator(&merged.acc);
        let whole_report = lp().report_from_accumulator(whole.accumulator());
        assert_eq!(
            serde_json::to_string(&merged_report).unwrap(),
            serde_json::to_string(&whole_report).unwrap(),
            "3-shard merge must be byte-identical to the whole-fleet daemon"
        );

        // Round-trip: the merged state dir reloads to the same ranking.
        let out = root.join("merged");
        write_merged(&out, &mut merged, &config).unwrap();
        let reloaded = load_shard_state(&out, &config).unwrap();
        assert_eq!(reloaded.cycle, 3);
        let reloaded_report = lp().report_from_accumulator(&reloaded.acc);
        assert_eq!(
            serde_json::to_string(&reloaded_report).unwrap(),
            serde_json::to_string(&whole_report).unwrap()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
