//! Report hygiene: a persistent cool-down ledger so each leak site pages
//! its owner **once per regression episode** instead of every cycle.
//!
//! A suspect is identified by its fingerprint — the blocking operation
//! plus source site (`send at pay/handler.go:42`), which is exactly what
//! [`leakprof::OwnerDb`] routes on. The episode state machine:
//!
//! * First sighting opens an **episode**: the suspect is reported and
//!   implicitly acknowledged at its current RMS.
//! * While the episode is active, further sightings are **suppressed**
//!   unless RMS climbs past `reopen_factor ×` the acknowledged level —
//!   a genuinely worsening leak re-pages with a fresh episode.
//! * A site absent from the ranking for `close_after_cycles` cycles is
//!   marked **resolved**; if it ever comes back, that regression opens a
//!   new episode and is reported again.
//! * Operators can [`ReportLedger::acknowledge`] at a higher RMS to
//!   raise the re-page bar without waiting for a new episode.
//!
//! The ledger persists itself (temp file + rename) on every mutation, so
//! a daemon crash never forgets what was already acknowledged — restart
//! must not re-page the whole fleet (`tests/chaos.rs` asserts this).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use leakprof::Suspect;
use serde::{Deserialize, Serialize};

/// Version tag of the persisted ledger format.
pub const LEDGER_VERSION: u32 = 1;

/// Cool-down tuning.
#[derive(Debug, Clone)]
pub struct LedgerConfig {
    /// RMS multiplier over the acknowledged level that re-opens an
    /// active episode (1.25 = re-page on a 25% worse leak).
    pub reopen_factor: f64,
    /// Cycles a site must be absent from the ranking before its episode
    /// closes (so one noisy cycle does not end an episode).
    pub close_after_cycles: u64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig {
            reopen_factor: 1.25,
            close_after_cycles: 3,
        }
    }
}

/// Whether a fingerprint's current episode is ongoing or closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpisodeState {
    /// The site is (or recently was) in the ranking; reports suppressed.
    Active,
    /// The site disappeared; the next sighting is a new regression.
    Resolved,
}

/// Persistent per-fingerprint state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// The suspect fingerprint (rendered blocking op + site).
    pub fingerprint: String,
    /// Owner the last report was routed to, if resolved.
    pub owner: Option<String>,
    /// 1-based episode counter; bumps on every re-open/regression.
    pub episode: u32,
    /// Episode state.
    pub state: EpisodeState,
    /// Cycle of the first-ever sighting.
    pub first_cycle: u64,
    /// Cycle of the most recent sighting.
    pub last_seen_cycle: u64,
    /// RMS level the owner is considered to have acknowledged.
    pub acked_rms: f64,
    /// Highest RMS ever observed for this fingerprint.
    pub peak_rms: f64,
    /// Reports actually emitted (== episodes opened).
    pub reports: u64,
}

/// What [`ReportLedger::apply`] decided for one cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleOutcome {
    /// Fingerprints that should page their owners this cycle (new sites,
    /// regressions, or active leaks that got `reopen_factor×` worse).
    pub reported: Vec<String>,
    /// Suspects present in the ranking but suppressed by cool-down.
    pub suppressed: usize,
    /// Fingerprints whose episodes closed this cycle.
    pub resolved: Vec<String>,
    /// The distributed trace id of the cycle that produced this
    /// decision, when the ledger's tracer was inside one — the
    /// exemplar that links a page back to its stitched timeline.
    pub trace_id: Option<String>,
}

/// Aggregate ledger counts for `/status` and `/metrics`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Fingerprints ever tracked.
    pub tracked: usize,
    /// Fingerprints with an open episode.
    pub active: usize,
    /// Fingerprints whose last episode closed.
    pub resolved: usize,
    /// Reports emitted over the ledger lifetime.
    pub reported_total: u64,
    /// Sightings suppressed by cool-down over the ledger lifetime.
    pub suppressed_total: u64,
}

/// On-disk layout (entries kept sorted by fingerprint so saving the same
/// state twice is byte-identical).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LedgerFile {
    version: u32,
    reported_total: u64,
    suppressed_total: u64,
    entries: Vec<LedgerEntry>,
}

/// The cool-down ledger.
pub struct ReportLedger {
    config: LedgerConfig,
    path: Option<PathBuf>,
    entries: BTreeMap<String, LedgerEntry>,
    reported_total: u64,
    suppressed_total: u64,
    tracer: obs::Tracer,
}

impl std::fmt::Debug for ReportLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReportLedger")
            .field("config", &self.config)
            .field("path", &self.path)
            .field("entries", &self.entries)
            .field("reported_total", &self.reported_total)
            .field("suppressed_total", &self.suppressed_total)
            .finish()
    }
}

impl ReportLedger {
    /// Creates an in-memory ledger (no persistence).
    pub fn new(config: LedgerConfig) -> Self {
        ReportLedger {
            config,
            path: None,
            entries: BTreeMap::new(),
            reported_total: 0,
            suppressed_total: 0,
            tracer: obs::Tracer::disabled(),
        }
    }

    /// Installs the tracer that [`ReportLedger::apply`] records its
    /// spans into.
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }

    /// Opens a persistent ledger at `path`, loading existing state.
    ///
    /// # Errors
    ///
    /// IO errors, or [`std::io::ErrorKind::InvalidData`] if the file is
    /// corrupt or has an unsupported version. (The file is only ever
    /// committed whole via rename, so corruption is not a torn write.)
    pub fn open(path: impl AsRef<Path>, config: LedgerConfig) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut ledger = ReportLedger::new(config);
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            let file: LedgerFile = serde_json::from_str(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: corrupt ledger: {e}", path.display()),
                )
            })?;
            if file.version != LEDGER_VERSION {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: ledger version {} unsupported (expected {})",
                        path.display(),
                        file.version,
                        LEDGER_VERSION
                    ),
                ));
            }
            ledger.reported_total = file.reported_total;
            ledger.suppressed_total = file.suppressed_total;
            for e in file.entries {
                ledger.entries.insert(e.fingerprint.clone(), e);
            }
        }
        ledger.path = Some(path);
        Ok(ledger)
    }

    /// The fingerprint a suspect is deduplicated on: the rendered
    /// blocking operation + source site. Delegates to
    /// [`leakprof::site_fingerprint`], the same scheme the telemetry
    /// store keys site series on, so a ledger episode and a `/health`
    /// trend line always name the same thing.
    pub fn fingerprint(suspect: &Suspect) -> String {
        leakprof::site_fingerprint(&suspect.stats)
    }

    /// Folds one cycle's ranked suspects into the ledger and decides
    /// which of them should actually page. Persists on change.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the ledger file cannot be written (the
    /// in-memory decision is still applied).
    pub fn apply(&mut self, cycle: u64, suspects: &[Suspect]) -> std::io::Result<CycleOutcome> {
        let mut span = self.tracer.start(obs::stage::LEDGER, "");
        span.attr("suspects", suspects.len());
        let mut outcome = CycleOutcome {
            trace_id: self.tracer.current_trace_id(),
            ..CycleOutcome::default()
        };
        let mut dirty = false;
        for s in suspects {
            let fp = Self::fingerprint(s);
            let rms = s.stats.rms;
            match self.entries.get_mut(&fp) {
                None => {
                    self.entries.insert(
                        fp.clone(),
                        LedgerEntry {
                            fingerprint: fp.clone(),
                            owner: s.owner.clone(),
                            episode: 1,
                            state: EpisodeState::Active,
                            first_cycle: cycle,
                            last_seen_cycle: cycle,
                            acked_rms: rms,
                            peak_rms: rms,
                            reports: 1,
                        },
                    );
                    self.reported_total += 1;
                    outcome.reported.push(fp);
                    dirty = true;
                }
                Some(e) => {
                    e.last_seen_cycle = cycle;
                    e.peak_rms = e.peak_rms.max(rms);
                    e.owner = s.owner.clone();
                    if e.state == EpisodeState::Resolved {
                        // Regression: the leak came back.
                        e.state = EpisodeState::Active;
                        e.episode += 1;
                        e.acked_rms = rms;
                        e.reports += 1;
                        self.reported_total += 1;
                        outcome.reported.push(fp);
                    } else if rms > e.acked_rms * self.config.reopen_factor {
                        // Actively worsening past the acknowledged level.
                        e.episode += 1;
                        e.acked_rms = rms;
                        e.reports += 1;
                        self.reported_total += 1;
                        outcome.reported.push(fp);
                    } else {
                        self.suppressed_total += 1;
                        outcome.suppressed += 1;
                    }
                    dirty = true;
                }
            }
        }
        let in_ranking: std::collections::BTreeSet<String> =
            suspects.iter().map(Self::fingerprint).collect();
        for (fp, e) in self.entries.iter_mut() {
            if e.state == EpisodeState::Active
                && !in_ranking.contains(fp)
                && cycle.saturating_sub(e.last_seen_cycle) >= self.config.close_after_cycles
            {
                e.state = EpisodeState::Resolved;
                outcome.resolved.push(fp.clone());
                dirty = true;
            }
        }
        if dirty {
            self.save()?;
        }
        span.attr("reported", outcome.reported.len());
        span.attr("suppressed", outcome.suppressed);
        span.attr("resolved", outcome.resolved.len());
        Ok(outcome)
    }

    /// Folds one shard ledger's entry into this fleet-wide ledger,
    /// deduplicating by fingerprint. Conflict rules are chosen so a
    /// merge never loses operator intent:
    ///
    /// * `acked_rms` takes the **max** — [`ReportLedger::acknowledge`]
    ///   only ever raises the level, so the max *is* the latest
    ///   effective ack, and an ack on any shard survives the merge.
    /// * `first_cycle` takes the **min**: the earliest cycle any shard
    ///   opened an episode for the site is when the fleet first saw it.
    /// * `last_seen_cycle`, `peak_rms`, `episode`, and `reports` take
    ///   the max (shards observe the same underlying episode; summing
    ///   would double-count it).
    /// * The state is `Active` if *any* shard's episode is open, and
    ///   the owner comes from the shard that saw the site last.
    ///
    /// Does not persist; callers fold all shards then [`apply`] or
    /// save via [`ReportLedger::merge_entries`].
    ///
    /// [`apply`]: ReportLedger::apply
    pub fn merge_entry(&mut self, other: &LedgerEntry) {
        match self.entries.get_mut(&other.fingerprint) {
            None => {
                self.entries
                    .insert(other.fingerprint.clone(), other.clone());
            }
            Some(e) => {
                if other.last_seen_cycle >= e.last_seen_cycle && other.owner.is_some() {
                    e.owner = other.owner.clone();
                }
                e.acked_rms = e.acked_rms.max(other.acked_rms);
                e.first_cycle = e.first_cycle.min(other.first_cycle);
                e.last_seen_cycle = e.last_seen_cycle.max(other.last_seen_cycle);
                e.peak_rms = e.peak_rms.max(other.peak_rms);
                e.episode = e.episode.max(other.episode);
                e.reports = e.reports.max(other.reports);
                if other.state == EpisodeState::Active {
                    e.state = EpisodeState::Active;
                }
            }
        }
    }

    /// Folds a batch of shard-ledger entries (e.g. one shard's
    /// `/api/snapshot` ledger) into this ledger and persists once.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the ledger file cannot be written.
    pub fn merge_entries<'a>(
        &mut self,
        entries: impl IntoIterator<Item = &'a LedgerEntry>,
    ) -> std::io::Result<()> {
        for e in entries {
            self.merge_entry(e);
        }
        self.save()
    }

    /// Folds a whole shard ledger — entries plus the lifetime
    /// reported/suppressed counters, which *do* sum: each shard's pages
    /// and suppressions really happened — and persists once.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the ledger file cannot be written.
    pub fn merge_from(&mut self, other: &ReportLedger) -> std::io::Result<()> {
        self.reported_total += other.reported_total;
        self.suppressed_total += other.suppressed_total;
        self.merge_entries(other.entries())
    }

    /// Raises the acknowledged RMS for a fingerprint (an operator saying
    /// "known, don't re-page unless it gets worse than this"). Returns
    /// false for unknown fingerprints.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the ledger file cannot be written.
    pub fn acknowledge(&mut self, fingerprint: &str, rms: f64) -> std::io::Result<bool> {
        match self.entries.get_mut(fingerprint) {
            Some(e) => {
                e.acked_rms = e.acked_rms.max(rms);
                self.save()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The tracked entry for a fingerprint.
    pub fn entry(&self, fingerprint: &str) -> Option<&LedgerEntry> {
        self.entries.get(fingerprint)
    }

    /// All tracked entries, sorted by fingerprint.
    pub fn entries(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.entries.values()
    }

    /// Aggregate counts for `/status`.
    pub fn summary(&self) -> LedgerSummary {
        let active = self
            .entries
            .values()
            .filter(|e| e.state == EpisodeState::Active)
            .count();
        LedgerSummary {
            tracked: self.entries.len(),
            active,
            resolved: self.entries.len() - active,
            reported_total: self.reported_total,
            suppressed_total: self.suppressed_total,
        }
    }

    /// Writes the ledger atomically (temp file + rename). No-op for
    /// in-memory ledgers.
    fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let file = LedgerFile {
            version: LEDGER_VERSION,
            reported_total: self.reported_total,
            suppressed_total: self.suppressed_total,
            entries: self.entries.values().cloned().collect(),
        };
        let tmp = path.with_extension("json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(
                serde_json::to_string_pretty(&file)
                    .expect("ledger serializes")
                    .as_bytes(),
            )?;
            f.flush()?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::{Frame, Gid, GoStatus, GoroutineRecord, Loc};
    use leakprof::signature::{BlockedOp, ChanOpKind};
    use leakprof::SiteStats;

    fn suspect(file: &str, line: u32, rms: f64) -> Suspect {
        let op = BlockedOp {
            kind: ChanOpKind::Send,
            loc: Loc::new(file, line),
        };
        Suspect {
            stats: SiteStats {
                op,
                per_instance: vec![("i0".into(), rms as u64)],
                total: rms as u64,
                max_instance: rms as u64,
                instances_over_threshold: 1,
                rms,
                representative: GoroutineRecord {
                    gid: Gid(1),
                    name: "pkg.f$1".into(),
                    status: GoStatus::ChanSend { nil_chan: false },
                    stack: vec![Frame::new("pkg.f$1", Loc::new(file, line))],
                    created_by: Frame::new("pkg.f", Loc::new(file, 1)),
                    wait_ticks: 10,
                    retained_bytes: 1024,
                },
            },
            owner: Some("team-x".into()),
        }
    }

    fn ledger() -> ReportLedger {
        ReportLedger::new(LedgerConfig {
            reopen_factor: 1.25,
            close_after_cycles: 2,
        })
    }

    #[test]
    fn first_sighting_reports_then_suppresses() {
        let mut l = ledger();
        let s = [suspect("a.go", 10, 100.0)];
        let out = l.apply(1, &s).unwrap();
        assert_eq!(out.reported.len(), 1);
        for cycle in 2..6 {
            let out = l.apply(cycle, &s).unwrap();
            assert!(out.reported.is_empty(), "cycle {cycle} re-paged");
            assert_eq!(out.suppressed, 1);
        }
        let sum = l.summary();
        assert_eq!(sum.reported_total, 1);
        assert_eq!(sum.suppressed_total, 4);
    }

    #[test]
    fn worsening_rms_reopens_the_episode() {
        let mut l = ledger();
        l.apply(1, &[suspect("a.go", 10, 100.0)]).unwrap();
        // 20% worse: inside the acknowledged band, stays quiet.
        let out = l.apply(2, &[suspect("a.go", 10, 120.0)]).unwrap();
        assert!(out.reported.is_empty());
        // 30% worse than acked: re-pages, and re-acks at the new level.
        let out = l.apply(3, &[suspect("a.go", 10, 130.0)]).unwrap();
        assert_eq!(out.reported.len(), 1);
        assert_eq!(l.entry(&out.reported[0]).unwrap().episode, 2);
        // 130 → 150 is < 1.25×: quiet again.
        let out = l.apply(4, &[suspect("a.go", 10, 150.0)]).unwrap();
        assert!(out.reported.is_empty());
    }

    #[test]
    fn absence_resolves_then_regression_repages() {
        let mut l = ledger();
        let fp = l.apply(1, &[suspect("a.go", 10, 100.0)]).unwrap().reported[0].clone();
        // Gone for close_after_cycles cycles: episode closes.
        assert!(l.apply(2, &[]).unwrap().resolved.is_empty());
        let out = l.apply(3, &[]).unwrap();
        assert_eq!(out.resolved, vec![fp.clone()]);
        assert_eq!(l.entry(&fp).unwrap().state, EpisodeState::Resolved);
        // Back, even at a LOWER rms: that is a fresh regression.
        let out = l.apply(4, &[suspect("a.go", 10, 50.0)]).unwrap();
        assert_eq!(out.reported, vec![fp.clone()]);
        assert_eq!(l.entry(&fp).unwrap().episode, 2);
    }

    #[test]
    fn acknowledge_raises_the_repage_bar() {
        let mut l = ledger();
        let fp = l.apply(1, &[suspect("a.go", 10, 100.0)]).unwrap().reported[0].clone();
        l.acknowledge(&fp, 400.0).unwrap();
        // 3× worse than the report, but under the operator's ack level.
        let out = l.apply(2, &[suspect("a.go", 10, 300.0)]).unwrap();
        assert!(out.reported.is_empty());
        assert!(!l.acknowledge("no such fingerprint", 1.0).unwrap());
    }

    #[test]
    fn distinct_sites_page_independently() {
        let mut l = ledger();
        let out = l
            .apply(1, &[suspect("a.go", 10, 100.0), suspect("b.go", 20, 90.0)])
            .unwrap();
        assert_eq!(out.reported.len(), 2);
        let out = l
            .apply(2, &[suspect("a.go", 10, 100.0), suspect("c.go", 30, 80.0)])
            .unwrap();
        assert_eq!(out.reported.len(), 1, "only the new site pages");
        assert_eq!(out.suppressed, 1);
    }

    /// Satellite: conflicting shard ledgers merge without losing
    /// operator intent — the latest (highest) ack and the earliest
    /// open-episode cycle both survive.
    #[test]
    fn conflicting_shard_ledgers_merge_ack_and_episode_correctly() {
        // Shard A saw the site first (cycle 2) and its operator acked
        // high; shard B saw it later but more recently, with a lower
        // ack and a different owner.
        let mut a = ledger();
        a.apply(2, &[suspect("a.go", 10, 100.0)]).unwrap();
        let fp = ReportLedger::fingerprint(&suspect("a.go", 10, 100.0));
        a.acknowledge(&fp, 400.0).unwrap();

        let mut b = ledger();
        b.apply(5, &[suspect("a.go", 10, 150.0)]).unwrap();
        b.apply(9, &[suspect("a.go", 10, 180.0)]).unwrap();

        let mut fleet = ledger();
        fleet.merge_from(&a).unwrap();
        fleet.merge_from(&b).unwrap();

        let e = fleet.entry(&fp).unwrap();
        assert_eq!(e.acked_rms, 400.0, "the highest (latest) ack survives");
        assert_eq!(e.first_cycle, 2, "earliest open-episode cycle survives");
        assert_eq!(e.last_seen_cycle, 9);
        assert_eq!(e.peak_rms, 180.0);
        assert_eq!(e.state, EpisodeState::Active);
        assert_eq!(fleet.summary().reported_total, 2, "shard totals sum");

        // Merge order must not matter for the entry state.
        let mut fleet2 = ledger();
        fleet2.merge_from(&b).unwrap();
        fleet2.merge_from(&a).unwrap();
        let e2 = fleet2.entry(&fp).unwrap();
        assert_eq!(e2.acked_rms, 400.0);
        assert_eq!(e2.first_cycle, 2);

        // The merged ledger honors the surviving ack: 350 < 400 stays
        // quiet even though both shards individually acked lower.
        let out = fleet.apply(10, &[suspect("a.go", 10, 350.0)]).unwrap();
        assert!(out.reported.is_empty(), "merged ledger re-paged under ack");
    }

    /// A shard with an open episode keeps the fleet entry active even
    /// when another shard already resolved its own view of the site.
    #[test]
    fn merge_keeps_episode_open_if_any_shard_is_active() {
        let mut a = ledger();
        a.apply(1, &[suspect("a.go", 10, 100.0)]).unwrap();
        a.apply(2, &[]).unwrap();
        let out = a.apply(3, &[]).unwrap();
        assert_eq!(out.resolved.len(), 1);

        let mut b = ledger();
        b.apply(4, &[suspect("a.go", 10, 90.0)]).unwrap();

        let fp = ReportLedger::fingerprint(&suspect("a.go", 10, 90.0));
        let mut fleet = ledger();
        fleet.merge_from(&a).unwrap();
        assert_eq!(fleet.entry(&fp).unwrap().state, EpisodeState::Resolved);
        fleet.merge_from(&b).unwrap();
        assert_eq!(fleet.entry(&fp).unwrap().state, EpisodeState::Active);
    }

    #[test]
    fn persistence_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("leakprofd-ledger-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fp;
        {
            let mut l = ReportLedger::open(&path, LedgerConfig::default()).unwrap();
            fp = l.apply(1, &[suspect("a.go", 10, 100.0)]).unwrap().reported[0].clone();
            l.acknowledge(&fp, 250.0).unwrap();
        }
        {
            let mut l = ReportLedger::open(&path, LedgerConfig::default()).unwrap();
            assert_eq!(l.entry(&fp).unwrap().acked_rms, 250.0);
            // The restart must not re-page an acknowledged leak.
            let out = l.apply(2, &[suspect("a.go", 10, 240.0)]).unwrap();
            assert!(out.reported.is_empty());
            assert_eq!(l.summary().reported_total, 1);
        }
        let _ = std::fs::remove_file(&path);
    }
}
