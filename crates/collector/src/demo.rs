//! Demo fleet wiring: spins up a real [`fleet::Fleet`] with known leaky
//! services, publishes its profiles into a [`ProfileHub`], and returns
//! everything a daemon needs to scrape it — used by `leakprofd
//! scrape-once`, the benches, and the end-to-end tests.

use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};
use gosim::GoroutineProfile;

use crate::endpoints::ProfileHub;
use crate::scrape::ScrapeTarget;

/// A fleet simulation plus the hub serving its profiles.
pub struct DemoFleet {
    /// The running simulation (step it for more days, then republish).
    pub fleet: Fleet,
    /// Hub holding the latest published profiles.
    pub hub: ProfileHub,
    /// Handler sources, for LeakProf's criterion-2 AST index.
    pub sources: Vec<(String, String)>,
    /// Ground-truth leak sites `(file, line)` injected into the fleet.
    pub leak_sites: Vec<(String, u32)>,
}

impl DemoFleet {
    /// Builds a fleet totaling roughly `instances` instances across the
    /// paper's three leak archetypes plus a healthy service, runs it for
    /// `days`, and publishes the resulting profiles.
    pub fn build(instances: usize, days: u32, seed: u64) -> DemoFleet {
        // Small ticks keep a 100-instance demo under a second while still
        // exercising real runtimes per instance.
        let mut f = Fleet::new(FleetConfig {
            seed,
            ticks_per_day: 12,
            rt_ticks_per_tick: 40,
        });
        let per_service = (instances / 4).max(1);
        let mut leak_sites = Vec::new();

        let specs = [
            (
                handlers::timeout_leak("pay", 2_000),
                handlers::timeout_fixed("pay", 2_000),
                HandlerArg::NilCtx,
                0.5,
            ),
            (
                handlers::premature_return_leak("geo", 2_000),
                handlers::premature_return_fixed("geo", 2_000),
                HandlerArg::True,
                0.2,
            ),
            (
                handlers::contract_leak("msg", 2_000),
                handlers::contract_fixed("msg", 2_000),
                HandlerArg::False,
                0.7,
            ),
        ];
        for (i, (leaky, fixed, arg, activation)) in specs.into_iter().enumerate() {
            leak_sites.push((leaky.path.clone(), leaky.leak_line.expect("leaky handler")));
            let mut spec = default_service(&format!("svc{i}"), per_service, leaky, fixed);
            spec.arg = arg;
            spec.leak_activation = activation;
            f.add_service(spec);
        }
        // Healthy remainder so the fleet reaches the requested size.
        let rest = instances.saturating_sub(3 * per_service).max(1);
        let mut healthy = default_service(
            "ok",
            rest,
            handlers::timeout_fixed("ok", 2_000),
            handlers::timeout_fixed("ok", 2_000),
        );
        healthy.fix_day = Some(0);
        f.add_service(healthy);

        f.run_days(days);
        let sources = f.handler_sources();
        let hub = ProfileHub::new();
        let profiles = f.collect_profiles();
        hub.publish_all(&profiles);
        DemoFleet {
            fleet: f,
            hub,
            sources,
            leak_sites,
        }
    }

    /// Advances the simulation by `days` and republishes fresh profiles.
    /// Returns the newly published profile set.
    pub fn advance_and_republish(&mut self, days: u32) -> Vec<GoroutineProfile> {
        self.fleet.run_days(days);
        let profiles = self.fleet.collect_profiles();
        self.hub.publish_all(&profiles);
        profiles
    }

    /// Builds scrape targets for every published instance against the
    /// hub server at `addr`.
    pub fn targets(&self, addr: std::net::SocketAddr) -> Vec<ScrapeTarget> {
        self.hub
            .instances()
            .into_iter()
            .map(|id| ScrapeTarget {
                path: ProfileHub::profile_path(&id),
                instance: id,
                addr,
            })
            .collect()
    }

    /// Writes the fleet's handler sources under `root` so a daemon's
    /// static tier (or any on-disk tool) can analyze the same tree the
    /// profiles reference — each `(src, path)` pair lands at
    /// `root/<path>`.
    ///
    /// # Errors
    ///
    /// Returns the first IO error encountered while writing.
    pub fn write_sources(&self, root: &std::path::Path) -> std::io::Result<()> {
        for (src, path) in &self.sources {
            let dest = root.join(path);
            if let Some(parent) = dest.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(dest, src)?;
        }
        Ok(())
    }

    /// A LeakProf configured for this demo fleet (scaled threshold, AST
    /// filter on, sources indexed).
    pub fn leakprof(&self, threshold: u64, top_n: usize) -> leakprof::LeakProf {
        let mut lp = leakprof::LeakProf::new(leakprof::Config {
            threshold,
            ast_filter: true,
            top_n,
        });
        for (src, path) in &self.sources {
            lp.index_source(src, path).expect("handler sources parse");
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_fleet_publishes_requested_instance_count() {
        let demo = DemoFleet::build(12, 1, 11);
        let ids = demo.hub.instances();
        assert!(ids.len() >= 12, "got {} instances", ids.len());
        assert_eq!(demo.leak_sites.len(), 3);
        assert!(!demo.sources.is_empty());
    }
}
