//! Per-target circuit breakers: dead or flapping instances stop costing
//! full retry budgets every cycle.
//!
//! Each scrape target carries a tiny state machine:
//!
//! * **Closed** — scraped normally; consecutive failures are counted.
//! * **Open** — quarantined after `failure_threshold` consecutive
//!   failures; the target is skipped entirely (cost ~0 per cycle) until
//!   its probe countdown elapses.
//! * **Half-open** — the countdown elapsed; the target gets exactly one
//!   single-attempt probe request. Success closes the breaker; failure
//!   re-opens it with a doubled countdown (decaying probe frequency, so
//!   a long-dead instance is probed ever more rarely, up to a cap).
//!
//! Breaker state is deliberately in-memory only: after a daemon restart
//! every target starts closed and dead ones are re-quarantined within
//! `failure_threshold` cycles. Persisting it would buy little and risk
//! permanently skipping an instance that recovered while the daemon was
//! down.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that open a target's breaker.
    pub failure_threshold: u32,
    /// Cycles a freshly opened breaker waits before its first half-open
    /// probe.
    pub probe_after_cycles: u32,
    /// Cap on the probe countdown as it doubles after each failed probe.
    pub max_probe_backoff: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            probe_after_cycles: 2,
            max_probe_backoff: 32,
        }
    }
}

/// Externally visible state of one target's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Scraped normally.
    Closed,
    /// Quarantined; skipped until the probe countdown elapses.
    Open,
    /// Probe countdown elapsed; next cycle sends one probe request.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// What the scraper should do with a target this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Scrape with the full attempt budget.
    Scrape,
    /// Send exactly one single-attempt probe request.
    Probe,
    /// Skip entirely.
    Skip,
}

#[derive(Debug, Clone)]
struct Entry {
    state: BreakerState,
    consecutive_failures: u32,
    /// Cycles remaining before the next half-open probe (open state).
    countdown: u32,
    /// Current probe backoff; doubles after each failed probe.
    backoff: u32,
    /// Times this breaker has opened (for metrics).
    opened: u64,
}

/// One quarantined target, as surfaced in `/status`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuarantinedTarget {
    /// Instance id.
    pub instance: String,
    /// Breaker state (`Open` or `HalfOpen`).
    pub state: BreakerState,
    /// Cycles until the next probe (0 when half-open).
    pub cycles_until_probe: u32,
    /// Current probe backoff in cycles.
    pub probe_backoff: u32,
}

/// Aggregate breaker counts for `/status` and `/metrics`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BreakerSummary {
    /// Targets scraped normally.
    pub closed: usize,
    /// Targets currently quarantined.
    pub open: usize,
    /// Targets due a probe next cycle.
    pub half_open: usize,
    /// Breaker-open transitions over the daemon lifetime.
    pub opened_total: u64,
    /// Quarantined targets with their probe schedules.
    pub quarantined: Vec<QuarantinedTarget>,
}

/// The set of per-target breakers, keyed by instance id.
#[derive(Debug, Clone, Default)]
pub struct BreakerSet {
    config: BreakerConfig,
    entries: BTreeMap<String, Entry>,
}

impl BreakerSet {
    /// Creates a breaker set with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerSet {
            config,
            entries: BTreeMap::new(),
        }
    }

    /// Decides what to do with `instance` this cycle, advancing its probe
    /// countdown. Call exactly once per target per cycle.
    pub fn decide(&mut self, instance: &str) -> Decision {
        let Some(e) = self.entries.get_mut(instance) else {
            return Decision::Scrape; // unknown target: closed by default
        };
        match e.state {
            BreakerState::Closed => Decision::Scrape,
            BreakerState::HalfOpen => Decision::Probe,
            BreakerState::Open => {
                e.countdown = e.countdown.saturating_sub(1);
                if e.countdown == 0 {
                    e.state = BreakerState::HalfOpen;
                }
                Decision::Skip
            }
        }
    }

    /// Records the outcome of a scrape or probe for `instance`.
    pub fn record(&mut self, instance: &str, ok: bool) {
        let e = self.entries.entry(instance.to_string()).or_insert(Entry {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            countdown: 0,
            backoff: 0,
            opened: 0,
        });
        if ok {
            e.state = BreakerState::Closed;
            e.consecutive_failures = 0;
            e.backoff = 0;
            return;
        }
        match e.state {
            BreakerState::Closed => {
                e.consecutive_failures += 1;
                if e.consecutive_failures >= self.config.failure_threshold {
                    e.state = BreakerState::Open;
                    e.backoff = self.config.probe_after_cycles.max(1);
                    e.countdown = e.backoff;
                    e.opened += 1;
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: back off twice as long before the next one.
                e.state = BreakerState::Open;
                e.backoff = (e.backoff.max(1) * 2).min(self.config.max_probe_backoff.max(1));
                e.countdown = e.backoff;
                e.opened += 1;
            }
            BreakerState::Open => {
                // A skipped target cannot fail; nothing to record.
            }
        }
    }

    /// The breaker state of one instance (closed if never seen).
    pub fn state(&self, instance: &str) -> BreakerState {
        self.entries
            .get(instance)
            .map(|e| e.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Builds the summary surfaced in `/status`, sized against `targets`
    /// registered scrape targets (instances never recorded count as
    /// closed).
    pub fn summary(&self, targets: usize) -> BreakerSummary {
        let mut s = BreakerSummary::default();
        for (instance, e) in &self.entries {
            match e.state {
                BreakerState::Closed => {}
                BreakerState::Open => {
                    s.open += 1;
                    s.quarantined.push(QuarantinedTarget {
                        instance: instance.clone(),
                        state: e.state,
                        cycles_until_probe: e.countdown,
                        probe_backoff: e.backoff,
                    });
                }
                BreakerState::HalfOpen => {
                    s.half_open += 1;
                    s.quarantined.push(QuarantinedTarget {
                        instance: instance.clone(),
                        state: e.state,
                        cycles_until_probe: 0,
                        probe_backoff: e.backoff,
                    });
                }
            }
            s.opened_total += e.opened;
        }
        s.closed = targets.saturating_sub(s.open + s.half_open);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> BreakerSet {
        BreakerSet::new(BreakerConfig {
            failure_threshold: 3,
            probe_after_cycles: 2,
            max_probe_backoff: 8,
        })
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let mut b = set();
        b.record("x", false);
        b.record("x", true); // success resets the streak
        b.record("x", false);
        b.record("x", false);
        assert_eq!(b.state("x"), BreakerState::Closed);
        b.record("x", false);
        assert_eq!(b.state("x"), BreakerState::Open);
    }

    #[test]
    fn open_breaker_skips_then_half_open_probes() {
        let mut b = set();
        for _ in 0..3 {
            b.record("x", false);
        }
        // Two quarantine cycles, then a probe.
        assert_eq!(b.decide("x"), Decision::Skip);
        assert_eq!(b.decide("x"), Decision::Skip);
        assert_eq!(b.state("x"), BreakerState::HalfOpen);
        assert_eq!(b.decide("x"), Decision::Probe);
        // Successful probe closes it again.
        b.record("x", true);
        assert_eq!(b.state("x"), BreakerState::Closed);
        assert_eq!(b.decide("x"), Decision::Scrape);
    }

    #[test]
    fn failed_probes_decay_probe_frequency_up_to_cap() {
        let mut b = set();
        for _ in 0..3 {
            b.record("x", false);
        }
        let mut waits = Vec::new();
        for _ in 0..4 {
            // Count skips until the probe fires, then fail the probe.
            let mut skips = 0;
            loop {
                match b.decide("x") {
                    Decision::Skip => skips += 1,
                    Decision::Probe => break,
                    Decision::Scrape => panic!("dead target must not fully scrape"),
                }
            }
            waits.push(skips);
            b.record("x", false);
        }
        assert_eq!(waits, vec![2, 4, 8, 8], "countdown doubles then caps");
    }

    #[test]
    fn summary_counts_states() {
        let mut b = set();
        for _ in 0..3 {
            b.record("dead", false);
        }
        b.record("fine", true);
        let s = b.summary(5);
        assert_eq!(s.open, 1);
        assert_eq!(s.half_open, 0);
        assert_eq!(s.closed, 4);
        assert_eq!(s.opened_total, 1);
        assert_eq!(s.quarantined.len(), 1);
        assert_eq!(s.quarantined[0].instance, "dead");
    }

    #[test]
    fn unknown_targets_scrape_normally() {
        let mut b = set();
        assert_eq!(b.decide("never-seen"), Decision::Scrape);
        assert_eq!(b.state("never-seen"), BreakerState::Closed);
    }
}
