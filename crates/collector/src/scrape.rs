//! The concurrent scraper: scatter-gather over registered targets on a
//! bounded worker pool, with per-request deadlines and retry/backoff so
//! a slow or dead instance degrades one target's result instead of
//! stalling the cycle.
//!
//! With [`ScrapeConfig::keepalive`] on, the scraper pools one persistent
//! connection per target across cycles ([`crate::http::HttpConnection`]),
//! skipping the TCP handshake on every warm scrape. A pooled connection
//! that fails is discarded and the attempt falls back to a fresh connect
//! *within the same attempt*, so reuse never costs an extra retry.
//! Reuse/fresh/expired/failure counts surface as span attributes, in
//! `/metrics`, and in `status`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gosim::rng::SplitMix64;
use gosim::GoroutineProfile;
use obs::{site, stage, EventLog, Tracer, WorkerBoard, WorkerState};

use crate::breaker::{BreakerSet, Decision};
use crate::http::{http_get_with, HttpConnection, HttpError};
use crate::stats::CycleStats;

/// One instance endpoint to scrape.
#[derive(Debug, Clone)]
pub struct ScrapeTarget {
    /// Instance id (used for reporting; the parsed profile's own
    /// `instance` field is authoritative for analysis).
    pub instance: String,
    /// Server address.
    pub addr: std::net::SocketAddr,
    /// Request path, e.g. `/instance/pay-0/debug/pprof/goroutine`.
    pub path: String,
}

/// Scraper tuning knobs.
#[derive(Debug, Clone)]
pub struct ScrapeConfig {
    /// Worker threads; 0 means `min(16, targets)`.
    pub workers: usize,
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Read deadline per attempt.
    pub read_timeout: Duration,
    /// Attempts per target (first try + retries).
    pub max_attempts: u32,
    /// Base backoff; attempt `k` waits `base * 2^k` plus jitter.
    pub backoff_base: Duration,
    /// Seed for deterministic backoff jitter (via [`SplitMix64`]).
    pub jitter_seed: u64,
    /// Total per-target wall-time budget across every attempt and
    /// backoff sleep. Once spending the next backoff would exceed it, no
    /// further attempts are made — so a flapping target's cumulative
    /// cost is bounded regardless of `max_attempts`, and can be kept
    /// under the daemon's cycle interval. The worst-case per-target wall
    /// time is `attempt_budget + read_timeout` (one attempt may already
    /// be in flight as the budget runs out).
    pub attempt_budget: Duration,
    /// Keep one persistent connection per target across cycles and reuse
    /// it (`connection: keep-alive`). Off by default: every request dials
    /// a fresh connection, exactly as before.
    pub keepalive: bool,
    /// Retire a kept-alive connection after this many requests and
    /// redial (bounds how long a silently-degraded socket can linger).
    /// 0 means no limit.
    pub keepalive_max_uses: u32,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            workers: 0,
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(500),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            jitter_seed: 0,
            attempt_budget: Duration::from_secs(2),
            keepalive: false,
            keepalive_max_uses: 64,
        }
    }
}

/// Keep-alive pool counters since scraper creation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeepaliveSummary {
    /// Requests served over a pooled (reused) connection.
    pub reused: u64,
    /// Requests that dialed a fresh connection.
    pub fresh: u64,
    /// Pooled connections retired by the max-uses policy.
    pub expired: u64,
    /// Pooled connections discarded because a reuse attempt failed
    /// (each such request then fell back to a fresh dial).
    pub reuse_failures: u64,
}

#[derive(Debug, Default)]
struct KeepaliveCounters {
    reused: AtomicU64,
    fresh: AtomicU64,
    expired: AtomicU64,
    reuse_failures: AtomicU64,
}

impl KeepaliveCounters {
    fn summary(&self) -> KeepaliveSummary {
        KeepaliveSummary {
            reused: self.reused.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            reuse_failures: self.reuse_failures.load(Ordering::Relaxed),
        }
    }
}

/// How one request was carried, for span attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnMode {
    /// Plain per-request connection (`keepalive` off).
    Close,
    /// Served over a pooled connection.
    Reused,
    /// Dialed a fresh connection (none pooled, or pool entry expired).
    Fresh,
    /// A pooled connection failed mid-reuse; the same attempt completed
    /// over a fresh dial.
    ReusedThenFresh,
}

impl ConnMode {
    fn label(self) -> &'static str {
        match self {
            ConnMode::Close => "close",
            ConnMode::Reused => "reused",
            ConnMode::Fresh => "fresh",
            ConnMode::ReusedThenFresh => "reused_then_fresh",
        }
    }
}

/// Why one target failed after all attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrapeErrorKind {
    /// TCP connect failed on every attempt.
    Connect,
    /// The read deadline expired.
    Timeout,
    /// The connection dropped mid-body.
    Truncated,
    /// The body arrived but was not a valid profile.
    Parse,
    /// A non-200 HTTP status.
    Status(u16),
}

impl std::fmt::Display for ScrapeErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapeErrorKind::Connect => write!(f, "connect"),
            ScrapeErrorKind::Timeout => write!(f, "timeout"),
            ScrapeErrorKind::Truncated => write!(f, "truncated"),
            ScrapeErrorKind::Parse => write!(f, "parse"),
            ScrapeErrorKind::Status(s) => write!(f, "status-{s}"),
        }
    }
}

/// A target that exhausted its attempts, with the final failure.
#[derive(Debug, Clone)]
pub struct ScrapeError {
    /// The failed target's instance id.
    pub instance: String,
    /// Attempts made.
    pub attempts: u32,
    /// Classification of the final failure.
    pub kind: ScrapeErrorKind,
    /// Human-readable detail from the final attempt.
    pub detail: String,
}

/// Everything one scatter-gather cycle produced.
#[derive(Debug, Clone, Default)]
pub struct CycleReport {
    /// Parsed profiles, sorted by instance id for deterministic
    /// downstream ingestion.
    pub profiles: Vec<GoroutineProfile>,
    /// Targets that failed, sorted by instance id.
    pub errors: Vec<ScrapeError>,
    /// Targets skipped by an open circuit breaker, sorted by instance id.
    pub skipped: Vec<String>,
    /// Cycle health counters.
    pub stats: CycleStats,
}

/// The scatter-gather scraper. Clones share the connection pool and
/// keep-alive counters.
#[derive(Clone, Default)]
pub struct Scraper {
    config: ScrapeConfig,
    pool: Arc<Mutex<HashMap<String, HttpConnection>>>,
    counters: Arc<KeepaliveCounters>,
    tracer: Tracer,
    events: EventLog,
    board: Option<WorkerBoard>,
}

impl std::fmt::Debug for Scraper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scraper")
            .field("config", &self.config)
            .field("pooled_connections", &self.pool.lock().unwrap().len())
            .finish()
    }
}

impl Scraper {
    /// Creates a scraper with the given configuration.
    pub fn new(config: ScrapeConfig) -> Self {
        Scraper {
            config,
            ..Scraper::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScrapeConfig {
        &self.config
    }

    /// Records spans for every cycle/target on `tracer` from now on.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Emits structured events (failed targets) on `events` from now on.
    pub fn set_events(&mut self, events: EventLog) {
        self.events = events;
    }

    /// Registers cycle worker threads on `board` so the daemon's
    /// self-profile shows where scrape workers block.
    pub fn set_worker_board(&mut self, board: WorkerBoard) {
        self.board = Some(board);
    }

    /// Keep-alive pool counters since scraper creation (all zero while
    /// [`ScrapeConfig::keepalive`] is off).
    pub fn keepalive_summary(&self) -> KeepaliveSummary {
        self.counters.summary()
    }

    /// Scrapes every target once (with per-target retries), never letting
    /// one slow or dead target stall the cycle: failures become
    /// [`ScrapeError`]s in the report.
    pub fn scrape_cycle(&self, targets: &[ScrapeTarget]) -> CycleReport {
        self.run_cycle_inner(targets, None)
    }

    /// Breaker-gated cycle: consults `breakers` for every target —
    /// quarantined targets are skipped at ~0 cost, half-open ones get a
    /// single probe attempt — and records every outcome back, so dead
    /// instances open their breakers and recovered ones close them.
    pub fn scrape_cycle_gated(
        &self,
        targets: &[ScrapeTarget],
        breakers: &mut BreakerSet,
    ) -> CycleReport {
        self.run_cycle_inner(targets, Some(breakers))
    }

    fn run_cycle_inner(
        &self,
        targets: &[ScrapeTarget],
        mut breakers: Option<&mut BreakerSet>,
    ) -> CycleReport {
        let started = Instant::now();
        let decisions: Vec<Decision> = match breakers.as_deref_mut() {
            Some(b) => targets.iter().map(|t| b.decide(&t.instance)).collect(),
            None => vec![Decision::Scrape; targets.len()],
        };
        let workers = match self.config.workers {
            0 => targets.len().clamp(1, 16),
            w => w.max(1),
        };
        let next = AtomicUsize::new(0);
        type Slot = (usize, Result<GoroutineProfile, ScrapeError>, Vec<Duration>);
        let results: Mutex<Vec<Slot>> = Mutex::new(Vec::with_capacity(targets.len()));

        let mut scrape_span = self.tracer.start(stage::SCRAPE, "");
        scrape_span.attr("targets", targets.len());
        let scrape_id = scrape_span.id();
        std::thread::scope(|s| {
            for _ in 0..workers.min(targets.len().max(1)) {
                s.spawn(|| {
                    let wh = self.board.as_ref().map(|b| {
                        b.register(
                            "collector::scrape::worker",
                            site!("collector::scrape::run_cycle_inner"),
                        )
                    });
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(target) = targets.get(idx) else {
                            break;
                        };
                        let max_attempts = match decisions[idx] {
                            Decision::Skip => continue,
                            Decision::Probe => 1,
                            Decision::Scrape => self.config.max_attempts.max(1),
                        };
                        let mut span =
                            self.tracer
                                .start_with(stage::TARGET, &target.instance, scrape_id);
                        let (outcome, latencies) =
                            self.scrape_target(idx, target, max_attempts, &mut span, wh.as_ref());
                        span.finish();
                        if let Some(h) = &wh {
                            h.set(WorkerState::Idle, site!("collector::scrape::next_target"));
                        }
                        results
                            .lock()
                            .expect("results poisoned")
                            .push((idx, outcome, latencies));
                    }
                });
            }
        });

        let mut report = CycleReport::default();
        let mut recorded = results.into_inner().expect("results poisoned");
        recorded.sort_by_key(|(idx, _, _)| *idx);
        for (idx, outcome, latencies) in recorded {
            let attempts = latencies.len() as u64;
            report.stats.retries += attempts.saturating_sub(1);
            for l in latencies {
                report.stats.latency.record(l);
            }
            if let Some(b) = breakers.as_deref_mut() {
                b.record(&targets[idx].instance, outcome.is_ok());
            }
            match outcome {
                Ok(p) => report.profiles.push(p),
                Err(e) => {
                    self.events.warn(
                        "scrape",
                        format!(
                            "target {} failed after {} attempts ({}): {}",
                            e.instance, e.attempts, e.kind, e.detail
                        ),
                    );
                    report.errors.push(e);
                }
            }
        }
        for (idx, d) in decisions.iter().enumerate() {
            if *d == Decision::Skip {
                report.skipped.push(targets[idx].instance.clone());
            }
        }
        report.profiles.sort_by(|a, b| a.instance.cmp(&b.instance));
        report.errors.sort_by(|a, b| a.instance.cmp(&b.instance));
        report.skipped.sort();
        report.stats.targets = targets.len();
        report.stats.succeeded = report.profiles.len();
        report.stats.failed = report.errors.len();
        report.stats.skipped = report.skipped.len();
        report.stats.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        scrape_span.attr("succeeded", report.stats.succeeded);
        scrape_span.attr("failed", report.stats.failed);
        scrape_span.attr("skipped", report.stats.skipped);
        scrape_span.finish();
        report
    }

    /// Attempts one target with retry + exponential backoff, bounded by
    /// [`ScrapeConfig::attempt_budget`]; returns the outcome and
    /// per-attempt wall latencies, annotating `span` with attempt count,
    /// connection mode, and body size.
    fn scrape_target(
        &self,
        index: usize,
        target: &ScrapeTarget,
        max_attempts: u32,
        span: &mut obs::SpanGuard,
        wh: Option<&obs::WorkerHandle>,
    ) -> (Result<GoroutineProfile, ScrapeError>, Vec<Duration>) {
        // Deterministic jitter stream per (seed, target position).
        let mut rng = SplitMix64::new(
            self.config.jitter_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // One hop id per target: every attempt carries the same
        // traceparent, so the instance (if it traces) hangs under this
        // TARGET span whichever attempt got through.
        let hop_header = self.tracer.hop(span).map(|ctx| ctx.to_header());
        let begun = Instant::now();
        let mut latencies = Vec::new();
        let mut last: Option<(ScrapeErrorKind, String)> = None;
        let attempts = max_attempts.max(1);
        let mut attempts_made = 0u32;
        let mut last_mode = ConnMode::Close;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = self.config.backoff_base * (1u32 << (attempt - 1).min(8));
                let jitter_us = rng.next_below(backoff.as_micros().max(1) as u64);
                let wait = backoff + Duration::from_micros(jitter_us);
                // Budget check: retrying must never push the cumulative
                // per-target wall time past the attempt budget.
                if begun.elapsed() + wait >= self.config.attempt_budget {
                    break;
                }
                std::thread::sleep(wait);
            }
            attempts_made += 1;
            if let Some(h) = wh {
                h.set(WorkerState::Connect, site!("collector::scrape::fetch"));
            }
            let begin = Instant::now();
            let (outcome, mode) = self.fetch(target, hop_header.as_deref());
            last_mode = mode;
            latencies.push(begin.elapsed());
            match outcome {
                Ok(body) => {
                    if let Some(h) = wh {
                        h.set(
                            WorkerState::Parse,
                            site!("collector::scrape::parse_profile"),
                        );
                    }
                    span.attr("bytes", body.len());
                    match std::str::from_utf8(&body)
                        .map_err(|e| e.to_string())
                        .and_then(|s| {
                            serde_json::from_str::<GoroutineProfile>(s).map_err(|e| e.to_string())
                        }) {
                        Ok(profile) => {
                            span.attr("attempts", attempts_made);
                            span.attr("conn", mode.label());
                            return (Ok(profile), latencies);
                        }
                        Err(e) => last = Some((ScrapeErrorKind::Parse, e)),
                    }
                }
                Err(e) => {
                    let kind = match &e {
                        HttpError::Connect(_) => ScrapeErrorKind::Connect,
                        HttpError::Timeout => ScrapeErrorKind::Timeout,
                        HttpError::Truncated { .. } => ScrapeErrorKind::Truncated,
                        HttpError::Status(s) => ScrapeErrorKind::Status(*s),
                        HttpError::Malformed(_) => ScrapeErrorKind::Parse,
                    };
                    last = Some((kind, e.to_string()));
                }
            }
        }
        let (kind, detail) = last.expect("at least one attempt ran");
        span.attr("attempts", attempts_made);
        span.attr("conn", last_mode.label());
        span.attr("error", &kind);
        (
            Err(ScrapeError {
                instance: target.instance.clone(),
                attempts: attempts_made,
                kind,
                detail,
            }),
            latencies,
        )
    }

    /// Carries one request to `target`: over the pooled keep-alive
    /// connection when available (retiring it at `keepalive_max_uses`),
    /// falling back to a fresh dial — *within this same attempt* — when
    /// reuse fails, or plain [`http_get`] when keep-alive is off.
    fn fetch(
        &self,
        target: &ScrapeTarget,
        traceparent: Option<&str>,
    ) -> (Result<Vec<u8>, HttpError>, ConnMode) {
        if !self.config.keepalive {
            let out = http_get_with(
                target.addr,
                &target.path,
                self.config.connect_timeout,
                self.config.read_timeout,
                traceparent,
            );
            return (out, ConnMode::Close);
        }
        let pooled = self
            .pool
            .lock()
            .expect("pool poisoned")
            .remove(&target.instance);
        let mut reuse_failed = false;
        if let Some(mut conn) = pooled {
            let max = self.config.keepalive_max_uses;
            if max > 0 && conn.uses() >= max {
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
                // Retired: fall through to a fresh dial.
            } else {
                match conn.get_with(&target.path, traceparent) {
                    Ok(body) => {
                        self.counters.reused.fetch_add(1, Ordering::Relaxed);
                        self.pool
                            .lock()
                            .expect("pool poisoned")
                            .insert(target.instance.clone(), conn);
                        return (Ok(body), ConnMode::Reused);
                    }
                    Err(_) => {
                        // The parked socket went stale (server expiry,
                        // restart, network blip). Don't fail the attempt:
                        // count it and redial.
                        self.counters.reuse_failures.fetch_add(1, Ordering::Relaxed);
                        reuse_failed = true;
                    }
                }
            }
        }
        let mode = if reuse_failed {
            ConnMode::ReusedThenFresh
        } else {
            ConnMode::Fresh
        };
        match HttpConnection::connect(
            target.addr,
            self.config.connect_timeout,
            self.config.read_timeout,
        ) {
            Ok(mut conn) => {
                let out = conn.get_with(&target.path, traceparent);
                self.counters.fresh.fetch_add(1, Ordering::Relaxed);
                if out.is_ok() {
                    self.pool
                        .lock()
                        .expect("pool poisoned")
                        .insert(target.instance.clone(), conn);
                }
                (out, mode)
            }
            Err(e) => (Err(e), mode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Fault, ProfileHub};
    use gosim::GoroutineProfile;

    fn hub_with(instances: &[&str]) -> ProfileHub {
        let hub = ProfileHub::new();
        for id in instances {
            hub.publish(&GoroutineProfile {
                instance: (*id).into(),
                captured_at: 1,
                goroutines: vec![],
            });
        }
        hub
    }

    fn targets_for(hub: &ProfileHub, addr: std::net::SocketAddr) -> Vec<ScrapeTarget> {
        hub.instances()
            .into_iter()
            .map(|id| ScrapeTarget {
                path: ProfileHub::profile_path(&id),
                instance: id,
                addr,
            })
            .collect()
    }

    #[test]
    fn clean_cycle_scrapes_everything() {
        let hub = hub_with(&["a", "b", "c", "d"]);
        let server = hub.serve("127.0.0.1:0", 4).unwrap();
        let scraper = Scraper::new(ScrapeConfig::default());
        let report = scraper.scrape_cycle(&targets_for(&hub, server.addr()));
        assert_eq!(report.stats.succeeded, 4);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.stats.retries, 0);
        let names: Vec<&str> = report
            .profiles
            .iter()
            .map(|p| p.instance.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["a", "b", "c", "d"],
            "profiles sorted by instance"
        );
        assert!(report.stats.latency.count() >= 4);
    }

    #[test]
    fn empty_target_list_is_a_clean_noop() {
        let scraper = Scraper::new(ScrapeConfig::default());
        let report = scraper.scrape_cycle(&[]);
        assert_eq!(report.stats.targets, 0);
        assert!((report.stats.success_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dead_instance_fails_without_stalling_others() {
        let hub = hub_with(&["alive-0", "alive-1", "dead"]);
        hub.inject_fault("dead", Fault::CloseBeforeResponse);
        let server = hub.serve("127.0.0.1:0", 4).unwrap();
        let scraper = Scraper::new(ScrapeConfig {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            ..ScrapeConfig::default()
        });
        let report = scraper.scrape_cycle(&targets_for(&hub, server.addr()));
        assert_eq!(report.stats.succeeded, 2);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.errors[0].instance, "dead");
        assert_eq!(report.errors[0].attempts, 2);
        assert_eq!(report.stats.retries, 1);
        assert_eq!(report.errors[0].kind, ScrapeErrorKind::Truncated);
    }

    #[test]
    fn attempt_budget_bounds_per_target_wall_time() {
        // A dead address with a huge retry count: without the budget,
        // backoff alone would be 10ms * (1+2+4+...+2^8) » 1s.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = ScrapeConfig {
            max_attempts: 50,
            backoff_base: Duration::from_millis(10),
            connect_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_millis(100),
            attempt_budget: Duration::from_millis(120),
            ..ScrapeConfig::default()
        };
        let scraper = Scraper::new(config.clone());
        let target = ScrapeTarget {
            instance: "flapping".into(),
            addr: dead_addr,
            path: "/x".into(),
        };
        let started = Instant::now();
        let report = scraper.scrape_cycle(std::slice::from_ref(&target));
        let wall = started.elapsed();
        assert_eq!(report.stats.failed, 1);
        // Worst case pinned: budget plus one in-flight attempt's deadline
        // (connect + read), plus scheduling slack.
        let bound = config.attempt_budget + config.connect_timeout + config.read_timeout;
        assert!(
            wall < bound + Duration::from_millis(250),
            "per-target wall {wall:?} exceeded budget bound {bound:?}"
        );
        assert!(
            report.errors[0].attempts < 50,
            "budget stopped the retry loop early ({} attempts)",
            report.errors[0].attempts
        );
    }

    #[test]
    fn gated_cycle_quarantines_dead_target_and_probes_it_back() {
        use crate::breaker::{BreakerConfig, BreakerSet, BreakerState};
        let hub = hub_with(&["live", "dying"]);
        hub.inject_fault("dying", Fault::CloseBeforeResponse);
        let server = hub.serve("127.0.0.1:0", 4).unwrap();
        let targets = targets_for(&hub, server.addr());
        let scraper = Scraper::new(ScrapeConfig {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            ..ScrapeConfig::default()
        });
        let mut breakers = BreakerSet::new(BreakerConfig {
            failure_threshold: 2,
            probe_after_cycles: 1,
            max_probe_backoff: 4,
        });

        // Two failing cycles open the breaker...
        for _ in 0..2 {
            let r = scraper.scrape_cycle_gated(&targets, &mut breakers);
            assert_eq!(r.stats.failed, 1);
            assert_eq!(r.stats.skipped, 0);
        }
        assert_eq!(breakers.state("dying"), BreakerState::Open);

        // ...after which the dead target is skipped, not retried.
        let r = scraper.scrape_cycle_gated(&targets, &mut breakers);
        assert_eq!(r.stats.skipped, 1);
        assert_eq!(r.skipped, vec!["dying".to_string()]);
        assert_eq!(r.stats.failed, 0);
        assert_eq!(r.stats.retries, 0, "skipped targets cost no attempts");
        assert!((r.stats.success_rate() - 1.0).abs() < 1e-9);

        // The instance recovers; the half-open probe closes the breaker.
        hub.inject_fault("dying", Fault::None);
        let mut probed = false;
        for _ in 0..4 {
            let r = scraper.scrape_cycle_gated(&targets, &mut breakers);
            if r.stats.succeeded == 2 {
                probed = true;
                break;
            }
        }
        assert!(probed, "recovered target was probed back into rotation");
        assert_eq!(breakers.state("dying"), BreakerState::Closed);
    }

    #[test]
    fn keepalive_reuses_connections_across_cycles() {
        let hub = hub_with(&["a", "b", "c"]);
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let scraper = Scraper::new(ScrapeConfig {
            keepalive: true,
            ..ScrapeConfig::default()
        });
        let targets = targets_for(&hub, server.addr());
        assert_eq!(scraper.scrape_cycle(&targets).stats.succeeded, 3);
        assert_eq!(scraper.scrape_cycle(&targets).stats.succeeded, 3);
        let ka = scraper.keepalive_summary();
        assert_eq!(ka.fresh, 3, "cycle 1 dials each target once");
        assert_eq!(ka.reused, 3, "cycle 2 reuses every pooled connection");
        assert_eq!(ka.reuse_failures, 0);
        assert_eq!(ka.expired, 0);
    }

    #[test]
    fn keepalive_max_uses_retires_connections() {
        let hub = hub_with(&["a", "b"]);
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let scraper = Scraper::new(ScrapeConfig {
            keepalive: true,
            keepalive_max_uses: 1,
            ..ScrapeConfig::default()
        });
        let targets = targets_for(&hub, server.addr());
        for _ in 0..3 {
            assert_eq!(scraper.scrape_cycle(&targets).stats.succeeded, 2);
        }
        let ka = scraper.keepalive_summary();
        assert_eq!(ka.reused, 0, "one use per connection: nothing reusable");
        assert_eq!(ka.expired, 4, "cycles 2 and 3 retire both pooled conns");
        assert_eq!(ka.fresh, 6);
    }

    #[test]
    fn stale_pooled_connection_falls_back_to_fresh_in_same_attempt() {
        let hub = hub_with(&["a", "b"]);
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        let scraper = Scraper::new(ScrapeConfig {
            keepalive: true,
            ..ScrapeConfig::default()
        });
        let targets = targets_for(&hub, addr);
        assert_eq!(scraper.scrape_cycle(&targets).stats.succeeded, 2);
        // Restart the server on the same port: every pooled connection is
        // now dead, but the next cycle must still succeed with zero
        // retries — the fresh fallback runs inside the same attempt.
        drop(server);
        let server2 = hub.serve(&addr.to_string(), 2).unwrap();
        assert_eq!(server2.addr(), addr);
        let r = scraper.scrape_cycle(&targets);
        assert_eq!(r.stats.succeeded, 2);
        assert_eq!(r.stats.retries, 0, "fallback must not consume a retry");
        let ka = scraper.keepalive_summary();
        assert!(ka.reuse_failures >= 1, "stale connections counted: {ka:?}");
        assert_eq!(ka.fresh as usize, 2 + ka.reuse_failures as usize);
    }

    #[test]
    fn spans_cover_cycle_and_targets() {
        use obs::{stage, TraceConfig, Tracer};
        let hub = hub_with(&["a", "b"]);
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let mut scraper = Scraper::new(ScrapeConfig::default());
        let tracer = Tracer::new(&TraceConfig::default());
        scraper.set_tracer(tracer.clone());
        scraper.scrape_cycle(&targets_for(&hub, server.addr()));
        tracer.finish_cycle(1);
        let snap = tracer.snapshot();
        let spans = &snap.cycles[0].spans;
        let scrape = spans.iter().find(|s| s.stage == stage::SCRAPE).unwrap();
        let tgts: Vec<_> = spans.iter().filter(|s| s.stage == stage::TARGET).collect();
        assert_eq!(tgts.len(), 2);
        assert!(tgts.iter().all(|t| t.parent == scrape.id));
        for t in tgts {
            assert!(t.attrs.iter().any(|(k, v)| k == "conn" && v == "close"));
            assert!(t.attrs.iter().any(|(k, _)| k == "bytes"));
            assert!(t.attrs.iter().any(|(k, v)| k == "attempts" && v == "1"));
        }
    }

    #[test]
    fn traced_cycle_stamps_hop_ids_on_target_spans() {
        use obs::{stage, TraceConfig, Tracer};
        let hub = hub_with(&["a", "b"]);
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let mut scraper = Scraper::new(ScrapeConfig::default());
        let tracer = Tracer::new(&TraceConfig::default());
        scraper.set_tracer(tracer.clone());
        let ctx = tracer.begin_cycle().unwrap();
        scraper.scrape_cycle(&targets_for(&hub, server.addr()));
        tracer.finish_cycle(1);
        let snap = tracer.snapshot();
        let tgts: Vec<_> = snap.cycles[0]
            .spans
            .iter()
            .filter(|s| s.stage == stage::TARGET)
            .collect();
        assert_eq!(tgts.len(), 2);
        for t in tgts {
            assert_eq!(t.trace.as_deref(), Some(ctx.trace_id.as_str()));
            let hop = t
                .attrs
                .iter()
                .find(|(k, _)| k == "hop")
                .map(|(_, v)| v.as_str())
                .expect("hop attr stamped");
            assert_eq!(hop.len(), 16);
            assert!(u64::from_str_radix(hop, 16).is_ok());
        }
    }

    #[test]
    fn failed_targets_emit_warn_events() {
        use obs::{EventConfig, EventLog};
        let hub = hub_with(&["ok", "bad"]);
        hub.inject_fault("bad", Fault::CloseBeforeResponse);
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let mut scraper = Scraper::new(ScrapeConfig {
            max_attempts: 1,
            ..ScrapeConfig::default()
        });
        let events = EventLog::new(EventConfig::default());
        scraper.set_events(events.clone());
        scraper.scrape_cycle(&targets_for(&hub, server.addr()));
        let recent = events.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].level, "warn");
        assert_eq!(recent[0].target, "scrape");
        assert!(recent[0].message.contains("bad"), "{}", recent[0].message);
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42 ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut b = SplitMix64::new(42 ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..16 {
            assert_eq!(a.next_below(10_000), b.next_below(10_000));
        }
    }
}
