//! Offline backtest: replay the persisted telemetry store — or a JSONL
//! cycle history migrated into one — into weekly per-site trend tables
//! (the paper's Fig. 5/6 shape: impact per site per week, with a
//! verdict column).
//!
//! The verdicts come from [`crate::health::classify_sites`], the exact
//! function the live daemon serves at `/health`. Because the store's
//! time axis is the cycle counter (not wall clock) and every append is
//! WAL-durable, a backtest over a recovered store reproduces the online
//! classification byte-for-byte — including across a `kill -9`.

use serde::{Deserialize, Serialize};
use timeseries::{StoreConfig, TrendConfig, TsStore};

use crate::health::{classify_sites, SiteHealth};
use crate::history::CycleRecord;

use leakprof::series as sid;

/// Backtest tuning.
#[derive(Debug, Clone)]
pub struct BacktestConfig {
    /// Cycles per "week" bucket in the report (the demo fleet runs one
    /// cycle per simulated day, so 7 matches the paper's weekly grain).
    pub week_len: u64,
    /// Trend classification tuning — use the daemon's values to
    /// reproduce its verdicts.
    pub trend: TrendConfig,
    /// Sites kept in the report (worst first); 0 = all.
    pub top: usize,
}

impl Default for BacktestConfig {
    fn default() -> Self {
        BacktestConfig {
            week_len: 7,
            trend: TrendConfig::default(),
            top: 0,
        }
    }
}

/// One site's row in the weekly table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeeklySite {
    /// Site fingerprint (rendered blocking op + location).
    pub fingerprint: String,
    /// Final verdict over the full series (`improving`/`flat`/
    /// `regressing`) — identical to the live `/health` verdict at the
    /// last recorded cycle.
    pub class: String,
    /// One-line explanation of the verdict.
    pub why: String,
    /// Newest RMS value.
    pub rms: f64,
    /// Mean RMS per week bucket, oldest first; `None` where the site
    /// has no points that week (queries never fabricate).
    pub weekly_mean_rms: Vec<Option<f64>>,
}

/// The backtest result: a weekly per-site trend table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BacktestReport {
    /// First cycle with data.
    pub first_cycle: u64,
    /// Last cycle with data.
    pub last_cycle: u64,
    /// Cycles per week bucket.
    pub week_len: u64,
    /// Number of week buckets.
    pub weeks: usize,
    /// Per-site rows, worst verdict first.
    pub sites: Vec<WeeklySite>,
    /// Sites dropped by the `top` limit.
    pub truncated: usize,
}

/// Replays a telemetry store into the weekly report.
pub fn backtest_store(ts: &TsStore, config: &BacktestConfig) -> BacktestReport {
    let week_len = config.week_len.max(1);
    let fps: Vec<String> = ts
        .series_ids()
        .into_iter()
        .filter_map(|id| id.strip_prefix("site_rms:").map(str::to_string))
        .collect();
    let verdicts: Vec<SiteHealth> = classify_sites(ts, &config.trend, &fps);
    let mut first = u64::MAX;
    let mut last = 0u64;
    for fp in &fps {
        let id = sid::site_rms_id(fp);
        if let Some(t) = ts.first_t(&id) {
            first = first.min(t);
        }
        if let Some(t) = ts.last_t(&id) {
            last = last.max(t);
        }
    }
    if first == u64::MAX {
        return BacktestReport {
            first_cycle: 0,
            last_cycle: 0,
            week_len,
            weeks: 0,
            sites: Vec::new(),
            truncated: 0,
        };
    }
    let weeks = ((last - first) / week_len + 1) as usize;
    let mut sites: Vec<WeeklySite> = verdicts
        .into_iter()
        .map(|v| {
            let id = sid::site_rms_id(&v.fingerprint);
            let weekly_mean_rms = (0..weeks)
                .map(|w| {
                    let from = first + w as u64 * week_len;
                    let to = from + week_len - 1;
                    let buckets = ts.query(&id, from, to, None);
                    let count: u64 = buckets.iter().map(|p| p.count).sum();
                    if count == 0 {
                        None
                    } else {
                        Some(buckets.iter().map(|p| p.sum).sum::<f64>() / count as f64)
                    }
                })
                .collect();
            WeeklySite {
                fingerprint: v.fingerprint,
                class: v.class,
                why: v.why,
                rms: v.rms,
                weekly_mean_rms,
            }
        })
        .collect();
    let truncated = if config.top > 0 && sites.len() > config.top {
        let t = sites.len() - config.top;
        sites.truncate(config.top);
        t
    } else {
        0
    };
    BacktestReport {
        first_cycle: first,
        last_cycle: last,
        week_len,
        weeks,
        sites,
        truncated,
    }
}

/// Migrates JSONL cycle-history records into a telemetry store: each
/// record's top sites append their RMS/total at `t = record.cycle`,
/// plus the cycle wall time. Records at or behind a series' newest
/// time are skipped (re-running a migration is idempotent). Returns
/// `(appended, skipped)`.
///
/// # Errors
///
/// IO errors from the store's WAL.
pub fn migrate_history(records: &[CycleRecord], ts: &mut TsStore) -> std::io::Result<(u64, u64)> {
    let mut appended = 0;
    let mut skipped = 0;
    let migrated_floor = ts.last_t(sid::CYCLE_WALL_MS_ID);
    for r in records {
        // The wall-ms series sees every cycle, so its newest time is
        // the high-water mark of previous migrations/live recording.
        if migrated_floor.is_some_and(|t| r.cycle <= t) {
            skipped += 1;
            continue;
        }
        let mut owned: Vec<(String, f64)> = Vec::new();
        for site in &r.top {
            owned.push((sid::site_rms_id(&site.op), site.rms));
            owned.push((sid::site_total_id(&site.op), site.total as f64));
        }
        owned.push((sid::CYCLE_WALL_MS_ID.to_string(), r.wall_ms));
        let points: Vec<(&str, f64)> = owned.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        match ts.append(r.cycle, &points) {
            Ok(()) => appended += 1,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => skipped += 1,
            Err(e) => return Err(e),
        }
    }
    Ok((appended, skipped))
}

/// Convenience: migrate history into a fresh in-memory store and
/// backtest it (`leakprofd backtest --history`).
pub fn backtest_history(
    records: &[CycleRecord],
    store: StoreConfig,
    config: &BacktestConfig,
) -> BacktestReport {
    let mut ts = TsStore::in_memory(store);
    // In-memory appends only fail on out-of-order input, which
    // migrate_history converts to skips.
    let _ = migrate_history(records, &mut ts);
    backtest_store(&ts, config)
}

/// Renders the weekly table as aligned text (stdout / report.txt).
pub fn render_table(report: &BacktestReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "backtest: cycles {}..{} ({} week(s) of {} cycles)",
        report.first_cycle, report.last_cycle, report.weeks, report.week_len
    );
    if report.sites.is_empty() {
        let _ = writeln!(out, "no site series recorded");
        return out;
    }
    let width = report
        .sites
        .iter()
        .map(|s| s.fingerprint.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let _ = write!(out, "{:<width$}  {:<10}", "site", "verdict");
    for w in 0..report.weeks {
        let _ = write!(out, "  {:>8}", format!("w{w}"));
    }
    let _ = writeln!(out);
    for s in &report.sites {
        let _ = write!(out, "{:<width$}  {:<10}", s.fingerprint, s.class);
        for mean in &s.weekly_mean_rms {
            match mean {
                Some(v) => {
                    let _ = write!(out, "  {v:>8.1}");
                }
                None => {
                    let _ = write!(out, "  {:>8}", "-");
                }
            }
        }
        let _ = writeln!(out, "    {}", s.why);
    }
    if report.truncated > 0 {
        let _ = writeln!(out, "... {} more site(s) truncated", report.truncated);
    }
    out
}

/// Renders the weekly means as CSV (`weekly_rms.csv`): one row per
/// site, one column per week; absent weeks are empty cells.
pub fn render_weekly_csv(report: &BacktestReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "site,verdict");
    for w in 0..report.weeks {
        let _ = write!(out, ",week_{w}_mean_rms");
    }
    let _ = writeln!(out);
    for s in &report.sites {
        let _ = write!(out, "{},{}", csv_field(&s.fingerprint), s.class);
        for mean in &s.weekly_mean_rms {
            match mean {
                Some(v) => {
                    let _ = write!(out, ",{v}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the final verdicts as CSV (`verdicts.csv`) — the file the
/// kill-and-recover acceptance test compares byte-for-byte.
pub fn render_verdicts_csv(report: &BacktestReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "site,verdict,rms,why");
    for s in &report.sites {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            csv_field(&s.fingerprint),
            s.class,
            s.rms,
            csv_field(&s.why)
        );
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes the three report artifacts into `out_dir` (`report.txt`,
/// `weekly_rms.csv`, `verdicts.csv`).
///
/// # Errors
///
/// IO errors creating the directory or writing the files.
pub fn write_report(report: &BacktestReport, out_dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(out_dir.join("report.txt"), render_table(report))?;
    std::fs::write(out_dir.join("weekly_rms.csv"), render_weekly_csv(report))?;
    std::fs::write(out_dir.join("verdicts.csv"), render_verdicts_csv(report))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TopSite;

    fn record(cycle: u64, sites: &[(&str, f64, u64)]) -> CycleRecord {
        CycleRecord {
            cycle,
            profiles: 3,
            failures: 0,
            retries: 0,
            wall_ms: 1.0,
            p50_us: 10,
            p99_us: 20,
            top: sites
                .iter()
                .map(|(op, rms, total)| TopSite {
                    op: op.to_string(),
                    rms: *rms,
                    total: *total,
                    max_instance: *total,
                })
                .collect(),
        }
    }

    #[test]
    fn weekly_buckets_and_verdicts() {
        // 21 cycles = 3 weeks; "leaky" ramps, "quiet" stays flat.
        let records: Vec<CycleRecord> = (1..=21)
            .map(|c| {
                record(
                    c,
                    &[("leaky", (c * 10) as f64, c * 10), ("quiet", 50.0, 50)],
                )
            })
            .collect();
        let report = backtest_history(&records, StoreConfig::default(), &BacktestConfig::default());
        assert_eq!(report.weeks, 3);
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.sites[0].fingerprint, "leaky");
        assert_eq!(report.sites[0].class, "regressing");
        assert_eq!(report.sites[1].class, "flat");
        // Week 0 covers cycles 1..=7: mean of 10,20,...,70 = 40.
        assert_eq!(report.sites[0].weekly_mean_rms[0], Some(40.0));
        assert_eq!(report.sites[1].weekly_mean_rms[2], Some(50.0));
        let table = render_table(&report);
        assert!(table.contains("leaky"), "{table}");
        assert!(table.contains("regressing"), "{table}");
        let csv = render_weekly_csv(&report);
        assert!(csv.starts_with("site,verdict,week_0_mean_rms"), "{csv}");
        assert!(csv.contains("leaky,regressing,40"), "{csv}");
    }

    #[test]
    fn migration_is_idempotent() {
        let records: Vec<CycleRecord> = (1..=10).map(|c| record(c, &[("a", 5.0, 5)])).collect();
        let mut ts = TsStore::in_memory(StoreConfig::default());
        let (appended, skipped) = migrate_history(&records, &mut ts).unwrap();
        assert_eq!((appended, skipped), (10, 0));
        let (appended, skipped) = migrate_history(&records, &mut ts).unwrap();
        assert_eq!((appended, skipped), (0, 10));
        assert_eq!(ts.query("site_rms:a", 0, u64::MAX, Some(1)).len(), 10);
    }

    #[test]
    fn empty_store_yields_empty_report() {
        let ts = TsStore::in_memory(StoreConfig::default());
        let report = backtest_store(&ts, &BacktestConfig::default());
        assert_eq!(report.weeks, 0);
        assert!(render_table(&report).contains("no site series"));
    }

    #[test]
    fn csv_fields_with_commas_are_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
