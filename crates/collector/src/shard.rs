//! Shard identity for collector daemons: slice filtering, state-dir
//! tagging, and the `/api/snapshot` wire document the merge tier folds.
//!
//! A sharded daemon is an ordinary [`crate::Daemon`] whose targets are
//! filtered to the slice a [`shardmap::ShardMap`] assigns it. Its state
//! dir is tagged with the [`ShardIdentity`] it collects under
//! (`shard.json`), so a daemon refuses to resume from state another
//! seat wrote — mixing two shards' accumulators would double-count
//! their overlap-free slices into nonsense.

use std::path::Path;

use leakprof::AccumulatorSnapshot;
use serde::{Deserialize, Serialize};
use shardmap::{ShardIdentity, ShardMap};

use crate::ledger::LedgerEntry;
use crate::scrape::ScrapeTarget;

/// Name of the shard-identity tag file inside a state dir.
pub const SHARD_TAG_FILE: &str = "shard.json";

/// Version of the [`ApiSnapshot`] wire format.
pub const API_SNAPSHOT_VERSION: u32 = 1;

/// A daemon's shard assignment: the map and this daemon's seat in it.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The fleet-wide assignment map (identical on every shard).
    pub map: ShardMap,
    /// This daemon's seat index.
    pub index: u32,
}

impl ShardSpec {
    /// This daemon's identity under the map.
    pub fn identity(&self) -> ShardIdentity {
        self.map.identity(self.index)
    }

    /// Keeps only the targets this shard owns. Deterministic: every
    /// shard evaluating the same map over the same fleet computes
    /// disjoint slices whose union is the whole fleet.
    pub fn filter_targets(&self, targets: Vec<ScrapeTarget>) -> Vec<ScrapeTarget> {
        targets
            .into_iter()
            .filter(|t| self.map.owns(self.index, &t.instance))
            .collect()
    }
}

/// The live per-shard state document served at `/api/snapshot`: what a
/// merge tier needs to fold this daemon into a fleet-wide view. The
/// accumulator snapshot is the same deterministic layout the durable
/// snapshot persists, so folding N of these is byte-equivalent to
/// folding N state dirs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiSnapshot {
    /// Wire format version; see [`API_SNAPSHOT_VERSION`].
    pub version: u32,
    /// Completed scrape cycles on this daemon.
    pub cycle: u64,
    /// Shard identity (`None` for an unsharded whole-fleet daemon).
    pub shard: Option<ShardIdentity>,
    /// Targets this daemon scrapes (its slice size).
    pub targets: usize,
    /// The streaming accumulator, in snapshot form.
    pub acc: AccumulatorSnapshot,
    /// The report ledger's entries, for fleet-wide deduplication.
    pub ledger: Vec<LedgerEntry>,
}

/// Writes the shard tag into `dir` atomically.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_tag(dir: &Path, identity: &ShardIdentity) -> std::io::Result<()> {
    let tmp = dir.join(format!("{SHARD_TAG_FILE}.tmp"));
    std::fs::write(
        &tmp,
        serde_json::to_string_pretty(identity).expect("identity serializes"),
    )?;
    std::fs::rename(&tmp, dir.join(SHARD_TAG_FILE))
}

/// Reads the shard tag from `dir`, if present.
///
/// # Errors
///
/// Propagates filesystem errors; a corrupt tag surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_tag(dir: &Path) -> std::io::Result<Option<ShardIdentity>> {
    let path = dir.join(SHARD_TAG_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)?;
    serde_json::from_str(&text).map(Some).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: corrupt shard tag: {e}", path.display()),
        )
    })
}

/// Validates that `dir` may be (re)used by a daemon with `identity`
/// (`None` = an unsharded daemon) and stamps the tag when sharded.
/// A seat mismatch is an error: resuming another shard's accumulator
/// would silently double-count its slice. A map-*version* change on
/// the same seat is fine — that is exactly what failover rebalances
/// produce.
///
/// # Errors
///
/// [`std::io::ErrorKind::InvalidInput`] on a seat mismatch (including
/// sharded state reused unsharded, and vice versa), plus IO errors.
pub fn claim_state_dir(dir: &Path, identity: Option<&ShardIdentity>) -> std::io::Result<()> {
    let existing = read_tag(dir)?;
    match (existing, identity) {
        (None, None) => Ok(()),
        (None, Some(id)) => write_tag(dir, id),
        (Some(tag), None) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "{}: state dir is tagged for shard {tag}; refusing to resume it unsharded",
                dir.display()
            ),
        )),
        (Some(tag), Some(id)) => {
            if tag.shard != id.shard || tag.of != id.of {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "{}: state dir is tagged for shard {tag}, but this daemon is shard {id}",
                        dir.display()
                    ),
                ));
            }
            if tag.map_version != id.map_version {
                write_tag(dir, id)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leakprofd-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn slices_are_disjoint_and_cover_the_fleet() {
        let addr: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        let targets: Vec<ScrapeTarget> = (0..40)
            .map(|i| ScrapeTarget {
                instance: format!("svc-{i}"),
                addr,
                path: format!("/instance/svc-{i}/debug/pprof/goroutine"),
            })
            .collect();
        let map = ShardMap::new(3);
        let mut total = 0;
        for index in 0..3 {
            let spec = ShardSpec {
                map: map.clone(),
                index,
            };
            let slice = spec.filter_targets(targets.clone());
            for t in &slice {
                assert_eq!(map.owner(&t.instance), Some(index));
            }
            total += slice.len();
        }
        assert_eq!(total, targets.len());
    }

    #[test]
    fn claim_rejects_cross_shard_reuse_but_allows_rebalance() {
        let dir = tmp_dir("claim");
        let map = ShardMap::new(3);
        let id0 = map.identity(0);
        claim_state_dir(&dir, Some(&id0)).unwrap();
        assert_eq!(read_tag(&dir).unwrap(), Some(id0.clone()));

        // Another seat may not take over this state.
        let err = claim_state_dir(&dir, Some(&map.identity(1))).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Nor may an unsharded daemon resume it.
        let err = claim_state_dir(&dir, None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

        // The same seat under a rebalanced map version is fine, and the
        // tag advances.
        let v2 = map.rebalanced(&[2]).identity(0);
        claim_state_dir(&dir, Some(&v2)).unwrap();
        assert_eq!(read_tag(&dir).unwrap().unwrap().map_version, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsharded_dirs_stay_untagged() {
        let dir = tmp_dir("untagged");
        claim_state_dir(&dir, None).unwrap();
        assert_eq!(read_tag(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
