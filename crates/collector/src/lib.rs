//! `leakprofd`: continuous, networked profile collection and streaming
//! leak analysis.
//!
//! The paper's LeakProf runs as a production service: every instance
//! exposes `/debug/pprof/goroutine`, a collection box scrapes the fleet
//! on a schedule, and analysis ranks blocking sites fleet-wide. This
//! crate reproduces that loop over real TCP on `std::net`:
//!
//! * [`http`] — minimal HTTP/1.1 server + client (no external deps).
//! * [`endpoints`] — one listener multiplexing many instances by path
//!   prefix (`/instance/<id>/debug/pprof/goroutine`), with per-instance
//!   fault injection for testing the failure paths.
//! * [`scrape`] — bounded-worker scatter-gather with per-request
//!   deadlines, deterministic retry/backoff jitter, a per-target
//!   attempt budget, and a keep-alive pool reusing one connection per
//!   target across cycles.
//! * [`ingest`] — push-mode ingestion (`POST /api/push`): bounded
//!   ingest queue with admission control, `429 Retry-After` shedding at
//!   the high watermark, newest-wins per-instance coalescing on shard
//!   absorbers, and a cycle-end fold through the exact `merge` so push
//!   and pull tiers land in one ranking.
//! * [`push`] — the pusher side: watermark trigger, capped exponential
//!   backoff honoring `Retry-After` with deterministic jitter, and the
//!   client loop behind `leakprofd push`.
//! * [`breaker`] — per-target circuit breakers quarantining dead
//!   instances, with decaying half-open probes.
//! * [`stats`] — scrape-health counters and latency histograms.
//! * [`history`] — JSONL cycle history with compaction and
//!   torn-trailing-line recovery.
//! * [`snapshot`] — durable accumulator snapshots + a write-ahead log;
//!   recovery is ranking-exact after a crash.
//! * [`ledger`] — persistent report cool-down: one page per regression
//!   episode, re-opened only when RMS beats the acknowledged level.
//! * [`static_tier`] — persistent, content-addressed criterion-2
//!   verdict cache: each source file is parsed once, reused across
//!   cycles and restarts.
//! * [`race_tier`] — content-addressed happens-before race suspects:
//!   the source tree is compiled in race mode and interpreted under
//!   vector clocks only when its fingerprint changes; cached suspects
//!   merge into the same ranking/ledger pipeline as leaks.
//! * [`health`] — per-site trend verdicts over the embedded
//!   [`timeseries`] store (the `/health` document and sparklines).
//! * [`backtest`] — offline replay of the persisted store (or a JSONL
//!   history) into weekly per-site trend tables and CSVs, using the
//!   same classification path as the live `/health`.
//! * [`adaptive`] — trend-driven scrape-interval controller: backs off
//!   while the fleet is quiet, tightens when the top-K changes or a
//!   site's RMS slope/z-score fires.
//! * [`daemon`] — the cycle loop feeding [`leakprof::FleetAccumulator`],
//!   plus the daemon's own `/metrics`, `/status`, `/trace` (per-cycle
//!   span trees from [`obs`]), `/health` (per-site trend verdicts from
//!   [`timeseries`]), `/api/series` (range queries over the embedded
//!   multi-resolution store), `/logs` (the bounded structured event
//!   ring from [`obs`]), and `/debug/self` (the daemon's own worker
//!   threads as a scrapeable goroutine-style profile).
//! * [`shard`] — shard identity for sharded collection: slice
//!   filtering by [`shardmap::ShardMap`], state-dir tagging, and the
//!   `/api/snapshot` merge document.
//! * [`merge`] — the offline merge tier (`leakprofd merge`): fold N
//!   shard state dirs into one fleet-wide state, byte-identical to a
//!   whole-fleet daemon's.
//! * [`fleet_tier`] — the live merge tier (`leakprofd fleet`): poll N
//!   shard daemons' `/api/snapshot` over keep-alive connections behind
//!   circuit breakers, mark dark slices stale, emit rebalanced shard
//!   maps on failover, and serve the merged view.
//! * [`demo`] — a real [`fleet::Fleet`] wired to a hub, for the CLI demo
//!   commands, benches, and end-to-end tests.
//! * [`chaos`] — deterministic fault-schedule driver (scrape faults,
//!   churn, kill/restart) backing `tests/chaos.rs` and `leakprofd
//!   chaos`.

#![warn(missing_docs)]

pub mod adaptive;
pub mod backtest;
pub mod breaker;
pub mod chaos;
pub mod daemon;
pub mod demo;
pub mod endpoints;
pub mod flame;
pub mod fleet_tier;
pub mod health;
pub mod history;
pub mod http;
pub mod ingest;
pub mod ledger;
pub mod merge;
pub mod push;
pub mod race_tier;
pub mod scrape;
pub mod shard;
pub mod snapshot;
pub mod static_tier;
pub mod stats;

pub use adaptive::{AdaptiveConfig, AdaptiveController, AdaptiveStatus, Decision, Direction};
pub use backtest::{
    backtest_history, backtest_store, migrate_history, render_table, render_verdicts_csv,
    render_weekly_csv, write_report, BacktestConfig, BacktestReport, WeeklySite,
};
pub use breaker::{BreakerConfig, BreakerSet, BreakerState, BreakerSummary, QuarantinedTarget};
pub use chaos::{run_chaos, ChaosConfig, ChaosFault, ChaosOutcome, ChaosPlan, ChaosPlanConfig};
pub use daemon::{
    daemon_routes, serve_daemon_endpoints, serve_daemon_endpoints_with, Daemon, DaemonConfig,
    DaemonStatus, SeriesResponse, SELF_INSTANCE,
};
pub use demo::DemoFleet;
pub use endpoints::{Fault, ProfileHub};
pub use flame::{build_flame, flame_verdicts, frame_label, live_weight, self_flame, serve_flame};
// The flame trie itself lives in dependency-free `obs` (like the
// histogram); re-exported so collector callers see one flame API.
pub use fleet_tier::{
    fleet_routes, serve_fleet_endpoints, FleetAggregator, FleetConfig, FleetStatus, PeerStatus,
};
pub use health::{classify_sites, sparkline, FleetHealth, SiteHealth, SPARK_POINTS};
pub use history::{load_jsonl, CycleRecord, HistoryLog, JsonlLoad, TopSite};
pub use http::{
    http_get, http_get_with, http_post, http_post_with, HttpError, HttpServer, Request, Response,
    ResponseFault, ResponseMeta, ServerOptions,
};
pub use ingest::{dedupe_newest_wins, AbsorbedProfile, IngestConfig, IngestSummary, IngestTier};
pub use ledger::{
    CycleOutcome, EpisodeState, LedgerConfig, LedgerEntry, LedgerSummary, ReportLedger,
    LEDGER_VERSION,
};
pub use merge::{
    load_shard_state, merge_state_dirs, merge_states, write_merged, MergeConfig, MergedFleet,
    ShardState, ShardSummary,
};
pub use obs::{FlameGraph, FlameNode, FlameOptions};
pub use push::{
    backoff_delay, backoff_schedule, PushClient, PushConfig, PushError, PushReceipt, PushStats,
    WatermarkTrigger, PUSH_PATH,
};
pub use race_tier::{RaceTier, RaceTierConfig, RaceTierStats, RACE_CACHE_VERSION};
pub use scrape::{
    CycleReport, KeepaliveSummary, ScrapeConfig, ScrapeError, ScrapeErrorKind, ScrapeTarget,
    Scraper,
};
pub use shard::{
    claim_state_dir, read_tag, write_tag, ApiSnapshot, ShardSpec, API_SNAPSHOT_VERSION,
    SHARD_TAG_FILE,
};
pub use snapshot::{DaemonSnapshot, Recovery, SnapshotStore, WalEntry, DAEMON_SNAPSHOT_VERSION};
pub use static_tier::{StaticTier, StaticTierConfig, StaticTierStats, VERDICT_CACHE_VERSION};
pub use stats::{CycleStats, HealthCounters, LatencyHistogram, PromText};
