//! `leakprofd`: continuous, networked profile collection and streaming
//! leak analysis.
//!
//! The paper's LeakProf runs as a production service: every instance
//! exposes `/debug/pprof/goroutine`, a collection box scrapes the fleet
//! on a schedule, and analysis ranks blocking sites fleet-wide. This
//! crate reproduces that loop over real TCP on `std::net`:
//!
//! * [`http`] — minimal HTTP/1.1 server + client (no external deps).
//! * [`endpoints`] — one listener multiplexing many instances by path
//!   prefix (`/instance/<id>/debug/pprof/goroutine`), with per-instance
//!   fault injection for testing the failure paths.
//! * [`scrape`] — bounded-worker scatter-gather with per-request
//!   deadlines and deterministic retry/backoff jitter.
//! * [`stats`] — scrape-health counters and latency histograms.
//! * [`history`] — JSONL cycle history with compaction.
//! * [`daemon`] — the cycle loop feeding [`leakprof::FleetAccumulator`],
//!   plus the daemon's own `/metrics` and `/status`.
//! * [`demo`] — a real [`fleet::Fleet`] wired to a hub, for the CLI demo
//!   commands, benches, and end-to-end tests.

#![warn(missing_docs)]

pub mod daemon;
pub mod demo;
pub mod endpoints;
pub mod history;
pub mod http;
pub mod scrape;
pub mod stats;

pub use daemon::{serve_daemon_endpoints, Daemon, DaemonConfig, DaemonStatus};
pub use demo::DemoFleet;
pub use endpoints::{Fault, ProfileHub};
pub use history::{CycleRecord, HistoryLog, TopSite};
pub use http::{http_get, HttpError, HttpServer, Request, Response, ResponseFault};
pub use scrape::{CycleReport, ScrapeConfig, ScrapeError, ScrapeErrorKind, ScrapeTarget, Scraper};
pub use stats::{CycleStats, HealthCounters, LatencyHistogram};
