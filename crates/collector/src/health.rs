//! Fleet health verdicts: per-site trend classification over the
//! embedded time-series store, served at `/health` and rendered by
//! `leakprofd top` and `leakprofd backtest`.

use serde::{Deserialize, Serialize};
use timeseries::{analyze_trend, TrendClass, TrendConfig, TsStore};

use crate::adaptive::AdaptiveStatus;

/// How many raw points feed each site's sparkline (and the trend
/// window lives inside this tail).
pub const SPARK_POINTS: usize = 16;

/// One site's health verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteHealth {
    /// The site fingerprint (rendered blocking op + location) — the
    /// same string the report ledger deduplicates on.
    pub fingerprint: String,
    /// `improving` / `flat` / `regressing`.
    pub class: String,
    /// Per-step RMS slope relative to the mean level.
    pub rel_slope: f64,
    /// Z-score of the newest RMS point against the prior window.
    pub z: f64,
    /// Whether the newest point is a step-change anomaly.
    pub anomaly: bool,
    /// Newest RMS value.
    pub rms: f64,
    /// Last [`SPARK_POINTS`] raw RMS values, oldest first (sparkline
    /// data for `leakprofd top`).
    pub spark: Vec<f64>,
    /// Why the verdict: a one-line human explanation.
    pub why: String,
}

/// The `/health` document: every tracked site's verdict plus the
/// adaptive scrape-interval state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Cycle the verdicts were computed at.
    pub cycle: u64,
    /// Per-site verdicts, worst first (regressing, then flat, then
    /// improving; ties by newest RMS descending).
    pub sites: Vec<SiteHealth>,
    /// Adaptive interval controller state.
    pub adaptive: AdaptiveStatus,
}

/// Classifies every fingerprint's RMS series in the store. This is the
/// single classification path: the live daemon and the offline
/// `backtest` both call it, which is what makes backtest verdicts
/// reproduce the online ones exactly.
pub fn classify_sites(
    ts: &TsStore,
    trend: &TrendConfig,
    fingerprints: &[String],
) -> Vec<SiteHealth> {
    let mut sites: Vec<SiteHealth> = fingerprints
        .iter()
        .map(|fp| {
            let points = ts.recent(&leakprof::series::site_rms_id(fp), SPARK_POINTS);
            let t = analyze_trend(&points, trend);
            let why = match t.class {
                TrendClass::Regressing if t.anomaly => format!(
                    "step change: newest RMS {:.1} is {:.1} sigma above the prior window",
                    t.last, t.z
                ),
                TrendClass::Regressing => format!(
                    "RMS rising {:+.1}%/cycle over the last {} points",
                    100.0 * t.rel_slope,
                    t.points
                ),
                TrendClass::Improving => format!(
                    "RMS falling {:+.1}%/cycle over the last {} points",
                    100.0 * t.rel_slope,
                    t.points
                ),
                TrendClass::Flat => {
                    format!("stable around RMS {:.1} ({} points)", t.mean, t.points)
                }
            };
            SiteHealth {
                fingerprint: fp.clone(),
                class: t.class.label().to_string(),
                rel_slope: t.rel_slope,
                z: t.z,
                anomaly: t.anomaly,
                rms: t.last,
                spark: points.iter().map(|(_, v)| *v).collect(),
                why,
            }
        })
        .collect();
    sites.sort_by(|a, b| {
        rank(&a.class)
            .cmp(&rank(&b.class))
            .then(
                b.rms
                    .partial_cmp(&a.rms)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.fingerprint.cmp(&b.fingerprint))
    });
    sites
}

fn rank(class: &str) -> u8 {
    match class {
        "regressing" => 0,
        "flat" => 1,
        _ => 2,
    }
}

/// Renders sparkline data as unicode block characters, scaled to the
/// slice's own min..max (a flat series renders as a low bar).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|v| {
            if span <= f64::EPSILON {
                BARS[0]
            } else {
                let idx = (((v - min) / span) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::StoreConfig;

    #[test]
    fn regressing_sites_sort_first_and_explain_themselves() {
        let mut ts = TsStore::in_memory(StoreConfig::default());
        for t in 1..=12u64 {
            ts.append(
                t,
                &[
                    ("site_rms:leaky", (t * 10) as f64),
                    ("site_rms:quiet", 50.0),
                ],
            )
            .unwrap();
        }
        let sites = classify_sites(
            &ts,
            &TrendConfig::default(),
            &["quiet".into(), "leaky".into()],
        );
        assert_eq!(sites[0].fingerprint, "leaky");
        assert_eq!(sites[0].class, "regressing");
        assert!(sites[0].why.contains("rising"), "{}", sites[0].why);
        assert_eq!(sites[1].class, "flat");
        assert_eq!(sites[1].spark.len(), 12);
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        let s = sparkline(&[0.0, 50.0, 100.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }
}
