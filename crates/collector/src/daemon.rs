//! The `leakprofd` daemon core: scrape cycles feeding a streaming
//! LeakProf accumulator, with history, health counters, and its own
//! `/metrics` + `/status` endpoints.
//!
//! With a `state_dir` configured the daemon is **crash-safe**: every
//! cycle's profiles hit a write-ahead log before ingestion, the
//! accumulator is checkpointed every `snapshot_every` cycles, and
//! startup recovers snapshot + WAL to the exact pre-crash analysis state
//! (see [`crate::snapshot`]). Scraping runs behind per-target circuit
//! breakers ([`crate::breaker`]) and reporting behind a persistent
//! cool-down ledger ([`crate::ledger`]).

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use leakprof::series as sid;
use leakprof::{FleetAccumulator, LeakProf, Report};
use serde::{Deserialize, Serialize};
use timeseries::{StoreConfig, TrendConfig, TsStore};

use obs::{StageSummary, TraceConfig, TraceSnapshot, Tracer, WorkerBoard};

use crate::adaptive::{AdaptiveConfig, AdaptiveController, AdaptiveStatus, Direction};
use crate::breaker::{BreakerConfig, BreakerSet, BreakerSummary};
use crate::endpoints::ProfileHub;
use crate::health::{classify_sites, FleetHealth};
use crate::history::{CycleRecord, HistoryLog, TopSite};
use crate::http::{HttpServer, Request, Response, ServerOptions};
use crate::ingest::{dedupe_newest_wins, AbsorbedProfile, IngestConfig, IngestSummary, IngestTier};
use crate::ledger::{CycleOutcome, LedgerConfig, LedgerSummary, ReportLedger};
use crate::race_tier::{RaceTier, RaceTierConfig, RaceTierStats};
use crate::scrape::{CycleReport, KeepaliveSummary, ScrapeConfig, ScrapeTarget, Scraper};
use crate::shard::{claim_state_dir, ApiSnapshot, ShardSpec, API_SNAPSHOT_VERSION};
use crate::snapshot::{DaemonSnapshot, SnapshotStore, WalEntry, DAEMON_SNAPSHOT_VERSION};
use crate::static_tier::{StaticTier, StaticTierConfig, StaticTierStats};
use crate::stats::{HealthCounters, PromText};
use shardmap::ShardIdentity;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Scraper tuning.
    pub scrape: ScrapeConfig,
    /// Where to persist cycle history (`None` disables persistence).
    pub history_path: Option<std::path::PathBuf>,
    /// Records retained across history compactions.
    pub history_keep: usize,
    /// Directory for durable state (snapshot + WAL + ledger). `None`
    /// runs fully in-memory, as before.
    pub state_dir: Option<std::path::PathBuf>,
    /// Checkpoint the accumulator every this many cycles (bounding both
    /// WAL growth and replay work after a crash).
    pub snapshot_every: u64,
    /// Per-target circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Report cool-down tuning.
    pub ledger: LedgerConfig,
    /// Static analysis tier (criterion-2 verdict cache over a source
    /// tree). `None` leaves the AST filter off, as before.
    pub static_tier: Option<StaticTierConfig>,
    /// Race detection tier (happens-before suspects over a source
    /// tree, cached by tree fingerprint). `None` disables race
    /// detection, as before.
    pub race_tier: Option<RaceTierConfig>,
    /// Cycle tracing (span ring capacity, retained cycles, on/off).
    pub trace: TraceConfig,
    /// Structured event log (ring capacity, retained entries, on/off).
    /// Replaces ad-hoc stderr prints; served at `GET /logs`.
    pub events: obs::EventConfig,
    /// Multi-resolution telemetry store layout. Persisted under
    /// `<state_dir>/ts` when a state dir is configured, else in-memory.
    pub ts: StoreConfig,
    /// Fleet telemetry recording + trend classification on/off. Off
    /// skips [`observe_fleet`](Daemon) entirely — `/health` stays
    /// empty and the adaptive controller never observes a cycle; the
    /// `ts_ingest` bench uses this to price the telemetry path.
    pub telemetry: bool,
    /// Trend/anomaly detection tuning for `/health` verdicts.
    pub trend: TrendConfig,
    /// Adaptive scrape-interval controller tuning (disabled by
    /// default; the serve loop then sleeps a fixed interval).
    pub adaptive: AdaptiveConfig,
    /// Shard assignment: scrape only the slice of the fleet a
    /// [`shardmap::ShardMap`] assigns this daemon, and tag the state
    /// dir with the shard identity. `None` scrapes the whole fleet.
    pub shard: Option<ShardSpec>,
    /// Push-mode ingestion (`POST /api/push`): bounded queue, admission
    /// control, and shard absorbers. `None` runs pull-only, as before.
    pub ingest: Option<IngestConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            scrape: ScrapeConfig::default(),
            history_path: None,
            history_keep: 0,
            state_dir: None,
            snapshot_every: 5,
            breaker: BreakerConfig::default(),
            ledger: LedgerConfig::default(),
            static_tier: None,
            race_tier: None,
            trace: TraceConfig::default(),
            events: obs::EventConfig::default(),
            ts: StoreConfig::default(),
            telemetry: true,
            trend: TrendConfig::default(),
            adaptive: AdaptiveConfig::default(),
            shard: None,
            ingest: None,
        }
    }
}

/// Background deallocator for spent per-cycle buffers. Dropping tens
/// of thousands of parsed profiles is real allocator work — around
/// 100ms for a 10K-instance cycle — that would otherwise be charged to
/// the cycle that already finished consuming them. The daemon hands
/// the buffers over and moves on; the frees overlap the inter-cycle
/// idle. If the thread cannot start, `retire` degrades to an inline
/// drop.
struct Reaper {
    tx: Option<std::sync::mpsc::Sender<Vec<AbsorbedProfile>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reaper {
    fn start() -> Reaper {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<AbsorbedProfile>>();
        match std::thread::Builder::new()
            .name("leakprofd-reaper".into())
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    // Wait out the tail of the cycle that handed this
                    // batch over: on a saturated box the frees would
                    // otherwise compete with the cycle's own last
                    // milliseconds. Anything queued behind it is
                    // already stale — drain without pausing again.
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    drop(batch);
                    while rx.try_recv().is_ok() {}
                }
            }) {
            Ok(handle) => Reaper {
                tx: Some(tx),
                handle: Some(handle),
            },
            Err(_) => Reaper {
                tx: None,
                handle: None,
            },
        }
    }

    /// Queues `batch` for off-thread deallocation (inline if the reaper
    /// thread is gone).
    fn retire(&self, batch: Vec<AbsorbedProfile>) {
        if batch.is_empty() {
            return;
        }
        if let Some(tx) = &self.tx {
            // A failed send returns the batch and it drops inline —
            // correctness unaffected, only cycle latency.
            let _ = tx.send(batch);
        }
    }
}

impl Drop for Reaper {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A machine-readable status snapshot (served at `/status` and printed
/// by `leakprofd status`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Completed scrape cycles.
    pub cycles: u64,
    /// Registered scrape targets.
    pub targets: usize,
    /// Profiles ingested into the accumulator over the daemon lifetime.
    pub profiles_ingested: usize,
    /// All-time scrape success rate in `[0,1]`.
    pub success_rate: f64,
    /// All-time p50 scrape latency (µs).
    pub p50_us: u64,
    /// All-time p99 scrape latency (µs).
    pub p99_us: u64,
    /// Current ranked top sites.
    pub top: Vec<TopSite>,
    /// Cycle the daemon recovered to at startup (0 for a fresh start).
    pub recovered_cycle: u64,
    /// Circuit-breaker state across targets.
    pub breakers: BreakerSummary,
    /// Report cool-down ledger counts.
    pub ledger: LedgerSummary,
    /// Static-tier cache counters (`None` when the tier is disabled).
    pub static_tier: Option<StaticTierStats>,
    /// Race-tier cache counters (`None` when the tier is disabled).
    pub race_tier: Option<RaceTierStats>,
    /// Per-stage latency summaries from the cycle tracer.
    pub stages: Vec<StageSummary>,
    /// Spans recorded into the trace ring over the daemon lifetime.
    pub spans_recorded: u64,
    /// Spans dropped because the trace ring was full.
    pub spans_dropped: u64,
    /// Scraper keep-alive pool counters.
    pub keepalive: KeepaliveSummary,
    /// Adaptive scrape-interval controller state.
    pub adaptive: AdaptiveStatus,
    /// Series tracked by the telemetry store.
    pub ts_series: usize,
    /// Shard identity (`None` for an unsharded whole-fleet daemon).
    pub shard: Option<ShardIdentity>,
    /// Push-ingest tier counters (`None` when push mode is disabled).
    pub ingest: Option<IngestSummary>,
}

/// The collection daemon: owns the scraper, the streaming analysis
/// state, the durability machinery, and the history log.
pub struct Daemon {
    lp: LeakProf,
    acc: FleetAccumulator,
    scraper: Scraper,
    targets: Vec<ScrapeTarget>,
    history: Option<HistoryLog>,
    health: HealthCounters,
    last_report: Option<Report>,
    breakers: BreakerSet,
    ledger: ReportLedger,
    store: Option<SnapshotStore>,
    snapshot_every: u64,
    recovered_cycle: u64,
    last_outcome: Option<CycleOutcome>,
    static_tier: Option<StaticTier>,
    race_tier: Option<RaceTier>,
    tracer: Tracer,
    events: obs::EventLog,
    board: WorkerBoard,
    ts: TsStore,
    telemetry: bool,
    trend: TrendConfig,
    controller: AdaptiveController,
    last_health: Option<FleetHealth>,
    shard: Option<ShardIdentity>,
    ingest: Option<Arc<IngestTier>>,
    last_shed_total: u64,
    reaper: Reaper,
}

impl Daemon {
    /// Creates a daemon scraping `targets` and analyzing with `lp`. With
    /// a `state_dir` configured, recovers any snapshot + WAL left by a
    /// previous run — the accumulator, health counters, and report
    /// ledger all resume exactly where the last process stopped.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the history log or state directory cannot
    /// be opened, or if durable state exists but is unreadable
    /// (mid-file corruption, unsupported version).
    pub fn new(
        config: DaemonConfig,
        mut lp: LeakProf,
        targets: Vec<ScrapeTarget>,
    ) -> std::io::Result<Daemon> {
        // Shard filtering first: everything downstream (scraping, the
        // accumulator, the state dir) only ever sees this slice.
        let shard = config.shard.as_ref().map(ShardSpec::identity);
        let targets = match &config.shard {
            Some(spec) => spec.filter_targets(targets),
            None => targets,
        };
        if let Some(dir) = &config.state_dir {
            std::fs::create_dir_all(dir)?;
            claim_state_dir(dir, shard.as_ref())?;
        }
        let tracer = Tracer::new(&config.trace);
        let service = match &shard {
            Some(id) => format!("leakprofd shard {}/{}", id.shard, id.of),
            None => "leakprofd".to_string(),
        };
        tracer.set_service(&service, env!("CARGO_PKG_VERSION"));
        let events = obs::EventLog::new(config.events.clone());
        let board = WorkerBoard::new();
        let history = match &config.history_path {
            Some(path) => Some(HistoryLog::open(path, config.history_keep.max(1))?),
            None => None,
        };
        let mut acc = FleetAccumulator::new();
        let mut health = HealthCounters::default();
        let mut recovered_cycle = 0;
        let (store, mut ledger) = match &config.state_dir {
            Some(dir) => {
                let mut store = SnapshotStore::open(dir)?;
                store.set_tracer(tracer.clone());
                let recovery = store.recover()?;
                if let Some(e) = &recovery.dropped_trailing {
                    events.warn(
                        "daemon",
                        format!(
                            "wal {}: discarded torn trailing entry (crash mid-append?): {e}",
                            store.wal_path().display()
                        ),
                    );
                }
                if let Some(snap) = &recovery.snapshot {
                    acc = FleetAccumulator::from_snapshot(&snap.acc)
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                    health = snap.health.clone();
                }
                for entry in &recovery.wal {
                    for p in &entry.profiles {
                        acc.ingest(p);
                    }
                    health.absorb(&entry.stats);
                }
                recovered_cycle = recovery.last_cycle();
                let ledger = ReportLedger::open(dir.join("ledger.json"), config.ledger.clone())?;
                (Some(store), ledger)
            }
            None => (None, ReportLedger::new(config.ledger.clone())),
        };
        ledger.set_tracer(tracer.clone());
        let static_tier = match config.static_tier {
            Some(tier_config) => {
                let mut tier = StaticTier::open(tier_config)?;
                tier.set_tracer(tracer.clone());
                // First sync: parses exactly the files the persisted
                // cache does not already cover at their current bytes.
                lp.install_verdicts(tier.sync()?);
                lp.set_ast_filter(true);
                Some(tier)
            }
            None => None,
        };
        let race_tier = match config.race_tier {
            Some(tier_config) => Some(RaceTier::open(tier_config)?),
            None => None,
        };
        // The telemetry store shares the state dir (subdirectory `ts`)
        // and has its own WAL, so its recovery is independent of the
        // accumulator's: a crash loses at most the in-flight batch.
        let ts = match &config.state_dir {
            Some(dir) => TsStore::open(dir.join("ts"), config.ts.clone())?,
            None => TsStore::in_memory(config.ts.clone()),
        };
        let mut scraper = Scraper::new(config.scrape);
        scraper.set_tracer(tracer.clone());
        scraper.set_worker_board(board.clone());
        scraper.set_events(events.clone());
        let ingest = config.ingest.map(|c| {
            let mut tier = IngestTier::start(c);
            tier.set_events(events.clone());
            Arc::new(tier)
        });
        Ok(Daemon {
            lp,
            acc,
            scraper,
            targets,
            history,
            health,
            last_report: None,
            breakers: BreakerSet::new(config.breaker),
            ledger,
            store,
            snapshot_every: config.snapshot_every.max(1),
            recovered_cycle,
            last_outcome: None,
            static_tier,
            race_tier,
            tracer,
            events,
            board,
            ts,
            telemetry: config.telemetry,
            trend: config.trend,
            controller: AdaptiveController::new(config.adaptive),
            last_health: None,
            shard,
            ingest,
            last_shed_total: 0,
            reaper: Reaper::start(),
        })
    }

    /// The push-ingest tier, when configured (`serve --push`). The
    /// `Arc` lets the HTTP layer answer `POST /api/push` without the
    /// daemon mutex — admission control must keep working while a cycle
    /// holds the daemon locked.
    pub fn ingest_tier(&self) -> Option<&Arc<IngestTier>> {
        self.ingest.as_ref()
    }

    /// This daemon's shard identity (`None` when unsharded).
    pub fn shard(&self) -> Option<&ShardIdentity> {
        self.shard.as_ref()
    }

    /// Builds the live merge-tier document served at `/api/snapshot`:
    /// the accumulator snapshot plus the ledger entries, tagged with
    /// the shard identity. Deterministic for a given analysis state, so
    /// a fleet aggregator folding these matches `leakprofd merge` over
    /// the same daemons' state dirs byte for byte.
    pub fn api_snapshot(&self) -> ApiSnapshot {
        ApiSnapshot {
            version: API_SNAPSHOT_VERSION,
            cycle: self.health.cycles,
            shard: self.shard.clone(),
            targets: self.targets.len(),
            acc: self.acc.snapshot(),
            ledger: self.ledger.entries().cloned().collect(),
        }
    }

    /// Registered scrape targets.
    pub fn targets(&self) -> &[ScrapeTarget] {
        &self.targets
    }

    /// Runs one scrape → WAL → ingest → rank → ledger cycle and returns
    /// the raw scrape report; the analysis result is available via
    /// [`Daemon::last_report`] and the paging decision via
    /// [`Daemon::last_outcome`]. Scrape failures degrade coverage (and
    /// feed the circuit breakers) but never abort the cycle; durability
    /// failures are logged and degrade to in-memory operation.
    pub fn run_cycle(&mut self) -> CycleReport {
        let cycle = self.health.cycles + 1;
        // Open the cycle's trace context: a remote context adopted from
        // the fleet poller (via `/api/snapshot`'s traceparent header)
        // parents this cycle under the fleet's trace; otherwise the
        // daemon mints its own root.
        let ctx = self.tracer.begin_cycle();
        // Root span for the whole cycle; made the ambient parent so
        // every stage span started on this thread nests under it.
        let mut root = self.tracer.start(obs::stage::CYCLE, "");
        root.attr("cycle", cycle);
        self.tracer.set_ambient(root.id());
        self.events.set_context(ctx.map(|c| c.trace_id), root.id());
        let report = self
            .scraper
            .scrape_cycle_gated(&self.targets, &mut self.breakers);
        // Push tier: drain the shard accumulators' coalesced profiles
        // and merge them with the pull tier's — newest per instance
        // wins — before anything durable happens, so WAL, ingest, and
        // telemetry all see one combined set.
        let mut shed_delta = 0u64;
        let profiles = match &self.ingest {
            Some(tier) => {
                let mut span = self.tracer.start(obs::stage::PUSH, "");
                let pushed = tier.drain_sorted();
                let s = tier.summary();
                span.attr("pushed", pushed.len());
                span.attr("push_total", s.push_total);
                span.attr("admitted_total", s.admitted_total);
                span.attr("shed_total", s.shed_total);
                span.attr("queue_depth", s.queue_depth);
                shed_delta = s.shed_total.saturating_sub(self.last_shed_total);
                self.last_shed_total = s.shed_total;
                if shed_delta > 0 {
                    self.events.warn(
                        "ingest",
                        format!("shed {shed_delta} pushes since last cycle (admission control)"),
                    );
                }
                dedupe_newest_wins(report.profiles.clone(), pushed)
            }
            None => report
                .profiles
                .iter()
                .cloned()
                .map(AbsorbedProfile::raw)
                .collect(),
        };
        // WAL before ingest: a crash from here on replays the cycle
        // instead of losing it.
        if let Some(store) = &self.store {
            let entry = WalEntry {
                cycle,
                profiles: profiles.iter().map(|a| a.profile.clone()).collect(),
                stats: report.stats.clone(),
            };
            if let Err(e) = store.append_wal(&entry) {
                self.events
                    .error("daemon", format!("wal append failed: {e}"));
            }
        }
        {
            let mut span = self.tracer.start(obs::stage::INGEST, "");
            span.attr("profiles", profiles.len());
            // Push-absorbed profiles arrive pre-analyzed (the absorbers
            // already walked their stacks off the cycle path) and cost
            // only the count merge here; pull-scraped profiles pay the
            // full `ingest`, which is the same analysis plus the same
            // merge — so mixed cycles land byte-identically to a
            // pull-only daemon over the same final profiles.
            let mut pre_analyzed = 0usize;
            for a in &profiles {
                match &a.sites {
                    Some(sites) => {
                        self.acc.merge_profile_sites(
                            &a.profile.instance,
                            sites,
                            a.profile.len() as u64,
                        );
                        pre_analyzed += 1;
                    }
                    None => self.acc.ingest(&a.profile),
                }
            }
            span.attr("pre_analyzed", pre_analyzed);
        }
        // Re-sync the verdict cache before ranking: changed files are
        // re-analyzed once, unchanged files cost a fingerprint check.
        // Sync failures degrade to last cycle's verdicts, never abort.
        if let Some(tier) = &mut self.static_tier {
            match tier.sync() {
                Ok(verdicts) => self.lp.install_verdicts(verdicts),
                Err(e) => self
                    .events
                    .error("daemon", format!("static-tier sync failed: {e}")),
            }
        }
        let mut analysis = {
            let mut span = self.tracer.start(obs::stage::ANALYZE, "");
            let analysis = self.lp.report_from_accumulator(&self.acc);
            span.attr("suspects", analysis.suspects.len());
            analysis
        };
        // Merge race suspects BEFORE the ledger applies: races ride the
        // same fingerprint → ranking → ledger → /health pipeline as
        // leaks. A warm tree costs one directory fingerprint; sync
        // failures degrade to a leak-only cycle, never abort.
        if let Some(tier) = &mut self.race_tier {
            match tier.sync() {
                Ok(races) => {
                    analysis.suspects.extend(
                        races
                            .into_iter()
                            .map(|stats| leakprof::report::Suspect { stats, owner: None }),
                    );
                    analysis.suspects.sort_by(|a, b| {
                        b.stats
                            .rms
                            .partial_cmp(&a.stats.rms)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.stats.op.to_string().cmp(&b.stats.op.to_string()))
                    });
                }
                Err(e) => self
                    .events
                    .error("daemon", format!("race-tier sync failed: {e}")),
            }
        }
        self.health.absorb(&report.stats);
        match self.ledger.apply(cycle, &analysis.suspects) {
            Ok(outcome) => self.last_outcome = Some(outcome),
            Err(e) => self
                .events
                .error("daemon", format!("ledger save failed: {e}")),
        }
        if let Some(history) = &mut self.history {
            let mut span = self.tracer.start(obs::stage::HISTORY, "");
            let record = CycleRecord {
                cycle: self.health.cycles,
                profiles: report.stats.succeeded,
                failures: report.stats.failed,
                retries: report.stats.retries,
                wall_ms: report.stats.wall_ms,
                p50_us: report.stats.latency.p50_us(),
                p99_us: report.stats.latency.p99_us(),
                top: top_sites(&analysis),
            };
            span.attr("top", record.top.len());
            if let Err(e) = history.append(&record) {
                self.events
                    .error("daemon", format!("history append failed: {e}"));
            }
        }
        if self.telemetry {
            self.observe_fleet(cycle, &report, &profiles, &analysis);
        }
        let profile_count = profiles.len();
        // Everything that needed the profiles has run; free them off
        // the cycle path (see [`Reaper`]).
        self.reaper.retire(profiles);
        self.last_report = Some(analysis);
        if cycle.is_multiple_of(self.snapshot_every) {
            if let Err(e) = self.commit_snapshot() {
                self.events
                    .error("daemon", format!("snapshot commit failed: {e}"));
            }
            if let Err(e) = self.ts.flush() {
                self.events
                    .error("daemon", format!("telemetry flush failed: {e}"));
            }
        }
        // The root guard must record (drop) before the cycle is
        // finalized, or the cycle span would land in the next trace.
        root.attr("profiles", profile_count);
        self.tracer.set_ambient(0);
        drop(root);
        // Tail-sampling: a flagged cycle (scrape failures or admission
        // sheds) always keeps its full span tree; healthy cycles may be
        // reduced to a skeleton when tail sampling is enabled.
        let flagged = report.stats.failed > 0 || shed_delta > 0;
        self.tracer.finish_cycle_flagged(cycle, flagged);
        self.events.set_context(None, 0);
        report
    }

    /// Records this cycle's telemetry into the multi-resolution store
    /// (site RMS/total, per-instance blocked counts, stage p50s, cycle
    /// wall time), classifies every top site's trend, and feeds the
    /// adaptive interval controller. The time axis is the **cycle
    /// counter**, not wall clock, so replaying the persisted store
    /// offline (`leakprofd backtest`) reproduces these verdicts
    /// exactly. Store IO failures degrade to in-memory recording and
    /// never abort the cycle.
    fn observe_fleet(
        &mut self,
        cycle: u64,
        report: &CycleReport,
        profiles: &[AbsorbedProfile],
        analysis: &Report,
    ) {
        {
            let mut span = self.tracer.start(obs::stage::TS_APPEND, "");
            let mut owned: Vec<(String, f64)> = Vec::new();
            for s in &analysis.suspects {
                let fp = sid::site_fingerprint(&s.stats);
                owned.push((sid::site_rms_id(&fp), s.stats.rms));
                owned.push((sid::site_total_id(&fp), s.stats.total as f64));
                owned.push((
                    sid::site_blocked_id(&fp),
                    self.acc.raw_site_total(&s.stats.op) as f64,
                ));
            }
            for a in profiles {
                owned.push((
                    sid::instance_blocked_id(&a.profile.instance),
                    a.profile.goroutines.len() as f64,
                ));
            }
            for s in self.tracer.stage_summaries() {
                owned.push((sid::stage_p50_id(&s.stage), s.p50_us as f64));
            }
            owned.push((sid::CYCLE_WALL_MS_ID.to_string(), report.stats.wall_ms));
            let points: Vec<(&str, f64)> = owned.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            span.attr("points", points.len());
            if let Err(e) = self.ts.append(cycle, &points) {
                self.events
                    .error("daemon", format!("telemetry append failed: {e}"));
            }
        }
        let mut span = self.tracer.start(obs::stage::TREND, "");
        let fps: Vec<String> = analysis
            .suspects
            .iter()
            .map(|s| sid::site_fingerprint(&s.stats))
            .collect();
        let sites = classify_sites(&self.ts, &self.trend, &fps);
        let topk: BTreeSet<String> = fps.into_iter().collect();
        let regressing: Vec<String> = sites
            .iter()
            .filter(|s| s.class == "regressing")
            .map(|s| s.fingerprint.clone())
            .collect();
        // A downward step (improving) is good news; only non-improving
        // anomalies tighten the interval.
        let anomalies: Vec<String> = sites
            .iter()
            .filter(|s| s.anomaly && s.class != "improving")
            .map(|s| s.fingerprint.clone())
            .collect();
        let decision = self
            .controller
            .observe(cycle, &topk, &regressing, &anomalies);
        span.attr("sites", sites.len());
        span.attr("regressing", regressing.len());
        span.attr("interval_ms", decision.interval_ms);
        span.attr(
            "decision",
            match decision.direction {
                Direction::Tighten => "tighten",
                Direction::BackOff => "back_off",
                Direction::Hold => "hold",
            },
        );
        span.attr("reason", &decision.reason);
        if let Err(e) = self
            .ts
            .append(cycle, &[(sid::INTERVAL_MS_ID, decision.interval_ms as f64)])
        {
            self.events
                .error("daemon", format!("telemetry append failed: {e}"));
        }
        self.last_health = Some(FleetHealth {
            cycle,
            sites,
            adaptive: self.controller.status(),
        });
    }

    /// Checkpoints the accumulator + health counters and truncates the
    /// WAL. Called automatically every `snapshot_every` cycles; callable
    /// explicitly for a clean shutdown. No-op without a state dir.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the snapshot cannot be written.
    pub fn commit_snapshot(&self) -> std::io::Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        store.commit_snapshot(&DaemonSnapshot {
            version: DAEMON_SNAPSHOT_VERSION,
            cycle: self.health.cycles,
            acc: self.acc.snapshot(),
            health: self.health.clone(),
        })
    }

    /// The cycle the daemon recovered to at startup (0 = fresh start).
    pub fn recovered_cycle(&self) -> u64 {
        self.recovered_cycle
    }

    /// The paging decision of the most recent cycle.
    pub fn last_outcome(&self) -> Option<&CycleOutcome> {
        self.last_outcome.as_ref()
    }

    /// The report cool-down ledger.
    pub fn ledger(&self) -> &ReportLedger {
        &self.ledger
    }

    /// Mutable ledger access (operator acknowledgements).
    pub fn ledger_mut(&mut self) -> &mut ReportLedger {
        &mut self.ledger
    }

    /// The per-target circuit breakers.
    pub fn breakers(&self) -> &BreakerSet {
        &self.breakers
    }

    /// The analysis report from the most recent cycle.
    pub fn last_report(&self) -> Option<&Report> {
        self.last_report.as_ref()
    }

    /// Lifetime health counters.
    pub fn health(&self) -> &HealthCounters {
        &self.health
    }

    /// The streaming accumulator (for tests and ad-hoc inspection).
    pub fn accumulator(&self) -> &FleetAccumulator {
        &self.acc
    }

    /// The static tier, when configured (for tests and inspection).
    pub fn static_tier(&self) -> Option<&StaticTier> {
        self.static_tier.as_ref()
    }

    /// The race tier, when configured (for tests and inspection).
    pub fn race_tier(&self) -> Option<&RaceTier> {
        self.race_tier.as_ref()
    }

    /// The cycle tracer every pipeline stage records into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The structured event log the daemon and its tiers record into
    /// (the `GET /logs` document).
    pub fn events(&self) -> &obs::EventLog {
        &self.events
    }

    /// The worker board behind the daemon's own `/debug/self` profile.
    pub fn worker_board(&self) -> &WorkerBoard {
        &self.board
    }

    /// The scraper (keep-alive pool counters and config).
    pub fn scraper(&self) -> &Scraper {
        &self.scraper
    }

    /// The embedded telemetry store (range queries, backtest).
    pub fn ts(&self) -> &TsStore {
        &self.ts
    }

    /// Flushes the telemetry store to disk (clean shutdown).
    ///
    /// # Errors
    ///
    /// Returns the snapshot-write error; in-memory state is unaffected.
    pub fn flush_telemetry(&mut self) -> std::io::Result<()> {
        self.ts.flush()
    }

    /// The most recent fleet-health verdicts (None before cycle 1).
    pub fn fleet_health(&self) -> Option<&FleetHealth> {
        self.last_health.as_ref()
    }

    /// The adaptive interval controller's current state.
    pub fn adaptive_status(&self) -> AdaptiveStatus {
        self.controller.status()
    }

    /// The interval the serve loop should sleep before the next cycle:
    /// the controller's current interval when adaptivity is enabled,
    /// else `fallback_ms` (the fixed `--interval-ms`).
    pub fn current_interval_ms(&self, fallback_ms: u64) -> u64 {
        if self.controller.enabled() {
            self.controller.interval_ms()
        } else {
            fallback_ms
        }
    }

    /// The retained cycle traces plus per-stage latency summaries
    /// (served at `/trace`).
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Builds the status snapshot.
    pub fn status(&self) -> DaemonStatus {
        DaemonStatus {
            cycles: self.health.cycles,
            targets: self.targets.len(),
            profiles_ingested: self.acc.profiles_ingested(),
            success_rate: self.health.success_rate(),
            p50_us: self.health.latency.p50_us(),
            p99_us: self.health.latency.p99_us(),
            top: self.last_report.as_ref().map(top_sites).unwrap_or_default(),
            recovered_cycle: self.recovered_cycle,
            breakers: self.breakers.summary(self.targets.len()),
            ledger: self.ledger.summary(),
            static_tier: self.static_tier.as_ref().map(|t| t.stats().clone()),
            race_tier: self.race_tier.as_ref().map(|t| t.stats().clone()),
            stages: self.tracer.stage_summaries(),
            spans_recorded: self.tracer.spans_recorded(),
            spans_dropped: self.tracer.spans_dropped(),
            keepalive: self.scraper.keepalive_summary(),
            adaptive: self.controller.status(),
            ts_series: self.ts.series_ids().len(),
            shard: self.shard.clone(),
            ingest: self.ingest.as_ref().map(|t| t.summary()),
        }
    }

    /// Renders the daemon's own metrics in Prometheus text exposition
    /// format: every family announced with `# HELP`/`# TYPE`, all names
    /// under the `leakprofd_` prefix (conformance-tested in
    /// `tests/metrics_conformance.rs`).
    pub fn metrics_text(&self) -> String {
        let mut p = PromText::new();
        self.health.render_into(&mut p);
        let breakers = self.breakers.summary(self.targets.len());
        p.family(
            "leakprofd_breaker_targets",
            "gauge",
            "Scrape targets by circuit-breaker state.",
        );
        for (state, v) in [
            ("closed", breakers.closed),
            ("open", breakers.open),
            ("half_open", breakers.half_open),
        ] {
            p.sample("leakprofd_breaker_targets", &[("state", state)], v);
        }
        p.family(
            "leakprofd_breaker_opened_total",
            "counter",
            "Circuit-breaker open transitions.",
        );
        p.sample("leakprofd_breaker_opened_total", &[], breakers.opened_total);
        let ledger = self.ledger.summary();
        p.family(
            "leakprofd_reports_total",
            "counter",
            "Suspect reports by paging decision.",
        );
        p.sample(
            "leakprofd_reports_total",
            &[("result", "paged")],
            ledger.reported_total,
        );
        p.sample(
            "leakprofd_reports_total",
            &[("result", "suppressed")],
            ledger.suppressed_total,
        );
        if let Some(tier) = &self.static_tier {
            let stats = tier.stats();
            p.family(
                "leakprofd_static_cache_hits_total",
                "counter",
                "Criterion-2 verdicts served from the persistent cache.",
            );
            p.sample("leakprofd_static_cache_hits_total", &[], stats.cache_hits);
            p.family(
                "leakprofd_static_cache_misses_total",
                "counter",
                "Criterion-2 cache misses (file parsed or re-parsed).",
            );
            p.sample(
                "leakprofd_static_cache_misses_total",
                &[],
                stats.cache_misses,
            );
            p.family(
                "leakprofd_static_files_parsed_total",
                "counter",
                "Source files parsed by the static tier.",
            );
            p.sample(
                "leakprofd_static_files_parsed_total",
                &[],
                stats.files_parsed,
            );
            p.family(
                "leakprofd_static_parse_errors_total",
                "counter",
                "Source files the static tier failed to parse.",
            );
            p.sample(
                "leakprofd_static_parse_errors_total",
                &[],
                stats.parse_errors,
            );
            p.family(
                "leakprofd_static_covered_files",
                "gauge",
                "Source files with cached criterion-2 verdicts.",
            );
            p.sample("leakprofd_static_covered_files", &[], stats.covered_files);
            p.family(
                "leakprofd_static_last_scan_us",
                "gauge",
                "Duration of the last source-tree scan in microseconds.",
            );
            p.sample("leakprofd_static_last_scan_us", &[], stats.last_scan_us);
            p.family(
                "leakprofd_static_last_analyze_us",
                "gauge",
                "Duration of the last verdict analysis in microseconds.",
            );
            p.sample(
                "leakprofd_static_last_analyze_us",
                &[],
                stats.last_analyze_us,
            );
        }
        if let Some(tier) = &self.race_tier {
            let stats = tier.stats();
            p.family(
                "leakprofd_race_syncs_total",
                "counter",
                "Race-tier source-tree syncs by cache outcome.",
            );
            p.sample(
                "leakprofd_race_syncs_total",
                &[("outcome", "hit")],
                stats.cache_hits,
            );
            p.sample(
                "leakprofd_race_syncs_total",
                &[("outcome", "miss")],
                stats.cache_misses,
            );
            p.family(
                "leakprofd_race_entries_run_total",
                "counter",
                "Entry points interpreted under the happens-before engine.",
            );
            p.sample("leakprofd_race_entries_run_total", &[], stats.entries_run);
            p.family(
                "leakprofd_race_compile_errors_total",
                "counter",
                "Source trees that failed to compile in race mode.",
            );
            p.sample(
                "leakprofd_race_compile_errors_total",
                &[],
                stats.compile_errors,
            );
            p.family(
                "leakprofd_race_suspects",
                "gauge",
                "Race suspects in the current verdict.",
            );
            p.sample("leakprofd_race_suspects", &[], stats.suspects);
            p.family(
                "leakprofd_race_last_sync_us",
                "gauge",
                "Duration of the last race-tier sync in microseconds.",
            );
            p.sample("leakprofd_race_last_sync_us", &[], stats.last_sync_us);
        }
        let keepalive = self.scraper.keepalive_summary();
        p.family(
            "leakprofd_conn_requests_total",
            "counter",
            "Scrape requests by connection mode.",
        );
        p.sample(
            "leakprofd_conn_requests_total",
            &[("mode", "reused")],
            keepalive.reused,
        );
        p.sample(
            "leakprofd_conn_requests_total",
            &[("mode", "fresh")],
            keepalive.fresh,
        );
        p.family(
            "leakprofd_conn_retired_total",
            "counter",
            "Keep-alive connections retired, by reason.",
        );
        p.sample(
            "leakprofd_conn_retired_total",
            &[("reason", "expired")],
            keepalive.expired,
        );
        p.sample(
            "leakprofd_conn_retired_total",
            &[("reason", "reuse_failure")],
            keepalive.reuse_failures,
        );
        p.family(
            "leakprofd_spans_total",
            "counter",
            "Trace spans by ring outcome.",
        );
        p.sample(
            "leakprofd_spans_total",
            &[("outcome", "recorded")],
            self.tracer.spans_recorded(),
        );
        p.sample(
            "leakprofd_spans_total",
            &[("outcome", "dropped")],
            self.tracer.spans_dropped(),
        );
        let stages = self.tracer.stage_histograms();
        if !stages.is_empty() {
            p.family(
                "leakprofd_stage_latency_us",
                "histogram",
                "Pipeline stage latency in microseconds.",
            );
            for (stage, h) in &stages {
                p.histogram(
                    "leakprofd_stage_latency_us",
                    &[("stage", stage.as_str())],
                    h,
                );
            }
        }
        // Declared only when there is something to sample: a family
        // with HELP/TYPE and no series is non-conformant exposition.
        if let Some(report) = self.last_report.as_ref().filter(|r| !r.suspects.is_empty()) {
            p.family(
                "leakprofd_suspect_rms",
                "gauge",
                "Fleet-wide RMS blocked-goroutine impact per suspect site.",
            );
            for s in &report.suspects {
                let site = s.stats.op.to_string();
                p.sample(
                    "leakprofd_suspect_rms",
                    &[("site", site.as_str())],
                    s.stats.rms,
                );
            }
        }
        let adaptive = self.controller.status();
        p.family(
            "leakprofd_interval_ms",
            "gauge",
            "Current scrape interval chosen by the adaptive controller.",
        );
        p.sample("leakprofd_interval_ms", &[], adaptive.interval_ms);
        p.family(
            "leakprofd_interval_changes_total",
            "counter",
            "Adaptive interval changes, by direction.",
        );
        p.sample(
            "leakprofd_interval_changes_total",
            &[("direction", "tighten")],
            adaptive.tightened_total,
        );
        p.sample(
            "leakprofd_interval_changes_total",
            &[("direction", "back_off")],
            adaptive.backed_off_total,
        );
        p.family(
            "leakprofd_ts_series",
            "gauge",
            "Series tracked by the telemetry store.",
        );
        p.sample("leakprofd_ts_series", &[], self.ts.series_ids().len());
        p.family(
            "leakprofd_ts_appends_total",
            "counter",
            "Telemetry batches appended over this process lifetime.",
        );
        p.sample("leakprofd_ts_appends_total", &[], self.ts.appended_total());
        if let Some(tier) = &self.ingest {
            let s = tier.summary();
            p.family(
                "leakprofd_ingest_queue_depth",
                "gauge",
                "Current push-ingest queue depth (profiles admitted, not yet absorbed).",
            );
            p.sample("leakprofd_ingest_queue_depth", &[], s.queue_depth);
            p.family(
                "leakprofd_ingest_queue_depth_observed",
                "gauge",
                "Queue depth observed at admission time, lifetime quantiles.",
            );
            p.sample(
                "leakprofd_ingest_queue_depth_observed",
                &[("quantile", "0.5")],
                s.queue_depth_p50,
            );
            p.sample(
                "leakprofd_ingest_queue_depth_observed",
                &[("quantile", "0.99")],
                s.queue_depth_p99,
            );
            p.family(
                "leakprofd_ingest_push_total",
                "counter",
                "Profile pushes received on /api/push.",
            );
            p.sample("leakprofd_ingest_push_total", &[], s.push_total);
            p.family(
                "leakprofd_ingest_admitted_total",
                "counter",
                "Pushes admitted into the ingest queue.",
            );
            p.sample("leakprofd_ingest_admitted_total", &[], s.admitted_total);
            p.family(
                "leakprofd_ingest_shed_total",
                "counter",
                "Pushes shed at the high watermark with 429 Retry-After.",
            );
            p.sample("leakprofd_ingest_shed_total", &[], s.shed_total);
            p.family(
                "leakprofd_ingest_coalesced_total",
                "counter",
                "Absorbed profiles that replaced an older one from the same instance.",
            );
            p.sample("leakprofd_ingest_coalesced_total", &[], s.coalesced_total);
            p.family(
                "leakprofd_ingest_rejected_total",
                "counter",
                "Pushes rejected before admission, by reason.",
            );
            p.sample(
                "leakprofd_ingest_rejected_total",
                &[("reason", "bad_request")],
                s.bad_request_total,
            );
            p.sample(
                "leakprofd_ingest_rejected_total",
                &[("reason", "accept_saturated")],
                s.http_rejected_total,
            );
        }
        p.family(
            "leakprofd_build_info",
            "gauge",
            "Build metadata; always 1. The version rides the labels.",
        );
        match &self.shard {
            Some(id) => p.sample(
                "leakprofd_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("role", "daemon"),
                    ("shard", &format!("{}/{}", id.shard, id.of)),
                ],
                1u64,
            ),
            None => p.sample(
                "leakprofd_build_info",
                &[("version", env!("CARGO_PKG_VERSION")), ("role", "daemon")],
                1u64,
            ),
        }
        p.family(
            "leakprofd_obs_dropped_total",
            "counter",
            "Observability records dropped at full rings, by kind.",
        );
        p.sample(
            "leakprofd_obs_dropped_total",
            &[("kind", "span")],
            self.tracer.spans_dropped(),
        );
        p.sample(
            "leakprofd_obs_dropped_total",
            &[("kind", "event")],
            self.events.dropped(),
        );
        // Exemplar: the trace id of the worst (slowest) recent cycle,
        // linking this scrape to its stitched timeline. Declared only
        // when a traced cycle has completed — a family with HELP/TYPE
        // and no series is non-conformant exposition.
        if let Some(w) = self.tracer.worst_cycle() {
            p.family(
                "leakprofd_worst_cycle_us",
                "gauge",
                "Duration of the slowest recent cycle; its trace id rides the labels.",
            );
            p.sample(
                "leakprofd_worst_cycle_us",
                &[
                    ("trace_id", w.trace_id.as_str()),
                    ("cycle", &w.cycle.to_string()),
                ],
                w.dur_us,
            );
        }
        p.finish()
    }
}

/// Projects a report's suspects into compact history entries.
fn top_sites(report: &Report) -> Vec<TopSite> {
    report
        .suspects
        .iter()
        .map(|s| TopSite {
            op: s.stats.op.to_string(),
            rms: s.stats.rms,
            total: s.stats.total,
            max_instance: s.stats.max_instance,
        })
        .collect()
}

/// The instance id the daemon serves its own self-profile under.
pub const SELF_INSTANCE: &str = "leakprofd";

/// Every route [`serve_daemon_endpoints`] answers, in display order
/// (also the body of its 404 response, so a typo'd path lists the menu).
pub fn daemon_routes() -> Vec<String> {
    vec![
        "/metrics".into(),
        "/status".into(),
        "/health".into(),
        "/api/push".into(),
        "/api/snapshot".into(),
        "/api/series?id=&from=&to=&res=".into(),
        "/flame?from=&to=".into(),
        "/flame.txt?from=&to=".into(),
        "/flame/self".into(),
        "/flame/self.txt".into(),
        "/trace".into(),
        "/logs?level=&limit=".into(),
        "/debug/self".into(),
        "/instances".into(),
        ProfileHub::profile_path(SELF_INSTANCE),
    ]
}

/// Splits a request-target into (path, query) and decodes the query
/// into key/value pairs (minimal percent-decoding: `%XX` and `+`).
pub(crate) fn parse_query(target: &str) -> (&str, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (path, params)
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass
/// through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                (Some(hi), Some(lo)) => {
                    out.push((hi * 16 + lo) as u8);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The `/api/series` response envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesResponse {
    /// The queried series id.
    pub id: String,
    /// Inclusive query range start.
    pub from: u64,
    /// Inclusive query range end.
    pub to: u64,
    /// The resolution the store answered at (bucket step; 1 = raw).
    pub res: u64,
    /// Resolutions the store offers.
    pub resolutions: Vec<u64>,
    /// The matching buckets, time-ascending.
    pub points: Vec<timeseries::AggPoint>,
}

/// Answers `/logs?level=&limit=` against an event log: `level` keeps
/// only events at or above the named severity (default: everything),
/// `limit` caps the answer to the newest N (default: the whole ring).
/// Shared by the daemon and the fleet aggregator.
pub(crate) fn serve_logs(events: &obs::EventLog, params: &[(String, String)]) -> Response {
    let get = |k: &str| {
        params
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
            .filter(|v| !v.is_empty())
    };
    let min = match get("level") {
        None => obs::Level::Debug,
        Some(v) => match obs::Level::parse(v) {
            Some(l) => l,
            None => return Response::error(400, "level must be debug, info, warn, or error"),
        },
    };
    let limit = match get("limit") {
        None => usize::MAX,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "limit must be a non-negative integer"),
        },
    };
    Response::json(
        serde_json::to_string_pretty(&events.recent_filtered(min, limit))
            .expect("events serialize"),
    )
}

/// Answers `/api/series?id=&from=&to=&res=` against a store. `from`
/// defaults to 0, `to` to `u64::MAX`, `res` to auto-pick (the finest
/// resolution still covering `from`).
fn serve_series_query(ts: &TsStore, params: &[(String, String)]) -> Response {
    let get = |k: &str| {
        params
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    let Some(id) = get("id") else {
        return Response::error(400, "missing required parameter: id");
    };
    let from = match get("from").map(str::parse::<u64>) {
        None => 0,
        Some(Ok(v)) => v,
        Some(Err(_)) => return Response::error(400, "from must be a non-negative integer"),
    };
    let to = match get("to").map(str::parse::<u64>) {
        None => u64::MAX,
        Some(Ok(v)) => v,
        Some(Err(_)) => return Response::error(400, "to must be a non-negative integer"),
    };
    let res = match get("res").filter(|s| !s.is_empty()).map(str::parse::<u64>) {
        None => None,
        Some(Ok(v)) if v >= 1 => Some(v),
        Some(_) => return Response::error(400, "res must be a positive integer"),
    };
    if ts.last_t(id).is_none() {
        return Response::error(404, &format!("unknown series: {id}"));
    }
    let points = ts.query(id, from, to, res);
    let answered_res = ts.resolution_for(id, from, res);
    let body = SeriesResponse {
        id: id.to_string(),
        from,
        to,
        res: answered_res,
        resolutions: ts.resolutions(),
        points,
    };
    Response::json(serde_json::to_string_pretty(&body).expect("series response serializes"))
}

/// Serves a shared daemon's endpoints on `addr` (the daemon itself
/// stays driveable through the mutex, so a driver loop can keep calling
/// [`Daemon::run_cycle`] while the server reads):
///
/// * `/metrics`, `/status` — Prometheus text and the JSON
///   [`DaemonStatus`].
/// * `/health` — per-site trend verdicts ([`FleetHealth`] JSON) plus
///   the adaptive-interval state.
/// * `/api/snapshot` — the live merge-tier document ([`ApiSnapshot`]
///   JSON): accumulator + ledger + shard identity, what `leakprofd
///   fleet` polls to fold this daemon into the fleet-wide view.
/// * `/api/series?id=&from=&to=&res=` — range queries over the
///   embedded telemetry store ([`SeriesResponse`] JSON).
/// * `/trace` — the retained cycle span trees + per-stage latency
///   summaries ([`TraceSnapshot`] JSON).
/// * `/logs` — the retained structured events ([`obs::Event`] JSON,
///   oldest first), each stamped with the trace context it happened in.
/// * `/debug/self` — the daemon's **own** goroutine-style profile: its
///   worker threads rendered in the same JSON format the scraped
///   instances serve, so `leakprofd scrape-once` pointed at the daemon
///   ranks the daemon's own blocking sites.
/// * `/instances` + `/instance/leakprofd/debug/pprof/goroutine` — the
///   [`ProfileHub`]-shaped aliases of `/debug/self`, which is what lets
///   the scraper's fleet discovery run against the daemon unchanged.
///
/// The trace, logs, and self-profile routes read tracer/events/board
/// handles cloned out of the daemon up front, so they never contend on
/// the daemon mutex mid-cycle.
///
/// Every request's `traceparent` header (when present and well-formed)
/// opens a SERVE span under the remote trace; every response carries
/// the daemon's current cycle trace context back as a `traceparent`
/// header, which is how push clients join the distributed trace.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_daemon_endpoints(
    daemon: Arc<Mutex<Daemon>>,
    addr: &str,
) -> std::io::Result<HttpServer> {
    serve_daemon_endpoints_with(daemon, addr, 2)
}

/// [`serve_daemon_endpoints`] with an explicit HTTP worker count. With
/// a push-ingest tier configured the accept pool is bounded
/// ([`IngestConfig::accept_pending`]): connections beyond the bound get
/// a graceful `503 Retry-After` instead of queueing without limit, and
/// `POST /api/push` is answered straight off the tier — never through
/// the daemon mutex, so admission keeps working mid-cycle.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_daemon_endpoints_with(
    daemon: Arc<Mutex<Daemon>>,
    addr: &str,
    workers: usize,
) -> std::io::Result<HttpServer> {
    let (tracer, board, events, ingest) = {
        let d = daemon.lock().expect("daemon poisoned");
        (
            d.tracer().clone(),
            d.worker_board().clone(),
            d.events().clone(),
            d.ingest_tier().cloned(),
        )
    };
    let not_found = format!("try {}", daemon_routes().join(", "));
    let options = ServerOptions {
        workers: workers.max(1),
        board: Some(board.clone()),
        max_pending: ingest
            .as_ref()
            .map(|t| t.config().accept_pending)
            .unwrap_or(0),
        overload_retry_ms: ingest
            .as_ref()
            .map(|t| t.config().retry_base_ms)
            .unwrap_or(0),
        overload_rejected: ingest.as_ref().map(|t| t.http_rejected_counter()),
    };
    HttpServer::serve_with_options(addr, options, move |req: &Request| {
        // Remote trace context, when the caller sent one: record a SERVE
        // span pinned under it (a malformed header degrades to no span,
        // never an error). The fleet's `/api/snapshot` poll additionally
        // has its context adopted, so the daemon's *next* cycle joins
        // the fleet's trace instead of minting its own root.
        let remote = req
            .traceparent
            .as_deref()
            .and_then(obs::TraceContext::parse);
        let mut serve_span = remote
            .as_ref()
            .map(|ctx| tracer.start_remote(obs::stage::SERVE, &req.path, ctx));
        if req.path == "/api/snapshot" {
            if let Some(ctx) = &remote {
                tracer.adopt_remote(ctx);
            }
        }
        let mut resp = serve_one(req, &daemon, &ingest, &tracer, &board, &events, &not_found);
        if let Some(span) = &mut serve_span {
            span.attr("status", resp.status);
        }
        drop(serve_span);
        // Answer with the daemon's current trace context so clients —
        // the push client especially — can join the trace next hop.
        if let Some(ctx) = tracer.current_context() {
            resp.headers
                .push((obs::TRACEPARENT.to_string(), ctx.to_header()));
        }
        resp
    })
}

/// Dispatches one request to its route (the body of the daemon's serve
/// closure, split out so the closure itself only handles tracing).
#[allow(clippy::too_many_arguments)]
fn serve_one(
    req: &Request,
    daemon: &Arc<Mutex<Daemon>>,
    ingest: &Option<Arc<IngestTier>>,
    tracer: &Tracer,
    board: &WorkerBoard,
    events: &obs::EventLog,
    not_found: &str,
) -> Response {
    let self_profile_path = ProfileHub::profile_path(SELF_INSTANCE);
    if req.method == "POST" && req.path == "/api/push" {
        return match ingest {
            Some(tier) => tier.handle_push(&req.body),
            None => Response::error(404, "push ingestion is not enabled (serve --push)"),
        };
    }
    match req.path.as_str() {
        "/metrics" => {
            let d = daemon.lock().expect("daemon poisoned");
            Response::text(d.metrics_text())
        }
        "/status" => {
            let d = daemon.lock().expect("daemon poisoned");
            Response::json(serde_json::to_string_pretty(&d.status()).expect("status serializes"))
        }
        "/health" => {
            let d = daemon.lock().expect("daemon poisoned");
            let health = match d.fleet_health() {
                Some(h) => h.clone(),
                // Before the first cycle there are no verdicts yet;
                // serve an empty document rather than a 404 so
                // dashboards can poll from startup.
                None => FleetHealth {
                    cycle: 0,
                    sites: Vec::new(),
                    adaptive: d.adaptive_status(),
                },
            };
            Response::json(serde_json::to_string_pretty(&health).expect("health serializes"))
        }
        "/api/snapshot" => {
            let d = daemon.lock().expect("daemon poisoned");
            Response::json(
                serde_json::to_string_pretty(&d.api_snapshot()).expect("api snapshot serializes"),
            )
        }
        p if parse_query(p).0 == "/api/series" => {
            let (_, params) = parse_query(p);
            let d = daemon.lock().expect("daemon poisoned");
            serve_series_query(d.ts(), &params)
        }
        p if matches!(parse_query(p).0, "/flame" | "/flame.txt") => {
            let (path, params) = parse_query(p);
            let d = daemon.lock().expect("daemon poisoned");
            crate::flame::serve_flame(
                &d.accumulator().snapshot(),
                d.fleet_health(),
                d.ts(),
                &params,
                path == "/flame",
                "leakprofd — blocked goroutines",
                "cycle",
            )
        }
        p if matches!(p, "/flame/self" | "/flame/self.txt") => {
            // Tracer + board handles were cloned out up front, so the
            // self-flame never touches the daemon mutex mid-cycle.
            let g = crate::flame::self_flame(
                &board.self_profile(SELF_INSTANCE),
                &tracer.stage_histograms(),
            );
            if p == "/flame/self" {
                Response::html(g.render_html(&obs::FlameOptions {
                    title: "leakprofd — self time".into(),
                    subtitle: "worker wait stacks (µs) + per-stage cycle latency".into(),
                    ..obs::FlameOptions::default()
                }))
            } else {
                Response::text(g.to_folded())
            }
        }
        "/trace" => Response::json(
            serde_json::to_string_pretty(&tracer.snapshot()).expect("trace serializes"),
        ),
        p if parse_query(p).0 == "/logs" => {
            let (_, params) = parse_query(p);
            serve_logs(events, &params)
        }
        "/instances" => Response::json(
            serde_json::to_string(&vec![SELF_INSTANCE]).expect("instances serialize"),
        ),
        p if p == "/debug/self" || p == self_profile_path => Response::json(
            serde_json::to_string_pretty(&board.self_profile(SELF_INSTANCE))
                .expect("self profile serializes"),
        ),
        _ => Response::error(404, not_found),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::ProfileHub;
    use crate::http::http_get;
    use gosim::GoroutineProfile;
    use std::time::Duration;

    fn empty_profile(instance: &str) -> GoroutineProfile {
        GoroutineProfile {
            instance: instance.into(),
            captured_at: 0,
            goroutines: vec![],
        }
    }

    #[test]
    fn daemon_cycles_and_serves_status() {
        let hub = ProfileHub::new();
        for i in 0..3 {
            hub.publish(&empty_profile(&format!("svc-{i}")));
        }
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let targets = hub
            .instances()
            .into_iter()
            .map(|id| ScrapeTarget {
                path: ProfileHub::profile_path(&id),
                instance: id,
                addr: server.addr(),
            })
            .collect();

        let daemon = Daemon::new(
            DaemonConfig::default(),
            LeakProf::new(leakprof::Config {
                threshold: 1,
                ast_filter: false,
                top_n: 5,
            }),
            targets,
        )
        .unwrap();
        let daemon = Arc::new(Mutex::new(daemon));
        let endpoint = serve_daemon_endpoints(Arc::clone(&daemon), "127.0.0.1:0").unwrap();

        for _ in 0..2 {
            let report = daemon.lock().unwrap().run_cycle();
            assert_eq!(report.stats.succeeded, 3);
        }

        let status_body = http_get(
            endpoint.addr(),
            "/status",
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let status: DaemonStatus =
            serde_json::from_str(std::str::from_utf8(&status_body).unwrap()).unwrap();
        assert_eq!(status.cycles, 2);
        assert_eq!(status.profiles_ingested, 6);
        assert!((status.success_rate - 1.0).abs() < 1e-9);

        let metrics = http_get(
            endpoint.addr(),
            "/metrics",
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let metrics = String::from_utf8(metrics).unwrap();
        assert!(metrics.contains("leakprofd_cycles_total 2"));
        assert!(metrics.contains("leakprofd_spans_total{outcome=\"recorded\"}"));
        assert!(metrics.contains("leakprofd_stage_latency_us_bucket{stage=\"cycle\",le=\""));
        assert!(metrics.contains("leakprofd_stage_latency_us_bucket{stage=\"cycle\",le=\"+Inf\"}"));
        assert!(metrics.contains("leakprofd_stage_latency_us_count{stage=\"cycle\"}"));

        // Two finished cycles must be retained as full span trees, each
        // rooted at a `cycle` span with the pipeline stages under it.
        let trace_body = http_get(
            endpoint.addr(),
            "/trace",
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let trace: obs::TraceSnapshot =
            serde_json::from_str(std::str::from_utf8(&trace_body).unwrap()).unwrap();
        assert_eq!(trace.cycles.len(), 2);
        for cycle in &trace.cycles {
            let root = cycle
                .spans
                .iter()
                .find(|s| s.stage == obs::stage::CYCLE)
                .expect("cycle root span");
            assert_eq!(root.parent, 0);
            for want in [obs::stage::SCRAPE, obs::stage::INGEST, obs::stage::ANALYZE] {
                let span = cycle
                    .spans
                    .iter()
                    .find(|s| s.stage == want)
                    .unwrap_or_else(|| panic!("missing {want} span"));
                assert_eq!(span.parent, root.id, "{want} must nest under the root");
            }
            let targets: Vec<_> = cycle
                .spans
                .iter()
                .filter(|s| s.stage == obs::stage::TARGET)
                .collect();
            assert_eq!(targets.len(), 3, "one target span per instance");
        }

        // The daemon's own profile is served in the scrapeable format,
        // and its endpoint pool workers show up blocked on their queue.
        let self_body = http_get(
            endpoint.addr(),
            "/debug/self",
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let profile: gosim::GoroutineProfile =
            serde_json::from_str(std::str::from_utf8(&self_body).unwrap()).unwrap();
        assert_eq!(profile.instance, SELF_INSTANCE);
        assert!(
            profile.goroutines.len() >= 2,
            "endpoint pool workers must be on the board"
        );
        let alias = http_get(
            endpoint.addr(),
            &ProfileHub::profile_path(SELF_INSTANCE),
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let alias: gosim::GoroutineProfile =
            serde_json::from_str(std::str::from_utf8(&alias).unwrap()).unwrap();
        assert_eq!(alias.instance, SELF_INSTANCE);
        let instances = http_get(
            endpoint.addr(),
            "/instances",
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let instances: Vec<String> =
            serde_json::from_str(std::str::from_utf8(&instances).unwrap()).unwrap();
        assert_eq!(instances, vec![SELF_INSTANCE.to_string()]);
    }

    #[test]
    fn unknown_route_enumerates_the_menu() {
        let daemon = Daemon::new(DaemonConfig::default(), LeakProf::default(), vec![]).unwrap();
        let endpoint = serve_daemon_endpoints(Arc::new(Mutex::new(daemon)), "127.0.0.1:0").unwrap();
        // Raw TCP: http_get discards non-200 bodies, and the body is
        // exactly what this test is about.
        use std::io::{Read as _, Write as _};
        let mut conn = std::net::TcpStream::connect(endpoint.addr()).unwrap();
        conn.write_all(b"GET /nope HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
        for route in daemon_routes() {
            assert!(raw.contains(&route), "404 body must mention {route}: {raw}");
        }
    }

    #[test]
    fn static_tier_parses_once_and_serves_cycles_from_cache() {
        let root =
            std::env::temp_dir().join(format!("leakprofd-daemon-static-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let src_dir = root.join("src");
        let state_dir = root.join("state");
        std::fs::create_dir_all(&state_dir).unwrap();

        let demo = crate::demo::DemoFleet::build(8, 2, 99);
        demo.write_sources(&src_dir).unwrap();
        let nfiles = demo.sources.len() as u64;
        assert!(nfiles > 0);
        let server = demo.hub.serve("127.0.0.1:0", 2).unwrap();
        let targets = demo.targets(server.addr());

        let config = DaemonConfig {
            state_dir: Some(state_dir.clone()),
            static_tier: Some(StaticTierConfig::in_state_dir(src_dir.clone(), &state_dir)),
            ..DaemonConfig::default()
        };
        // Note: the daemon's LeakProf starts with NO indexed sources —
        // criterion-2 coverage comes entirely from the verdict cache.
        let lp = LeakProf::new(leakprof::Config {
            threshold: 1,
            ast_filter: false,
            top_n: 5,
        });
        let mut daemon = Daemon::new(config.clone(), lp, targets.clone()).unwrap();
        {
            let stats = daemon.static_tier().unwrap().stats();
            assert_eq!(stats.cache_misses, nfiles, "cold start misses every file");
            assert_eq!(stats.files_parsed, nfiles);
            assert_eq!(stats.cache_hits, 0);
            assert_eq!(stats.parse_errors, 0);
        }

        for _ in 0..3 {
            daemon.run_cycle();
        }
        {
            let stats = daemon.static_tier().unwrap().stats();
            assert_eq!(
                stats.files_parsed, nfiles,
                "warm cycles must not re-parse anything"
            );
            assert_eq!(stats.cache_hits, 3 * nfiles);
            assert_eq!(stats.syncs, 4);
        }
        let status = daemon.status();
        let tier = status.static_tier.expect("tier stats in status");
        assert_eq!(tier.covered_files, nfiles);
        let metrics = daemon.metrics_text();
        assert!(metrics.contains(&format!("leakprofd_static_cache_hits_total {}", 3 * nfiles)));
        assert!(metrics.contains(&format!("leakprofd_static_files_parsed_total {nfiles}")));
        drop(daemon);

        // A fresh daemon process on the same state dir: the persisted
        // cache answers every file — zero parses, ever.
        let lp = LeakProf::new(leakprof::Config {
            threshold: 1,
            ast_filter: false,
            top_n: 5,
        });
        let daemon = Daemon::new(config, lp, targets).unwrap();
        let stats = daemon.static_tier().unwrap().stats();
        assert_eq!(
            stats.files_parsed, 0,
            "restart must reuse the on-disk cache"
        );
        assert_eq!(stats.cache_hits, nfiles);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn race_suspects_flow_through_the_leak_pipeline() {
        let root =
            std::env::temp_dir().join(format!("leakprofd-daemon-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let src_dir = root.join("src");
        let state_dir = root.join("state");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("acct.go"),
            "package acct\n\nfunc TestUpdate() {\n\tdone := make(chan int)\n\ttotal := 0\n\tgo func() {\n\t\ttotal = total + 1\n\t\tdone <- 1\n\t}()\n\ttotal = total + 1\n\t<-done\n}\n",
        )
        .unwrap();

        let config = DaemonConfig {
            state_dir: Some(state_dir.clone()),
            race_tier: Some(RaceTierConfig::in_state_dir(src_dir.clone(), &state_dir)),
            ..DaemonConfig::default()
        };
        let mut daemon = Daemon::new(config, LeakProf::default(), vec![]).unwrap();
        daemon.run_cycle();

        // The race suspect reached the cycle's analysis...
        let report = daemon.last_report().expect("cycle produced a report");
        let race = report
            .suspects
            .iter()
            .find(|s| s.stats.op.kind == leakprof::signature::ChanOpKind::Race)
            .expect("race suspect in the ranked report");
        assert!(race.stats.rms > 0.0);
        assert!(race.render().contains("DATA RACE"));
        // ...the ledger saw it (one open episode page per race site)...
        let race_sites = report
            .suspects
            .iter()
            .filter(|s| s.stats.op.kind == leakprof::signature::ChanOpKind::Race)
            .count();
        assert_eq!(daemon.ledger.summary().active, race_sites);
        // ...and the telemetry store tracks its fingerprint for /health.
        let fp = sid::site_fingerprint(&race.stats);
        assert!(
            daemon.ts().series_ids().contains(&sid::site_rms_id(&fp)),
            "race site must have an RMS series"
        );

        // Warm cycle: cache hit, identical verdict, counters exposed.
        daemon.run_cycle();
        let stats = daemon.race_tier().unwrap().stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.suspects, race_sites as u64);
        let status = daemon.status();
        assert_eq!(
            status.race_tier.expect("race stats in status").suspects,
            race_sites as u64
        );
        let metrics = daemon.metrics_text();
        assert!(metrics.contains("leakprofd_race_syncs_total{outcome=\"hit\"} 1"));
        assert!(metrics.contains(&format!("leakprofd_race_suspects {race_sites}")));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
