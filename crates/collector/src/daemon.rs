//! The `leakprofd` daemon core: scrape cycles feeding a streaming
//! LeakProf accumulator, with history, health counters, and its own
//! `/metrics` + `/status` endpoints.

use std::sync::{Arc, Mutex};

use leakprof::{FleetAccumulator, LeakProf, Report};
use serde::{Deserialize, Serialize};

use crate::history::{CycleRecord, HistoryLog, TopSite};
use crate::http::{HttpServer, Request, Response};
use crate::scrape::{CycleReport, ScrapeConfig, ScrapeTarget, Scraper};
use crate::stats::HealthCounters;

/// Daemon configuration.
#[derive(Debug, Clone, Default)]
pub struct DaemonConfig {
    /// Scraper tuning.
    pub scrape: ScrapeConfig,
    /// Where to persist cycle history (`None` disables persistence).
    pub history_path: Option<std::path::PathBuf>,
    /// Records retained across history compactions.
    pub history_keep: usize,
}

/// A machine-readable status snapshot (served at `/status` and printed
/// by `leakprofd status`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Completed scrape cycles.
    pub cycles: u64,
    /// Registered scrape targets.
    pub targets: usize,
    /// Profiles ingested into the accumulator over the daemon lifetime.
    pub profiles_ingested: usize,
    /// All-time scrape success rate in `[0,1]`.
    pub success_rate: f64,
    /// All-time p50 scrape latency (µs).
    pub p50_us: u64,
    /// All-time p99 scrape latency (µs).
    pub p99_us: u64,
    /// Current ranked top sites.
    pub top: Vec<TopSite>,
}

/// The collection daemon: owns the scraper, the streaming analysis
/// state, and the history log.
pub struct Daemon {
    lp: LeakProf,
    acc: FleetAccumulator,
    scraper: Scraper,
    targets: Vec<ScrapeTarget>,
    history: Option<HistoryLog>,
    health: HealthCounters,
    last_report: Option<Report>,
}

impl Daemon {
    /// Creates a daemon scraping `targets` and analyzing with `lp`.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the history log cannot be opened.
    pub fn new(
        config: DaemonConfig,
        lp: LeakProf,
        targets: Vec<ScrapeTarget>,
    ) -> std::io::Result<Daemon> {
        let history = match &config.history_path {
            Some(path) => Some(HistoryLog::open(path, config.history_keep.max(1))?),
            None => None,
        };
        Ok(Daemon {
            lp,
            acc: FleetAccumulator::new(),
            scraper: Scraper::new(config.scrape),
            targets,
            history,
            health: HealthCounters::default(),
            last_report: None,
        })
    }

    /// Registered scrape targets.
    pub fn targets(&self) -> &[ScrapeTarget] {
        &self.targets
    }

    /// Runs one scrape → ingest → rank cycle and returns the raw scrape
    /// report; the analysis result is available via
    /// [`Daemon::last_report`]. Scrape failures degrade coverage (and are
    /// recorded) but never abort the cycle.
    pub fn run_cycle(&mut self) -> CycleReport {
        let report = self.scraper.scrape_cycle(&self.targets);
        for p in &report.profiles {
            self.acc.ingest(p);
        }
        let analysis = self.lp.report_from_accumulator(&self.acc);
        self.health.absorb(&report.stats);
        if let Some(history) = &mut self.history {
            let record = CycleRecord {
                cycle: self.health.cycles,
                profiles: report.stats.succeeded,
                failures: report.stats.failed,
                retries: report.stats.retries,
                wall_ms: report.stats.wall_ms,
                p50_us: report.stats.latency.p50_us(),
                p99_us: report.stats.latency.p99_us(),
                top: top_sites(&analysis),
            };
            if let Err(e) = history.append(&record) {
                eprintln!("leakprofd: history append failed: {e}");
            }
        }
        self.last_report = Some(analysis);
        report
    }

    /// The analysis report from the most recent cycle.
    pub fn last_report(&self) -> Option<&Report> {
        self.last_report.as_ref()
    }

    /// Lifetime health counters.
    pub fn health(&self) -> &HealthCounters {
        &self.health
    }

    /// The streaming accumulator (for tests and ad-hoc inspection).
    pub fn accumulator(&self) -> &FleetAccumulator {
        &self.acc
    }

    /// Builds the status snapshot.
    pub fn status(&self) -> DaemonStatus {
        DaemonStatus {
            cycles: self.health.cycles,
            targets: self.targets.len(),
            profiles_ingested: self.acc.profiles_ingested(),
            success_rate: self.health.success_rate(),
            p50_us: self.health.latency.p50_us(),
            p99_us: self.health.latency.p99_us(),
            top: self.last_report.as_ref().map(top_sites).unwrap_or_default(),
        }
    }

    /// Renders the daemon's own Prometheus-style metrics, including the
    /// current top-site impact gauges.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.health.render_prometheus();
        if let Some(report) = &self.last_report {
            let _ = writeln!(out, "# TYPE leakprofd_suspect_rms gauge");
            for s in &report.suspects {
                let _ = writeln!(
                    out,
                    "leakprofd_suspect_rms{{site=\"{}\"}} {}",
                    s.stats.op, s.stats.rms
                );
            }
        }
        out
    }
}

/// Projects a report's suspects into compact history entries.
fn top_sites(report: &Report) -> Vec<TopSite> {
    report
        .suspects
        .iter()
        .map(|s| TopSite {
            op: s.stats.op.to_string(),
            rms: s.stats.rms,
            total: s.stats.total,
            max_instance: s.stats.max_instance,
        })
        .collect()
}

/// Serves a shared daemon's `/metrics` and `/status` endpoints on `addr`
/// (the daemon itself stays driveable through the mutex, so a driver
/// loop can keep calling [`Daemon::run_cycle`] while the server reads).
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_daemon_endpoints(
    daemon: Arc<Mutex<Daemon>>,
    addr: &str,
) -> std::io::Result<HttpServer> {
    HttpServer::serve(addr, 2, move |req: &Request| {
        let d = daemon.lock().expect("daemon poisoned");
        match req.path.as_str() {
            "/metrics" => Response::text(d.metrics_text()),
            "/status" => Response::json(
                serde_json::to_string_pretty(&d.status()).expect("status serializes"),
            ),
            _ => Response::error(404, "try /metrics or /status"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::ProfileHub;
    use crate::http::http_get;
    use gosim::GoroutineProfile;
    use std::time::Duration;

    fn empty_profile(instance: &str) -> GoroutineProfile {
        GoroutineProfile {
            instance: instance.into(),
            captured_at: 0,
            goroutines: vec![],
        }
    }

    #[test]
    fn daemon_cycles_and_serves_status() {
        let hub = ProfileHub::new();
        for i in 0..3 {
            hub.publish(&empty_profile(&format!("svc-{i}")));
        }
        let server = hub.serve("127.0.0.1:0", 2).unwrap();
        let targets = hub
            .instances()
            .into_iter()
            .map(|id| ScrapeTarget {
                path: ProfileHub::profile_path(&id),
                instance: id,
                addr: server.addr(),
            })
            .collect();

        let daemon = Daemon::new(
            DaemonConfig::default(),
            LeakProf::new(leakprof::Config {
                threshold: 1,
                ast_filter: false,
                top_n: 5,
            }),
            targets,
        )
        .unwrap();
        let daemon = Arc::new(Mutex::new(daemon));
        let endpoint = serve_daemon_endpoints(Arc::clone(&daemon), "127.0.0.1:0").unwrap();

        for _ in 0..2 {
            let report = daemon.lock().unwrap().run_cycle();
            assert_eq!(report.stats.succeeded, 3);
        }

        let status_body = http_get(
            endpoint.addr(),
            "/status",
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let status: DaemonStatus =
            serde_json::from_str(std::str::from_utf8(&status_body).unwrap()).unwrap();
        assert_eq!(status.cycles, 2);
        assert_eq!(status.profiles_ingested, 6);
        assert!((status.success_rate - 1.0).abs() < 1e-9);

        let metrics = http_get(
            endpoint.addr(),
            "/metrics",
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
        .unwrap();
        let metrics = String::from_utf8(metrics).unwrap();
        assert!(metrics.contains("leakprofd_cycles_total 2"));
    }
}
