//! The daemon's race-detection tier: a content-addressed cache of
//! happens-before race suspects.
//!
//! Race detection is *dynamic* — it compiles the service's sources in
//! race mode and interprets them under the happens-before engine — so
//! it is far too expensive for the collection hot path. This tier runs
//! it the way the static tier runs criterion-2: keyed by a fingerprint
//! of the whole source tree.
//!
//! * every `.go` file under the source directory contributes to one
//!   FNV-64 tree fingerprint (path + contents);
//! * on a fingerprint **miss** the tree is compiled with race
//!   instrumentation, every discovered zero-arg entry runs under a
//!   deterministic seed, and the resulting suspects (in the exact
//!   [`SiteStats`] shape leak suspects use) are cached in a versioned
//!   `races.json`;
//! * on a **hit** the cached suspects are returned — no compile, no
//!   interpretation.
//!
//! The cycle merges these suspects into the analysis *before* the
//! ledger applies it, so races fingerprint into `/health` trends, the
//! report ledger, and notifications exactly like leaks. A corrupt or
//! version-skewed cache is discarded and rebuilt, never trusted.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use leakprof::analyze::SiteStats;
use racecheck::{check_entries, discover_entries, RunConfig};
use serde::{Deserialize, Serialize};

/// On-disk format version of `races.json`; bumped whenever the
/// detector's semantics or the entry layout change.
pub const RACE_CACHE_VERSION: u32 = 1;

/// Race-tier configuration.
#[derive(Debug, Clone)]
pub struct RaceTierConfig {
    /// Root of the service source tree.
    pub source_dir: PathBuf,
    /// Where the suspect cache persists (defaults to
    /// `<state_dir>/races.json` when wired into the daemon).
    pub cache_path: PathBuf,
    /// Detector run knobs (seed, tick budget).
    pub run: RunConfig,
}

impl RaceTierConfig {
    /// Config with the cache stored inside `state_dir`.
    pub fn in_state_dir(source_dir: PathBuf, state_dir: &Path) -> RaceTierConfig {
        RaceTierConfig {
            source_dir,
            cache_path: state_dir.join("races.json"),
            run: RunConfig::default(),
        }
    }
}

/// Lifetime counters, served in `/metrics`.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceTierStats {
    /// Completed syncs.
    pub syncs: u64,
    /// Syncs answered from cache (tree fingerprint match).
    pub cache_hits: u64,
    /// Syncs that had to compile and run the tree.
    pub cache_misses: u64,
    /// Entry points interpreted across all misses.
    pub entries_run: u64,
    /// Trees that failed to compile in race mode (cached as empty so a
    /// broken tree is not recompiled every cycle).
    pub compile_errors: u64,
    /// Race suspects in the current verdict.
    pub suspects: u64,
    /// Wall time of the last sync (µs); ~0 when warm.
    pub last_sync_us: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    /// FNV-64 fingerprint of the tree the suspects were computed from.
    fingerprint: u64,
    /// True when the tree compiled; `false` pins the fingerprint.
    compiled: bool,
    suspects: Vec<SiteStats>,
}

/// The race tier: suspect cache + sync machinery.
#[derive(Debug)]
pub struct RaceTier {
    config: RaceTierConfig,
    cached: Option<(u64, bool, Vec<SiteStats>)>,
    stats: RaceTierStats,
}

impl RaceTier {
    /// Opens the tier, loading any persisted cache. Missing, corrupt,
    /// or version-skewed caches yield a cold tier.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the cache file exists but cannot be read.
    pub fn open(config: RaceTierConfig) -> io::Result<RaceTier> {
        let cached = match std::fs::read_to_string(&config.cache_path) {
            Ok(text) => match serde_json::from_str::<CacheFile>(&text) {
                Ok(c) if c.version == RACE_CACHE_VERSION => {
                    Some((c.fingerprint, c.compiled, c.suspects))
                }
                _ => None,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        Ok(RaceTier {
            config,
            cached,
            stats: RaceTierStats::default(),
        })
    }

    /// Synchronizes with the source tree and returns the current race
    /// suspects. A warm tree costs one directory scan.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the source directory cannot be walked or
    /// the cache cannot be written. Compile errors do not propagate:
    /// they pin an empty verdict until the tree changes.
    pub fn sync(&mut self) -> io::Result<Vec<SiteStats>> {
        let start = Instant::now();
        let sources = read_tree(&self.config.source_dir)?;
        let fp = tree_fingerprint(&sources);

        if let Some((cached_fp, _, suspects)) = &self.cached {
            if *cached_fp == fp {
                self.stats.cache_hits += 1;
                self.stats.syncs += 1;
                self.stats.suspects = suspects.len() as u64;
                self.stats.last_sync_us = start.elapsed().as_micros() as u64;
                return Ok(suspects.clone());
            }
        }

        self.stats.cache_misses += 1;
        let (compiled, suspects) = match discover_entries(&sources).and_then(|entries| {
            check_entries(&sources, &entries, &self.config.run).map(|r| (entries, r))
        }) {
            Ok((entries, report)) => {
                self.stats.entries_run += entries.len() as u64;
                (true, report.suspects)
            }
            Err(_) => {
                self.stats.compile_errors += 1;
                (false, Vec::new())
            }
        };
        self.cached = Some((fp, compiled, suspects.clone()));
        self.persist()?;
        self.stats.syncs += 1;
        self.stats.suspects = suspects.len() as u64;
        self.stats.last_sync_us = start.elapsed().as_micros() as u64;
        Ok(suspects)
    }

    /// Current counters.
    pub fn stats(&self) -> &RaceTierStats {
        &self.stats
    }

    /// Where the cache persists.
    pub fn cache_path(&self) -> &Path {
        &self.config.cache_path
    }

    /// Writes the cache atomically (temp file + rename).
    fn persist(&self) -> io::Result<()> {
        let Some((fingerprint, compiled, suspects)) = &self.cached else {
            return Ok(());
        };
        if let Some(parent) = self.config.cache_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let cache = CacheFile {
            version: RACE_CACHE_VERSION,
            fingerprint: *fingerprint,
            compiled: *compiled,
            suspects: suspects.clone(),
        };
        let text = serde_json::to_string_pretty(&cache).expect("cache serializes");
        let tmp = self.config.cache_path.with_extension("json.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &self.config.cache_path)
    }
}

/// Reads every `.go` file under `dir` as `(text, rel_path)` pairs in
/// deterministic (sorted) order.
fn read_tree(dir: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    walk_go_files(dir, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        out.push((text, rel_key(dir, &path)));
    }
    Ok(out)
}

/// One FNV-64 over every `(path, contents)` pair: any edit, rename,
/// addition, or deletion changes it.
fn tree_fingerprint(sources: &[(String, String)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (text, path) in sources {
        eat(path.as_bytes());
        eat(&[0]);
        eat(text.as_bytes());
        eat(&[0xff]);
    }
    h
}

fn walk_go_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk_go_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "go") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_key(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakprof::signature::ChanOpKind;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("leakprofd-race-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const RACY: &str = "package acct\n\nfunc TestUpdate() {\n\tdone := make(chan int)\n\ttotal := 0\n\tgo func() {\n\t\ttotal = total + 1\n\t\tdone <- 1\n\t}()\n\ttotal = total + 1\n\t<-done\n}\n";
    const CLEAN: &str = "package ok\n\nfunc TestHandoff() {\n\tdata := 0\n\tch := make(chan int)\n\tgo func() {\n\t\tdata = 42\n\t\tch <- 1\n\t}()\n\t<-ch\n\tsim.Work(data)\n}\n";

    #[test]
    fn cold_sync_detects_then_warm_sync_hits_cache() {
        let root = temp_root("warm");
        let src = root.join("src");
        std::fs::create_dir_all(src.join("acct")).unwrap();
        std::fs::write(src.join("acct/update.go"), RACY).unwrap();
        let config = RaceTierConfig::in_state_dir(src.clone(), &root);

        let mut tier = RaceTier::open(config.clone()).unwrap();
        let suspects = tier.sync().unwrap();
        assert_eq!(tier.stats().cache_misses, 1);
        assert!(!suspects.is_empty(), "the racy tree must yield suspects");
        assert!(suspects.iter().all(|s| s.op.kind == ChanOpKind::Race));

        let again = tier.sync().unwrap();
        assert_eq!(tier.stats().cache_hits, 1, "warm sync must not re-run");
        assert_eq!(
            serde_json::to_string(&suspects).unwrap(),
            serde_json::to_string(&again).unwrap(),
            "warm suspects identical to cold"
        );

        // A fresh process on the same cache path: zero runs.
        let mut tier2 = RaceTier::open(config).unwrap();
        let restored = tier2.sync().unwrap();
        assert_eq!(tier2.stats().cache_misses, 0, "restart must reuse cache");
        assert_eq!(
            serde_json::to_string(&suspects).unwrap(),
            serde_json::to_string(&restored).unwrap(),
            "suspects survive restart byte-identically"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn clean_tree_yields_no_suspects_and_edits_invalidate() {
        let root = temp_root("edit");
        let src = root.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("ok.go"), CLEAN).unwrap();
        let mut tier = RaceTier::open(RaceTierConfig::in_state_dir(src.clone(), &root)).unwrap();
        assert!(tier.sync().unwrap().is_empty(), "clean tree: no suspects");

        std::fs::write(src.join("racy.go"), RACY).unwrap();
        let suspects = tier.sync().unwrap();
        assert_eq!(tier.stats().cache_misses, 2, "edit re-runs the detector");
        assert!(!suspects.is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn broken_tree_is_pinned_not_retried() {
        let root = temp_root("broken");
        let src = root.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("bad.go"), "package p\nfunc {{{\n").unwrap();
        let mut tier = RaceTier::open(RaceTierConfig::in_state_dir(src.clone(), &root)).unwrap();
        assert!(tier.sync().unwrap().is_empty());
        assert_eq!(tier.stats().compile_errors, 1);
        tier.sync().unwrap();
        assert_eq!(
            tier.stats().compile_errors,
            1,
            "a broken tree is not recompiled until it changes"
        );
        assert_eq!(tier.stats().cache_hits, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_cache_is_rebuilt_not_trusted() {
        let root = temp_root("corrupt");
        let src = root.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("a.go"), RACY).unwrap();
        let config = RaceTierConfig::in_state_dir(src, &root);
        std::fs::write(&config.cache_path, "{ not json").unwrap();
        let mut tier = RaceTier::open(config).unwrap();
        let suspects = tier.sync().unwrap();
        assert_eq!(tier.stats().cache_misses, 1);
        assert!(!suspects.is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
