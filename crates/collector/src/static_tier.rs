//! The daemon's static analysis tier: a persistent, content-addressed
//! criterion-2 verdict cache.
//!
//! The offline pipeline parses every source file on each sweep; a
//! long-running daemon cannot afford that on its hot path. This module
//! gives the daemon the same criterion-2 transient-op filter at near
//! zero steady-state cost:
//!
//! * each `.go` file under the source directory is fingerprinted
//!   (FNV-64 over its bytes);
//! * on a fingerprint **miss** the file is parsed once and its transient
//!   verdicts ([`leakprof::VerdictSet::compute_file`]) are stored in a
//!   versioned, deterministic `verdicts.json` next to the daemon's other
//!   durable state;
//! * on a **hit** the cached verdicts are reused — no parsing, no AST.
//!
//! Because the criterion-2 analysis is file-local, per-file
//! recomputation is exact: a warm cache answers every filter query the
//! AST walk would, byte-for-byte (pinned by tests in
//! `leakprof::filter`). Misses are analyzed in parallel across a small
//! worker pool. The cache survives daemon restarts via the same state
//! directory machinery as snapshots and the report ledger; a corrupt or
//! version-skewed cache file is discarded and rebuilt, never trusted.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use leakprof::{ChanOpKind, VerdictSet};
use serde::{Deserialize, Serialize};

/// On-disk format version of `verdicts.json`; bumped whenever the
/// verdict semantics or the entry layout change so stale caches are
/// rebuilt instead of misread.
pub const VERDICT_CACHE_VERSION: u32 = 1;

/// Static-tier configuration.
#[derive(Debug, Clone)]
pub struct StaticTierConfig {
    /// Root of the service source tree; file keys are forward-slash
    /// paths relative to this directory, matching in-profile paths.
    pub source_dir: PathBuf,
    /// Where the verdict cache persists (defaults to
    /// `<state_dir>/verdicts.json` when wired into the daemon).
    pub cache_path: PathBuf,
    /// Worker threads for analyzing cache misses (min 1).
    pub threads: usize,
}

impl StaticTierConfig {
    /// Config with the cache stored inside `state_dir`.
    pub fn in_state_dir(source_dir: PathBuf, state_dir: &Path) -> StaticTierConfig {
        StaticTierConfig {
            source_dir,
            cache_path: state_dir.join("verdicts.json"),
            threads: 4,
        }
    }
}

/// Lifetime counters and last-sync timings, served in `/status` and
/// `/metrics`.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticTierStats {
    /// Completed cache syncs.
    pub syncs: u64,
    /// Files answered from cache (fingerprint match, no parse).
    pub cache_hits: u64,
    /// Files whose fingerprint missed the cache.
    pub cache_misses: u64,
    /// Files actually parsed and analyzed.
    pub files_parsed: u64,
    /// Files that failed to parse (left uncovered; the filter falls
    /// back to its conservative keep-the-suspect default for them).
    pub parse_errors: u64,
    /// Files covered by the current verdict set.
    pub covered_files: u64,
    /// Wall time of the last directory scan + fingerprint pass (µs).
    pub last_scan_us: u64,
    /// Wall time of the last miss-analysis pass (µs); ~0 when warm.
    pub last_analyze_us: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CacheEntry {
    /// FNV-64 fingerprint of the file bytes the verdicts were computed
    /// from.
    fp: u64,
    /// Whether the file parsed; `false` entries pin the fingerprint so
    /// a broken file is not re-parsed every cycle, but contribute no
    /// coverage.
    parsed: bool,
    /// Lines/op-kinds judged transient by criterion 2.
    transient: Vec<(u32, ChanOpKind)>,
}

#[derive(Debug, Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    entries: BTreeMap<String, CacheEntry>,
}

/// The static tier: verdict cache + sync machinery.
pub struct StaticTier {
    config: StaticTierConfig,
    entries: BTreeMap<String, CacheEntry>,
    stats: StaticTierStats,
    tracer: obs::Tracer,
}

impl std::fmt::Debug for StaticTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticTier")
            .field("config", &self.config)
            .field("entries", &self.entries)
            .field("stats", &self.stats)
            .finish()
    }
}

impl StaticTier {
    /// Opens the tier, loading any persisted cache. A missing,
    /// corrupt, or version-skewed cache file yields an empty cache (the
    /// next sync rebuilds it); only genuine IO errors propagate.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the cache file exists but cannot be read.
    pub fn open(config: StaticTierConfig) -> io::Result<StaticTier> {
        let entries = match std::fs::read_to_string(&config.cache_path) {
            Ok(text) => match serde_json::from_str::<CacheFile>(&text) {
                Ok(cache) if cache.version == VERDICT_CACHE_VERSION => cache.entries,
                _ => BTreeMap::new(),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e),
        };
        Ok(StaticTier {
            config,
            entries,
            stats: StaticTierStats::default(),
            tracer: obs::Tracer::disabled(),
        })
    }

    /// Installs the tracer that [`StaticTier::sync`] records its spans
    /// into.
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }

    /// Synchronizes the cache with the source tree and returns the
    /// assembled verdict set.
    ///
    /// Scans the source directory, fingerprints every `.go` file,
    /// analyzes only fingerprint misses (in parallel), prunes entries
    /// for deleted files, and persists the cache when it changed. On a
    /// warm tree this does no parsing at all — just the scan.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the source directory cannot be walked or
    /// the cache file cannot be written.
    pub fn sync(&mut self) -> io::Result<VerdictSet> {
        let mut span = self.tracer.start(obs::stage::STATIC_SYNC, "");
        let hits_before = self.stats.cache_hits;
        let misses_before = self.stats.cache_misses;
        let scan_start = Instant::now();
        let mut sources: Vec<(String, String, u64)> = Vec::new();
        let mut files = Vec::new();
        walk_go_files(&self.config.source_dir, &mut files)?;
        for path in files {
            let text = std::fs::read_to_string(&path)?;
            let rel = rel_key(&self.config.source_dir, &path);
            let fp = fnv64(text.as_bytes());
            sources.push((rel, text, fp));
        }
        self.stats.last_scan_us = scan_start.elapsed().as_micros() as u64;

        let analyze_start = Instant::now();
        let mut misses: Vec<&(String, String, u64)> = Vec::new();
        for entry in &sources {
            match self.entries.get(&entry.0) {
                Some(cached) if cached.fp == entry.2 => self.stats.cache_hits += 1,
                _ => {
                    self.stats.cache_misses += 1;
                    misses.push(entry);
                }
            }
        }
        let analyzed = analyze_parallel(&misses, self.config.threads.max(1));
        self.stats.files_parsed += analyzed.len() as u64;
        let mut dirty = false;
        for (rel, fp, verdicts) in analyzed {
            let entry = match verdicts {
                Some(transient) => CacheEntry {
                    fp,
                    parsed: true,
                    transient,
                },
                None => {
                    self.stats.parse_errors += 1;
                    CacheEntry {
                        fp,
                        parsed: false,
                        transient: Vec::new(),
                    }
                }
            };
            self.entries.insert(rel, entry);
            dirty = true;
        }
        let live: std::collections::BTreeSet<&str> =
            sources.iter().map(|(rel, _, _)| rel.as_str()).collect();
        let before = self.entries.len();
        self.entries.retain(|rel, _| live.contains(rel.as_str()));
        dirty |= self.entries.len() != before;
        self.stats.last_analyze_us = analyze_start.elapsed().as_micros() as u64;

        if dirty {
            self.persist()?;
        }
        let mut vs = VerdictSet::new();
        for (rel, entry) in &self.entries {
            if entry.parsed {
                vs.insert_file(rel, &entry.transient);
            }
        }
        self.stats.covered_files = vs.files() as u64;
        self.stats.syncs += 1;
        span.attr("files", sources.len());
        span.attr("cache_hits", self.stats.cache_hits - hits_before);
        span.attr("parsed", self.stats.cache_misses - misses_before);
        Ok(vs)
    }

    /// Current counters and timings.
    pub fn stats(&self) -> &StaticTierStats {
        &self.stats
    }

    /// Where the cache persists.
    pub fn cache_path(&self) -> &Path {
        &self.config.cache_path
    }

    /// Writes the cache atomically (temp file + rename), matching the
    /// crash-safety discipline of the snapshot store.
    fn persist(&self) -> io::Result<()> {
        if let Some(parent) = self.config.cache_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let cache = CacheFile {
            version: VERDICT_CACHE_VERSION,
            entries: self.entries.clone(),
        };
        let text = serde_json::to_string_pretty(&cache).expect("cache serializes");
        let tmp = self.config.cache_path.with_extension("json.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &self.config.cache_path)
    }
}

/// One analyzed miss: `(rel_path, fingerprint, verdicts)`, where the
/// verdicts are `None` when the file failed to parse.
type AnalyzedFile = (String, u64, Option<Vec<(u32, ChanOpKind)>>);

/// Parses and analyzes missed files across a worker pool.
fn analyze_parallel(misses: &[&(String, String, u64)], threads: usize) -> Vec<AnalyzedFile> {
    if misses.is_empty() {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(misses.len()));
    let workers = threads.min(misses.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((rel, text, fp)) = misses.get(i) else {
                    break;
                };
                let verdicts = minigo::parse_file(text, rel)
                    .ok()
                    .map(|file| VerdictSet::compute_file(&file));
                results
                    .lock()
                    .expect("worker poisoned")
                    .push((rel.clone(), *fp, verdicts));
            });
        }
    });
    results.into_inner().expect("worker poisoned")
}

/// Collects every `.go` file under `dir`, depth-first.
fn walk_go_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk_go_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "go") {
            out.push(path);
        }
    }
    Ok(())
}

/// The cache key for `path`: forward-slash relative to `root`, matching
/// the `pkg/file.go` paths goroutine profiles carry.
fn rel_key(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// FNV-1a 64-bit over raw bytes: stable across runs and platforms,
/// which is all a change-detection fingerprint needs.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leakprofd-static-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const LEAKY: &str = "package pay\n\nfunc Serve(n int) {\n\tch := make(chan int)\n\tfor i := 0; i < n; i++ {\n\t\tgo func() {\n\t\t\tch <- i\n\t\t}()\n\t}\n\tfirst := <-ch\n\t_ = first\n}\n";
    const TRANSIENT: &str = "package poll\n\nimport \"time\"\n\nfunc Tickloop() {\n\tfor {\n\t\tselect {\n\t\tcase <-time.Tick(1):\n\t\t\treturn\n\t\t}\n\t}\n}\n";

    #[test]
    fn cold_sync_parses_then_warm_sync_hits() {
        let root = temp_root("warm");
        let src = root.join("src");
        std::fs::create_dir_all(src.join("pay")).unwrap();
        std::fs::write(src.join("pay/serve.go"), LEAKY).unwrap();
        std::fs::write(src.join("pay/poll.go"), TRANSIENT).unwrap();
        let config = StaticTierConfig::in_state_dir(src.clone(), &root);

        let mut tier = StaticTier::open(config.clone()).unwrap();
        let vs = tier.sync().unwrap();
        assert_eq!(tier.stats().cache_misses, 2);
        assert_eq!(tier.stats().files_parsed, 2);
        assert_eq!(tier.stats().cache_hits, 0);
        assert_eq!(vs.files(), 2);
        assert!(vs.covers("pay/poll.go"));

        let vs2 = tier.sync().unwrap();
        assert_eq!(tier.stats().cache_hits, 2);
        assert_eq!(tier.stats().files_parsed, 2, "warm sync must not re-parse");
        assert_eq!(vs, vs2, "warm verdicts identical to cold");

        // A fresh process on the same cache path: zero parses.
        let mut tier2 = StaticTier::open(config).unwrap();
        let vs3 = tier2.sync().unwrap();
        assert_eq!(
            tier2.stats().files_parsed,
            0,
            "restart must reuse the cache"
        );
        assert_eq!(tier2.stats().cache_hits, 2);
        assert_eq!(vs, vs3);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn edits_and_deletes_invalidate_only_the_changed_file() {
        let root = temp_root("edit");
        let src = root.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("a.go"), LEAKY).unwrap();
        std::fs::write(src.join("b.go"), TRANSIENT).unwrap();
        let mut tier =
            StaticTier::open(StaticTierConfig::in_state_dir(src.clone(), &root)).unwrap();
        tier.sync().unwrap();
        assert_eq!(tier.stats().files_parsed, 2);

        std::fs::write(src.join("a.go"), LEAKY.replace("pay", "billing")).unwrap();
        tier.sync().unwrap();
        assert_eq!(
            tier.stats().files_parsed,
            3,
            "only the edited file re-parses"
        );
        assert_eq!(tier.stats().cache_hits, 1);

        std::fs::remove_file(src.join("b.go")).unwrap();
        let vs = tier.sync().unwrap();
        assert!(!vs.covers("b.go"), "deleted files leave the verdict set");
        assert_eq!(vs.files(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn parse_errors_are_pinned_not_retried_and_not_covered() {
        let root = temp_root("err");
        let src = root.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("bad.go"), "package p\nfunc {{{\n").unwrap();
        let mut tier =
            StaticTier::open(StaticTierConfig::in_state_dir(src.clone(), &root)).unwrap();
        let vs = tier.sync().unwrap();
        assert_eq!(tier.stats().parse_errors, 1);
        assert!(!vs.covers("bad.go"));
        tier.sync().unwrap();
        assert_eq!(
            tier.stats().files_parsed,
            1,
            "a broken file is not re-parsed until it changes"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_cache_is_rebuilt_not_trusted() {
        let root = temp_root("corrupt");
        let src = root.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("a.go"), LEAKY).unwrap();
        let config = StaticTierConfig::in_state_dir(src, &root);
        std::fs::write(&config.cache_path, "{ not json").unwrap();
        let mut tier = StaticTier::open(config).unwrap();
        tier.sync().unwrap();
        assert_eq!(tier.stats().files_parsed, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
