//! Adaptive scrape-interval control.
//!
//! A fixed `--interval-ms` wastes cycles on a healthy fleet and lags on
//! a regressing one. The controller drives the interval from the trend
//! engine instead: while the top-K membership is stable and no site's
//! RMS slope or z-score fires, the interval *backs off* geometrically
//! toward `max_ms`; the moment a new site enters the ranking, a slope
//! crosses the regression threshold, or a step-change anomaly fires,
//! it *tightens* toward `min_ms` so the regression is sampled densely
//! while it develops. Every decision carries a human-readable reason
//! that lands in span attributes, `/health`, `/metrics`, and the
//! `leakprofd top` dashboard.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Controller tuning.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Master switch; disabled means the interval never moves.
    pub enabled: bool,
    /// Tightest (fastest) interval.
    pub min_ms: u64,
    /// Most relaxed interval.
    pub max_ms: u64,
    /// Interval a fresh daemon starts at.
    pub start_ms: u64,
    /// Quiet cycles required before one back-off step.
    pub backoff_after: u64,
    /// Multiplier per tighten step (< 1).
    pub tighten_factor: f64,
    /// Multiplier per back-off step (> 1).
    pub backoff_factor: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            enabled: false,
            min_ms: 250,
            max_ms: 8_000,
            start_ms: 1_000,
            backoff_after: 5,
            tighten_factor: 0.5,
            backoff_factor: 1.5,
        }
    }
}

impl AdaptiveConfig {
    /// An enabled config spanning `[min_ms, max_ms]`, starting at
    /// `start_ms` (clamped into the band).
    pub fn enabled(min_ms: u64, max_ms: u64, start_ms: u64) -> AdaptiveConfig {
        let min_ms = min_ms.max(1);
        let max_ms = max_ms.max(min_ms);
        AdaptiveConfig {
            enabled: true,
            min_ms,
            max_ms,
            start_ms: start_ms.clamp(min_ms, max_ms),
            ..AdaptiveConfig::default()
        }
    }
}

/// Which way the last decision moved the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Interval decreased (regression signal).
    Tighten,
    /// Interval increased (stable streak).
    BackOff,
    /// No change.
    Hold,
}

/// One cycle's decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Decision {
    /// Which way the interval moved.
    pub direction: Direction,
    /// The interval after the decision (ms).
    pub interval_ms: u64,
    /// Why.
    pub reason: String,
}

/// Controller state surfaced in `/status` and `/health`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveStatus {
    /// Whether adaptivity is on.
    pub enabled: bool,
    /// Current interval (ms).
    pub interval_ms: u64,
    /// Reason for the most recent interval *change* ("start" before
    /// any).
    pub last_change_reason: String,
    /// Cycle of the most recent change (0 before any).
    pub last_change_cycle: u64,
    /// Tighten steps taken over the daemon lifetime.
    pub tightened_total: u64,
    /// Back-off steps taken over the daemon lifetime.
    pub backed_off_total: u64,
    /// Consecutive quiet cycles so far.
    pub stable_cycles: u64,
}

/// The controller. Feed it one observation per cycle.
#[derive(Debug)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    current_ms: u64,
    stable_cycles: u64,
    last_change_reason: String,
    last_change_cycle: u64,
    tightened_total: u64,
    backed_off_total: u64,
    prev_topk: Option<BTreeSet<String>>,
}

impl AdaptiveController {
    /// A controller at `config.start_ms`.
    pub fn new(config: AdaptiveConfig) -> AdaptiveController {
        let current_ms = config.start_ms.clamp(config.min_ms, config.max_ms);
        AdaptiveController {
            config,
            current_ms,
            stable_cycles: 0,
            last_change_reason: "start".into(),
            last_change_cycle: 0,
            tightened_total: 0,
            backed_off_total: 0,
            prev_topk: None,
        }
    }

    /// The interval the next cycle should wait.
    pub fn interval_ms(&self) -> u64 {
        self.current_ms
    }

    /// Whether the controller is live.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Folds one cycle's signals into the controller: the current top-K
    /// fingerprints, the fingerprints whose trend classified as
    /// regressing, and the fingerprints whose z-score fired. Returns
    /// the decision (also readable later via [`Self::status`]).
    pub fn observe(
        &mut self,
        cycle: u64,
        topk: &BTreeSet<String>,
        regressing: &[String],
        anomalies: &[String],
    ) -> Decision {
        if !self.config.enabled {
            return self.hold("adaptivity disabled");
        }
        let new_sites: Vec<&String> = match &self.prev_topk {
            Some(prev) => topk.difference(prev).collect(),
            // First observation: everything is "new"; establish the
            // baseline without reacting to it.
            None => Vec::new(),
        };
        let trigger = if let Some(fp) = new_sites.first() {
            Some(format!("new site in top-K: {fp}"))
        } else if let Some(fp) = anomalies.first() {
            Some(format!("step anomaly at {fp}"))
        } else {
            regressing
                .first()
                .map(|fp| format!("regressing slope at {fp}"))
        };
        self.prev_topk = Some(topk.clone());
        match trigger {
            Some(reason) => {
                self.stable_cycles = 0;
                let next = ((self.current_ms as f64 * self.config.tighten_factor) as u64)
                    .max(self.config.min_ms);
                if next < self.current_ms {
                    self.current_ms = next;
                    self.tightened_total += 1;
                    self.last_change_reason = reason.clone();
                    self.last_change_cycle = cycle;
                    Decision {
                        direction: Direction::Tighten,
                        interval_ms: next,
                        reason,
                    }
                } else {
                    self.hold(&format!("{reason} (already at min)"))
                }
            }
            None => {
                self.stable_cycles += 1;
                if self.stable_cycles >= self.config.backoff_after {
                    let next = (((self.current_ms as f64 * self.config.backoff_factor) as u64)
                        .max(self.current_ms + 1))
                    .min(self.config.max_ms);
                    if next > self.current_ms {
                        let reason = format!(
                            "stable for {} cycle(s): top-K unchanged, no slope/anomaly",
                            self.stable_cycles
                        );
                        self.stable_cycles = 0;
                        self.current_ms = next;
                        self.backed_off_total += 1;
                        self.last_change_reason = reason.clone();
                        self.last_change_cycle = cycle;
                        return Decision {
                            direction: Direction::BackOff,
                            interval_ms: next,
                            reason,
                        };
                    }
                    self.stable_cycles = 0;
                    return self.hold("stable (already at max)");
                }
                self.hold("stable")
            }
        }
    }

    fn hold(&self, reason: &str) -> Decision {
        Decision {
            direction: Direction::Hold,
            interval_ms: self.current_ms,
            reason: reason.into(),
        }
    }

    /// Snapshot for `/status` and `/health`.
    pub fn status(&self) -> AdaptiveStatus {
        AdaptiveStatus {
            enabled: self.config.enabled,
            interval_ms: self.current_ms,
            last_change_reason: self.last_change_reason.clone(),
            last_change_cycle: self.last_change_cycle,
            tightened_total: self.tightened_total,
            backed_off_total: self.backed_off_total,
            stable_cycles: self.stable_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn controller() -> AdaptiveController {
        AdaptiveController::new(AdaptiveConfig::enabled(250, 8000, 1000))
    }

    #[test]
    fn new_topk_site_tightens() {
        let mut c = controller();
        let base = set(&["a"]);
        c.observe(1, &base, &[], &[]); // baseline
        let d = c.observe(2, &set(&["a", "b"]), &[], &[]);
        assert_eq!(d.direction, Direction::Tighten);
        assert_eq!(d.interval_ms, 500);
        assert!(d.reason.contains("new site in top-K: b"), "{}", d.reason);
    }

    #[test]
    fn regression_and_anomaly_tighten_until_min() {
        let mut c = controller();
        let base = set(&["a"]);
        c.observe(1, &base, &[], &[]);
        let d = c.observe(2, &base, &["a".into()], &[]);
        assert_eq!(d.direction, Direction::Tighten);
        assert_eq!(d.interval_ms, 500);
        let d = c.observe(3, &base, &[], &["a".into()]);
        assert_eq!(d.interval_ms, 250);
        // Floor reached: signal keeps firing but the interval holds.
        let d = c.observe(4, &base, &["a".into()], &[]);
        assert_eq!(d.direction, Direction::Hold);
        assert_eq!(d.interval_ms, 250);
        assert!(d.reason.contains("already at min"));
        assert_eq!(c.status().tightened_total, 2);
    }

    #[test]
    fn stability_backs_off_toward_max() {
        let mut c = controller();
        let base = set(&["a"]);
        let mut backed_off = 0;
        let mut last = 1000;
        for cycle in 1..60 {
            let d = c.observe(cycle, &base, &[], &[]);
            if d.direction == Direction::BackOff {
                assert!(d.interval_ms > last);
                last = d.interval_ms;
                backed_off += 1;
            }
        }
        assert!(backed_off >= 4, "backed off {backed_off} times");
        assert_eq!(last, 8000, "reaches max and stays");
        assert_eq!(c.status().backed_off_total, backed_off);
    }

    #[test]
    fn disabled_controller_never_moves() {
        let mut c = AdaptiveController::new(AdaptiveConfig {
            enabled: false,
            ..AdaptiveConfig::default()
        });
        for cycle in 1..20 {
            let d = c.observe(cycle, &set(&["a"]), &["a".into()], &[]);
            assert_eq!(d.direction, Direction::Hold);
            assert_eq!(d.interval_ms, 1000);
        }
    }

    #[test]
    fn first_observation_is_a_baseline_not_a_signal() {
        let mut c = controller();
        let d = c.observe(1, &set(&["a", "b", "c"]), &[], &[]);
        assert_eq!(d.direction, Direction::Hold, "{}", d.reason);
    }
}
