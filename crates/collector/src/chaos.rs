//! Chaos harness: a deterministic fault-schedule driver that shakes the
//! daemon through scrape faults, instance churn (targets dying and
//! recovering), and hard kill/restart — used by `tests/chaos.rs` and the
//! `leakprofd chaos` demo mode.
//!
//! Everything is derived from a seed via [`SplitMix64`], so a failing
//! run is replayable bit-for-bit: the same seed produces the same fault
//! schedule, the same fleet, and (modulo wall-clock latencies) the same
//! daemon decisions.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use gosim::rng::SplitMix64;

use crate::breaker::BreakerConfig;
use crate::daemon::{Daemon, DaemonConfig, DaemonStatus};
use crate::demo::DemoFleet;
use crate::endpoints::Fault;
use crate::scrape::ScrapeConfig;

/// Fault kinds the scheduler can inject (mirrors [`Fault`], minus the
/// payload so schedules stay serializable-by-eye in debug output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Respond slower than the scraper's read deadline.
    Stall,
    /// Close the connection mid-body.
    DropMidBody,
    /// Serve syntactically invalid JSON.
    CorruptJson,
    /// Accept, then close without responding (a dead instance).
    Dead,
}

impl ChaosFault {
    /// Maps to a hub-level delivery fault, scaled to the scraper's read
    /// deadline so a stall reliably trips it.
    pub fn as_fault(self, read_timeout: Duration) -> Fault {
        match self {
            ChaosFault::Stall => Fault::Delay(read_timeout * 3),
            ChaosFault::DropMidBody => Fault::DropMidBody,
            ChaosFault::CorruptJson => Fault::CorruptJson,
            ChaosFault::Dead => Fault::CloseBeforeResponse,
        }
    }

    fn from_roll(roll: u64) -> ChaosFault {
        match roll % 4 {
            0 => ChaosFault::Stall,
            1 => ChaosFault::DropMidBody,
            2 => ChaosFault::CorruptJson,
            _ => ChaosFault::Dead,
        }
    }
}

/// What happens around one daemon cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleScript {
    /// Faults to inject before the cycle (target index, kind).
    pub inject: Vec<(usize, ChaosFault)>,
    /// Target indices healed before the cycle.
    pub heal: Vec<usize>,
    /// Kill the daemon (drop, no clean shutdown) after the cycle and
    /// restart it from durable state.
    pub kill_after: bool,
}

/// Schedule-generation tuning (rates per thousand, so plans stay integer
/// and reproducible).
#[derive(Debug, Clone)]
pub struct ChaosPlanConfig {
    /// Chance per cycle (‰) of injecting a fault on a random target.
    pub fault_per_mille: u32,
    /// Chance per cycle (‰) for each faulted target to recover.
    pub heal_per_mille: u32,
    /// Kill + restart the daemon after every Nth cycle (0 = never).
    pub restart_every: u64,
}

impl Default for ChaosPlanConfig {
    fn default() -> Self {
        ChaosPlanConfig {
            fault_per_mille: 600,
            heal_per_mille: 400,
            restart_every: 4,
        }
    }
}

/// A fully materialized, deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// One script per daemon cycle.
    pub cycles: Vec<CycleScript>,
}

impl ChaosPlan {
    /// Generates the schedule for `n_cycles` cycles over `n_targets`
    /// targets. Same inputs → same plan.
    pub fn generate(seed: u64, n_cycles: u64, n_targets: usize, config: &ChaosPlanConfig) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut faulted = vec![false; n_targets];
        let mut cycles = Vec::with_capacity(n_cycles as usize);
        for cycle in 1..=n_cycles {
            let mut script = CycleScript::default();
            if n_targets > 0 && rng.next_below(1000) < config.fault_per_mille as u64 {
                let idx = rng.next_below(n_targets as u64) as usize;
                let fault = ChaosFault::from_roll(rng.next_below(4));
                faulted[idx] = true;
                script.inject.push((idx, fault));
            }
            for (idx, f) in faulted.iter_mut().enumerate() {
                if *f
                    && !script.inject.iter().any(|(i, _)| *i == idx)
                    && rng.next_below(1000) < config.heal_per_mille as u64
                {
                    *f = false;
                    script.heal.push(idx);
                }
            }
            script.kill_after =
                config.restart_every > 0 && cycle % config.restart_every == 0 && cycle != n_cycles;
            cycles.push(script);
        }
        ChaosPlan { cycles }
    }
}

/// Full chaos-run configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fleet, the scraper jitter, and the fault schedule.
    pub seed: u64,
    /// Fleet size.
    pub instances: usize,
    /// Daemon cycles to drive.
    pub cycles: u64,
    /// Schedule tuning.
    pub plan: ChaosPlanConfig,
    /// Durable state directory for the daemon under test.
    pub state_dir: PathBuf,
    /// Scraper tuning (deadlines kept tight so faulted cycles stay fast).
    pub scrape: ScrapeConfig,
    /// Checkpoint period for the daemon under test.
    pub snapshot_every: u64,
}

impl ChaosConfig {
    /// A configuration suitable for tests and the CLI demo: small fleet,
    /// tight deadlines, frequent restarts.
    pub fn quick(seed: u64, state_dir: PathBuf) -> Self {
        ChaosConfig {
            seed,
            instances: 8,
            cycles: 12,
            plan: ChaosPlanConfig::default(),
            state_dir,
            scrape: ScrapeConfig {
                connect_timeout: Duration::from_millis(200),
                read_timeout: Duration::from_millis(200),
                max_attempts: 2,
                backoff_base: Duration::from_millis(2),
                attempt_budget: Duration::from_millis(300),
                jitter_seed: seed,
                ..ScrapeConfig::default()
            },
            snapshot_every: 3,
        }
    }

    /// The per-cycle wall-time bound this configuration implies: every
    /// target can at worst burn its whole attempt budget plus one
    /// in-flight attempt, serialized over the worker pool, plus analysis
    /// slack. Chaos asserts measured cycles stay under it.
    pub fn cycle_wall_bound(&self) -> Duration {
        let per_target =
            self.scrape.attempt_budget + self.scrape.connect_timeout + self.scrape.read_timeout;
        let workers = match self.scrape.workers {
            0 => self.instances.clamp(1, 16),
            w => w.max(1),
        };
        let waves = self.instances.div_ceil(workers).max(1) as u32;
        per_target * waves + Duration::from_millis(500)
    }
}

/// What a chaos run observed. The driver records invariants instead of
/// panicking so the CLI can render them; tests assert on the fields.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Cycles actually driven.
    pub cycles_run: u64,
    /// Hard kill/restart transitions performed.
    pub restarts: u32,
    /// Faults injected over the run.
    pub faults_injected: u64,
    /// Heals applied over the run.
    pub heals: u64,
    /// Slowest observed cycle (scrape + analyze + persist), ms.
    pub max_cycle_ms: f64,
    /// Wall-time bound the run was held to (from the config).
    pub cycle_bound_ms: f64,
    /// True iff the ledger's lifetime report counter never went
    /// backwards across a kill/restart (acknowledged state survived).
    pub ledger_monotonic: bool,
    /// True iff every cycle stayed under the wall bound.
    pub latency_bounded: bool,
    /// Final daemon status after the last cycle.
    pub status: DaemonStatus,
}

impl ChaosOutcome {
    /// True when every recorded invariant held.
    pub fn invariants_hold(&self) -> bool {
        self.ledger_monotonic && self.latency_bounded
    }

    /// One-paragraph human summary for the CLI.
    pub fn render(&self) -> String {
        format!(
            "chaos: {} cycles, {} restarts, {} faults injected ({} healed)\n\
             slowest cycle {:.1} ms (bound {:.0} ms) — {}\n\
             ledger monotonic across restarts: {}\n\
             final: cycle {} recovered-from {} | {} paged / {} suppressed | breakers {} open {} half-open",
            self.cycles_run,
            self.restarts,
            self.faults_injected,
            self.heals,
            self.max_cycle_ms,
            self.cycle_bound_ms,
            if self.latency_bounded { "bounded" } else { "EXCEEDED" },
            if self.ledger_monotonic { "yes" } else { "NO (state lost)" },
            self.status.cycles,
            self.status.recovered_cycle,
            self.status.ledger.reported_total,
            self.status.ledger.suppressed_total,
            self.status.breakers.open,
            self.status.breakers.half_open,
        )
    }
}

/// Drives a real fleet + daemon through the schedule. Returns the
/// observed outcome; IO errors from daemon construction/recovery are
/// propagated (a chaos run must never need a pre-cleaned state dir —
/// recovery from whatever is there is the point).
///
/// # Errors
///
/// Returns an IO error if the hub server cannot bind or the daemon
/// cannot open its durable state.
pub fn run_chaos(
    config: &ChaosConfig,
    mut progress: impl FnMut(&str),
) -> std::io::Result<ChaosOutcome> {
    let mut demo = DemoFleet::build(config.instances, 1, config.seed);
    let server = demo.hub.serve("127.0.0.1:0", 4)?;
    let targets = demo.targets(server.addr());
    let plan = ChaosPlan::generate(
        config.seed ^ 0xC4A05,
        config.cycles,
        targets.len(),
        &config.plan,
    );

    let daemon_config = DaemonConfig {
        scrape: config.scrape.clone(),
        state_dir: Some(config.state_dir.clone()),
        snapshot_every: config.snapshot_every,
        breaker: BreakerConfig {
            failure_threshold: 2,
            probe_after_cycles: 1,
            max_probe_backoff: 8,
        },
        ..DaemonConfig::default()
    };
    let lp = |demo: &DemoFleet| demo.leakprof(20, 10);
    let mut daemon = Daemon::new(daemon_config.clone(), lp(&demo), targets.clone())?;

    let mut outcome = ChaosOutcome {
        cycles_run: 0,
        restarts: 0,
        faults_injected: 0,
        heals: 0,
        max_cycle_ms: 0.0,
        cycle_bound_ms: config.cycle_wall_bound().as_secs_f64() * 1e3,
        ledger_monotonic: true,
        latency_bounded: true,
        status: daemon.status(),
    };

    for (i, script) in plan.cycles.iter().enumerate() {
        for (idx, fault) in &script.inject {
            demo.hub.inject_fault(
                &targets[*idx].instance,
                fault.as_fault(config.scrape.read_timeout),
            );
            outcome.faults_injected += 1;
        }
        for idx in &script.heal {
            demo.hub.inject_fault(&targets[*idx].instance, Fault::None);
            outcome.heals += 1;
        }

        let begun = Instant::now();
        let report = daemon.run_cycle();
        let wall = begun.elapsed();
        outcome.cycles_run += 1;
        outcome.max_cycle_ms = outcome.max_cycle_ms.max(wall.as_secs_f64() * 1e3);
        if wall > config.cycle_wall_bound() {
            outcome.latency_bounded = false;
        }
        progress(&format!(
            "cycle {:>3}: {} | +{} faults, {} healed{}",
            i + 1,
            report.stats.render(),
            script.inject.len(),
            script.heal.len(),
            if script.kill_after { " | KILL" } else { "" }
        ));

        demo.advance_and_republish(1);

        if script.kill_after {
            let reported_before = daemon.ledger().summary().reported_total;
            drop(daemon); // hard kill: no clean shutdown, no final snapshot
            daemon = Daemon::new(daemon_config.clone(), lp(&demo), targets.clone())?;
            outcome.restarts += 1;
            let reported_after = daemon.ledger().summary().reported_total;
            if reported_after < reported_before {
                outcome.ledger_monotonic = false;
            }
            progress(&format!(
                "restart {:>2}: recovered to cycle {} (ledger {} → {})",
                outcome.restarts,
                daemon.recovered_cycle(),
                reported_before,
                reported_after
            ));
        }
    }

    outcome.status = daemon.status();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let cfg = ChaosPlanConfig::default();
        let a = ChaosPlan::generate(7, 20, 5, &cfg);
        let b = ChaosPlan::generate(7, 20, 5, &cfg);
        for (x, y) in a.cycles.iter().zip(&b.cycles) {
            assert_eq!(x.inject, y.inject);
            assert_eq!(x.heal, y.heal);
            assert_eq!(x.kill_after, y.kill_after);
        }
        let c = ChaosPlan::generate(8, 20, 5, &cfg);
        assert!(
            a.cycles
                .iter()
                .zip(&c.cycles)
                .any(|(x, y)| x.inject != y.inject),
            "different seeds should differ"
        );
    }

    #[test]
    fn plan_respects_restart_cadence() {
        let plan = ChaosPlan::generate(
            1,
            9,
            3,
            &ChaosPlanConfig {
                restart_every: 3,
                ..ChaosPlanConfig::default()
            },
        );
        let kills: Vec<usize> = plan
            .cycles
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kill_after)
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(kills, vec![3, 6], "kills every 3rd cycle, never the last");
    }
}
