//! Fleet-side profile endpoints: one listener multiplexing many service
//! instances by path prefix, mirroring how the paper's collection box
//! scrapes `/debug/pprof/goroutine` across a fleet.
//!
//! Routes:
//!
//! * `GET /instances` — JSON array of registered instance ids.
//! * `GET /instance/<id>/debug/pprof/goroutine` — the instance's
//!   serialized [`gosim::GoroutineProfile`].
//! * `GET /instance/<id>/metrics` — tiny per-instance text metrics.
//!
//! A [`Fault`] can be attached per instance to exercise the scraper's
//! failure handling: delayed responses, mid-body disconnects, corrupt
//! JSON, or connections closed before any bytes are written.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gosim::GoroutineProfile;

use crate::http::{HttpServer, Request, Response, ResponseFault};

/// Delivery fault attached to a specific instance's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Serve normally.
    None,
    /// Sleep this long before responding (a slow instance; exceeds the
    /// scraper's read deadline when large enough).
    Delay(Duration),
    /// Close the connection halfway through the body.
    DropMidBody,
    /// Serve syntactically invalid JSON.
    CorruptJson,
    /// Accept the connection, then close without responding.
    CloseBeforeResponse,
}

#[derive(Default)]
struct HubState {
    /// instance id -> serialized profile JSON.
    profiles: HashMap<String, String>,
    /// instance id -> injected fault.
    faults: HashMap<String, Fault>,
    /// Registration order, so `/instances` listings are deterministic.
    order: Vec<String>,
}

/// Shared registry of instance profiles served over HTTP.
///
/// Cloning is cheap (it is an `Arc` handle): the fleet driver keeps one
/// handle to publish fresh profiles after each simulation step while the
/// HTTP server reads from another.
#[derive(Clone, Default)]
pub struct ProfileHub {
    state: Arc<Mutex<HubState>>,
}

impl ProfileHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or refreshes) an instance's profile.
    pub fn publish(&self, profile: &GoroutineProfile) {
        let body = serde_json::to_string(profile).expect("profile serializes");
        let mut st = self.state.lock().expect("hub poisoned");
        if !st.profiles.contains_key(&profile.instance) {
            st.order.push(profile.instance.clone());
        }
        st.profiles.insert(profile.instance.clone(), body);
    }

    /// Publishes every profile in a batch (one fleet sweep).
    pub fn publish_all(&self, profiles: &[GoroutineProfile]) {
        for p in profiles {
            self.publish(p);
        }
    }

    /// Attaches a delivery fault to one instance's endpoints.
    pub fn inject_fault(&self, instance: &str, fault: Fault) {
        let mut st = self.state.lock().expect("hub poisoned");
        st.faults.insert(instance.to_string(), fault);
    }

    /// Registered instance ids in registration order.
    pub fn instances(&self) -> Vec<String> {
        self.state.lock().expect("hub poisoned").order.clone()
    }

    /// Starts the HTTP server for this hub on `addr` (port 0 picks an
    /// ephemeral port; read it back with [`HttpServer::addr`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(&self, addr: &str, workers: usize) -> std::io::Result<HttpServer> {
        let hub = self.clone();
        HttpServer::serve(addr, workers, move |req: &Request| hub.route(req))
    }

    fn route(&self, req: &Request) -> Response {
        if req.path == "/instances" {
            let ids = self.instances();
            let body = serde_json::to_string(&ids).expect("ids serialize");
            return Response::json(body);
        }
        let Some(rest) = req.path.strip_prefix("/instance/") else {
            return Response::error(404, "unknown path");
        };
        let Some((id, endpoint)) = rest.split_once('/') else {
            return Response::error(404, "missing instance endpoint");
        };
        let st = self.state.lock().expect("hub poisoned");
        let Some(profile_json) = st.profiles.get(id) else {
            return Response::error(404, "unknown instance");
        };
        let fault = st.faults.get(id).copied().unwrap_or(Fault::None);
        let mut resp = match endpoint {
            "debug/pprof/goroutine" => Response::json(profile_json.clone()),
            "metrics" => {
                let goroutines = profile_json.matches("\"gid\"").count();
                Response::text(format!(
                    "# TYPE instance_goroutines gauge\ninstance_goroutines{{instance=\"{id}\"}} {goroutines}\n"
                ))
            }
            _ => return Response::error(404, "unknown instance endpoint"),
        };
        match fault {
            Fault::None => {}
            Fault::Delay(d) => resp.fault = ResponseFault::Delay(d),
            Fault::DropMidBody => resp.fault = ResponseFault::DropMidBody,
            Fault::CloseBeforeResponse => resp.fault = ResponseFault::CloseBeforeResponse,
            Fault::CorruptJson => {
                // Syntactically invalid JSON of a similar size: the
                // transfer succeeds but parsing must fail.
                let mut corrupt = resp.body;
                corrupt.truncate(corrupt.len() / 2);
                corrupt.extend_from_slice(b"\x00{{{not json");
                resp.body = corrupt;
            }
        }
        resp
    }

    /// The pprof path for an instance behind this hub.
    pub fn profile_path(instance: &str) -> String {
        format!("/instance/{instance}/debug/pprof/goroutine")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_get;
    use gosim::GoroutineProfile;
    use std::time::Duration;

    fn profile(instance: &str) -> GoroutineProfile {
        GoroutineProfile {
            instance: instance.into(),
            captured_at: 7,
            goroutines: vec![],
        }
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> Result<Vec<u8>, crate::http::HttpError> {
        http_get(
            addr,
            path,
            Duration::from_millis(500),
            Duration::from_millis(500),
        )
    }

    #[test]
    fn hub_serves_published_profiles() {
        let hub = ProfileHub::new();
        hub.publish_all(&[profile("pay-0"), profile("pay-1")]);
        let server = hub.serve("127.0.0.1:0", 2).unwrap();

        let ids = get(server.addr(), "/instances").unwrap();
        let ids: Vec<String> = serde_json::from_str(std::str::from_utf8(&ids).unwrap()).unwrap();
        assert_eq!(ids, vec!["pay-0".to_string(), "pay-1".to_string()]);

        let body = get(server.addr(), &ProfileHub::profile_path("pay-1")).unwrap();
        let p: GoroutineProfile =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(p.instance, "pay-1");
        assert_eq!(p.captured_at, 7);

        let metrics = get(server.addr(), "/instance/pay-0/metrics").unwrap();
        assert!(String::from_utf8(metrics)
            .unwrap()
            .contains("instance_goroutines"));
    }

    #[test]
    fn unknown_paths_404() {
        let hub = ProfileHub::new();
        hub.publish(&profile("a"));
        let server = hub.serve("127.0.0.1:0", 1).unwrap();
        for path in [
            "/nope",
            "/instance/a",
            "/instance/missing/metrics",
            "/instance/a/other",
        ] {
            match get(server.addr(), path) {
                Err(crate::http::HttpError::Status(404)) => {}
                other => panic!("expected 404 for {path}, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_json_fault_breaks_parsing_not_transfer() {
        let hub = ProfileHub::new();
        hub.publish(&profile("bad"));
        hub.inject_fault("bad", Fault::CorruptJson);
        let server = hub.serve("127.0.0.1:0", 1).unwrap();
        let body = get(server.addr(), &ProfileHub::profile_path("bad")).unwrap();
        let text = String::from_utf8_lossy(&body).to_string();
        assert!(serde_json::from_str::<GoroutineProfile>(&text).is_err());
    }
}
