//! Live fleet aggregator (`leakprofd fleet`): polls N shard daemons'
//! `/api/snapshot` endpoints over keep-alive connections, folds them
//! into one fleet-wide accumulator + ledger, and serves merged
//! `/status`, `/health`, `/metrics`, and `/api/snapshot`.
//!
//! Shard outages are absorbed the same way scrape-target outages are:
//! each peer sits behind a circuit breaker ([`crate::breaker`]). A dark
//! shard's **last good snapshot keeps contributing** to the merged view
//! (marked stale in `/status`), and when a shard map is loaded the
//! aggregator emits a rebalanced map version reassigning the dead
//! seat's instances to the survivors — failover is a map rollout, not
//! an operator scramble.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use leakprof::{FleetAccumulator, LeakProf, Report};
use serde::{Deserialize, Serialize};
use shardmap::{ShardIdentity, ShardMap};
use timeseries::{StoreConfig, TrendConfig, TsStore};

use obs::{EventConfig, EventLog, TraceConfig, TraceSnapshot, Tracer};

use crate::adaptive::{AdaptiveConfig, AdaptiveController};
use crate::breaker::{BreakerConfig, BreakerSet, BreakerState, Decision};
use crate::health::{classify_sites, FleetHealth};
use crate::history::TopSite;
use crate::http::{http_get, HttpConnection, HttpServer, Request, Response};
use crate::ledger::{LedgerConfig, LedgerSummary, ReportLedger};
use crate::shard::{ApiSnapshot, API_SNAPSHOT_VERSION};
use crate::stats::PromText;

/// Fleet aggregator configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The shard daemons' endpoint addresses.
    pub peers: Vec<SocketAddr>,
    /// Per-peer circuit-breaker tuning (poll counts as a cycle).
    pub breaker: BreakerConfig,
    /// The fleet's shard map, enabling failover rebalancing. `None`
    /// still merges; it just cannot reassign a dead shard's slice.
    pub map: Option<ShardMap>,
    /// Telemetry store layout for merged site trend series.
    pub ts: StoreConfig,
    /// Trend tuning for merged `/health` verdicts.
    pub trend: TrendConfig,
    /// Ledger tuning for the merged fleet ledger.
    pub ledger: LedgerConfig,
    /// Poll tracing (FLEET/MERGE stages).
    pub trace: TraceConfig,
    /// Structured event log tuning (`/logs`).
    pub events: EventConfig,
    /// Peer connect timeout.
    pub connect_timeout: Duration,
    /// Peer read timeout.
    pub read_timeout: Duration,
}

impl FleetConfig {
    /// A config polling `peers` with default tuning.
    pub fn new(peers: Vec<SocketAddr>) -> FleetConfig {
        FleetConfig {
            peers,
            breaker: BreakerConfig::default(),
            map: None,
            ts: StoreConfig::default(),
            trend: TrendConfig::default(),
            ledger: LedgerConfig::default(),
            trace: TraceConfig::default(),
            events: EventConfig::default(),
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(1000),
        }
    }
}

/// One polled shard daemon.
struct Peer {
    addr: SocketAddr,
    conn: Option<HttpConnection>,
    last: Option<ApiSnapshot>,
    consecutive_failures: u32,
    polls_ok: u64,
}

/// One peer's row in [`FleetStatus`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerStatus {
    /// The peer's endpoint address.
    pub addr: String,
    /// The peer's shard identity, once a snapshot has been seen.
    pub shard: Option<ShardIdentity>,
    /// The peer's completed cycle at its last good snapshot.
    pub cycle: u64,
    /// Targets the peer scrapes (its slice size).
    pub targets: usize,
    /// Profiles the peer has ingested.
    pub profiles_ingested: usize,
    /// The peer's circuit-breaker state (`closed`/`open`/`half-open`).
    pub breaker: String,
    /// Consecutive failed polls.
    pub consecutive_failures: u32,
    /// Whether this slice of the merged view is stale (breaker not
    /// closed, or no snapshot ever fetched).
    pub stale: bool,
}

/// The fleet aggregator's `/status` document: per-shard rows above the
/// merged fleet view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetStatus {
    /// Completed poll rounds.
    pub polls: u64,
    /// Per-shard rows, in poll order.
    pub shards: Vec<PeerStatus>,
    /// How many slices are currently stale.
    pub stale_shards: usize,
    /// The current shard-map version (`None` without a map).
    pub map_version: Option<u64>,
    /// Rebalanced map versions emitted over this aggregator's lifetime.
    pub rebalances: u64,
    /// Profiles ingested across the merged fleet.
    pub profiles_ingested: usize,
    /// Goroutines seen across the merged fleet.
    pub goroutines_seen: u64,
    /// The merged ranked top sites.
    pub top: Vec<TopSite>,
    /// The merged (deduplicated) fleet ledger counts.
    pub ledger: LedgerSummary,
}

/// The live merge tier: poll, fold, serve.
pub struct FleetAggregator {
    lp: LeakProf,
    peers: Vec<Peer>,
    breakers: BreakerSet,
    map: Option<ShardMap>,
    rebalances: u64,
    polls: u64,
    acc: FleetAccumulator,
    ledger: ReportLedger,
    ledger_config: LedgerConfig,
    ts: TsStore,
    trend: TrendConfig,
    last_report: Option<Report>,
    last_health: Option<FleetHealth>,
    controller: AdaptiveController,
    tracer: Tracer,
    events: EventLog,
    connect_timeout: Duration,
    read_timeout: Duration,
}

impl FleetAggregator {
    /// Creates an aggregator polling `config.peers` and ranking with
    /// `lp` (the same analysis config the shard daemons use).
    pub fn new(config: FleetConfig, lp: LeakProf) -> FleetAggregator {
        let tracer = Tracer::new(&config.trace);
        tracer.set_service("fleet", env!("CARGO_PKG_VERSION"));
        FleetAggregator {
            lp,
            peers: config
                .peers
                .into_iter()
                .map(|addr| Peer {
                    addr,
                    conn: None,
                    last: None,
                    consecutive_failures: 0,
                    polls_ok: 0,
                })
                .collect(),
            breakers: BreakerSet::new(config.breaker),
            map: config.map,
            rebalances: 0,
            polls: 0,
            acc: FleetAccumulator::new(),
            ledger: ReportLedger::new(config.ledger.clone()),
            ledger_config: config.ledger,
            ts: TsStore::in_memory(config.ts),
            trend: config.trend,
            last_report: None,
            last_health: None,
            controller: AdaptiveController::new(AdaptiveConfig::default()),
            tracer,
            events: EventLog::new(config.events),
            connect_timeout: config.connect_timeout,
            read_timeout: config.read_timeout,
        }
    }

    /// The aggregator's tracer (for `/trace` and exemplars).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The aggregator's structured event log (`/logs`).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Runs one poll round: fetch every reachable peer's
    /// `/api/snapshot` (keep-alive, circuit-broken), refresh the shard
    /// map's alive set from the breakers, and fold the freshest
    /// snapshot of **every** peer — live or stale — into the merged
    /// accumulator, ledger, and trend series. Returns the number of
    /// peers that answered this round.
    pub fn poll_once(&mut self) -> usize {
        self.polls += 1;
        // The fleet tier is the authoritative trace root: every poll
        // mints a fresh context, and the traceparent each peer receives
        // parents that shard's next cycle under this poll.
        let ctx = self.tracer.begin_cycle();
        let mut root = self.tracer.start(obs::stage::FLEET, "");
        root.attr("poll", self.polls);
        self.events.set_context(ctx.map(|c| c.trace_id), root.id());
        self.tracer.set_ambient(root.id());
        let tracer = self.tracer.clone();
        let mut answered = 0;
        for i in 0..self.peers.len() {
            let addr = self.peers[i].addr;
            let key = addr.to_string();
            match self.breakers.decide(&key) {
                Decision::Skip => continue,
                Decision::Scrape | Decision::Probe => {}
            }
            let mut span = tracer.start_with(obs::stage::TARGET, &key, root.id());
            let traceparent = tracer.hop(&mut span).map(|c| c.to_header());
            let ok = match Self::fetch(
                &mut self.peers[i],
                self.connect_timeout,
                self.read_timeout,
                traceparent.as_deref(),
            ) {
                Ok(snap) => {
                    self.peers[i].last = Some(snap);
                    self.peers[i].consecutive_failures = 0;
                    self.peers[i].polls_ok += 1;
                    answered += 1;
                    true
                }
                Err(e) => {
                    self.events
                        .warn("fleet", format!("poll of shard {key} failed: {e}"));
                    self.peers[i].conn = None;
                    self.peers[i].consecutive_failures += 1;
                    false
                }
            };
            span.attr("ok", ok);
            span.finish();
            self.breakers.record(&key, ok);
        }
        self.refresh_map();
        self.fold();
        root.attr("answered", answered);
        self.tracer.set_ambient(0);
        drop(root);
        // A round where any peer went unanswered is worth full detail.
        self.tracer
            .finish_cycle_flagged(self.polls, answered < self.peers.len());
        self.events.set_context(None, 0);
        answered
    }

    /// Fetches one peer's `/api/snapshot`, reusing its keep-alive
    /// connection when possible.
    fn fetch(
        peer: &mut Peer,
        connect_timeout: Duration,
        read_timeout: Duration,
        traceparent: Option<&str>,
    ) -> std::io::Result<ApiSnapshot> {
        let io_err = |m: String| std::io::Error::other(m);
        if peer.conn.is_none() {
            peer.conn = Some(
                HttpConnection::connect(peer.addr, connect_timeout, read_timeout)
                    .map_err(|e| io_err(e.to_string()))?,
            );
        }
        let conn = peer.conn.as_mut().expect("connection just ensured");
        let body = conn
            .get_with("/api/snapshot", traceparent)
            .map_err(|e| io_err(e.to_string()))?;
        let text = std::str::from_utf8(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let snap: ApiSnapshot = serde_json::from_str(text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if snap.version != API_SNAPSHOT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unsupported api snapshot version {}", snap.version),
            ));
        }
        Ok(snap)
    }

    /// Whether a peer's slice of the merged view is stale: its breaker
    /// is not closed, or it has never delivered a snapshot.
    fn peer_stale(&self, peer: &Peer) -> bool {
        peer.last.is_none() || self.breakers.state(&peer.addr.to_string()) != BreakerState::Closed
    }

    /// Reconciles the shard map's alive set with the breakers: a peer
    /// whose shard went dark gets its seat marked dead (instances
    /// reassigned to survivors by rendezvous weights), a recovered one
    /// gets its seat back. Each change emits a new map version.
    fn refresh_map(&mut self) {
        let Some(map) = &self.map else {
            return;
        };
        let mut dark: BTreeSet<u32> = BTreeSet::new();
        let mut lit: BTreeSet<u32> = BTreeSet::new();
        for peer in &self.peers {
            let Some(shard) = peer.last.as_ref().and_then(|s| s.shard.as_ref()) else {
                continue;
            };
            if self.peer_stale(peer) {
                dark.insert(shard.shard);
            } else {
                lit.insert(shard.shard);
            }
        }
        let to_kill: Vec<u32> = dark.iter().copied().filter(|s| map.is_alive(*s)).collect();
        let to_revive: Vec<u32> = lit.iter().copied().filter(|s| !map.is_alive(*s)).collect();
        if to_kill.is_empty() && to_revive.is_empty() {
            return;
        }
        let mut next = map.clone();
        if !to_revive.is_empty() {
            next = next.revived(&to_revive);
        }
        if !to_kill.is_empty() {
            next = next.rebalanced(&to_kill);
        }
        self.rebalances += 1;
        self.map = Some(next);
    }

    /// Folds the freshest snapshot of every peer into the merged state,
    /// in shard order (unsharded peers last, ties by address) — the
    /// same deterministic order `leakprofd merge` folds state dirs in.
    fn fold(&mut self) {
        let mut span = self.tracer.start(obs::stage::MERGE, "");
        let mut order: Vec<usize> = (0..self.peers.len())
            .filter(|&i| self.peers[i].last.is_some())
            .collect();
        order.sort_by_key(|&i| {
            let snap = self.peers[i].last.as_ref().expect("filtered to Some");
            (
                snap.shard.as_ref().map_or(u32::MAX, |s| s.shard),
                self.peers[i].addr.to_string(),
            )
        });
        span.attr("shards", order.len());
        let mut acc = FleetAccumulator::new();
        let mut ledger = ReportLedger::new(self.ledger_config.clone());
        for &i in &order {
            let snap = self.peers[i].last.as_ref().expect("filtered to Some");
            match FleetAccumulator::from_snapshot(&snap.acc) {
                Ok(shard_acc) => acc.merge(&shard_acc),
                Err(e) => self.events.error(
                    "fleet",
                    format!("bad snapshot from {}: {e}", self.peers[i].addr),
                ),
            }
            // In-memory ledger: merge_entries cannot fail to persist.
            let _ = ledger.merge_entries(snap.ledger.iter());
        }
        let report = self.lp.report_from_accumulator(&acc);
        let mut points: Vec<(String, f64)> = Vec::new();
        for s in &report.suspects {
            let fp = leakprof::series::site_fingerprint(&s.stats);
            points.push((leakprof::series::site_rms_id(&fp), s.stats.rms));
            points.push((leakprof::series::site_total_id(&fp), s.stats.total as f64));
            points.push((
                leakprof::series::site_blocked_id(&fp),
                acc.raw_site_total(&s.stats.op) as f64,
            ));
        }
        let borrowed: Vec<(&str, f64)> = points.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        if let Err(e) = self.ts.append(self.polls, &borrowed) {
            self.events
                .error("fleet", format!("telemetry append failed: {e}"));
        }
        let fps: Vec<String> = report
            .suspects
            .iter()
            .map(|s| leakprof::series::site_fingerprint(&s.stats))
            .collect();
        span.attr("suspects", report.suspects.len());
        self.last_health = Some(FleetHealth {
            cycle: self.polls,
            sites: classify_sites(&self.ts, &self.trend, &fps),
            adaptive: self.controller.status(),
        });
        self.acc = acc;
        self.ledger = ledger;
        self.last_report = Some(report);
    }

    /// Re-points peer `index` at a new address (a shard daemon
    /// restarted elsewhere). Drops the stale connection and failure
    /// streak; the breaker's history for the old address is left to
    /// age out and a fresh breaker entry tracks the new address.
    pub fn set_peer_addr(&mut self, index: usize, addr: SocketAddr) {
        let peer = &mut self.peers[index];
        peer.addr = addr;
        peer.conn = None;
        peer.consecutive_failures = 0;
    }

    /// The merged ranked report from the latest poll.
    pub fn last_report(&self) -> Option<&Report> {
        self.last_report.as_ref()
    }

    /// The merged fleet health verdicts from the latest poll.
    pub fn fleet_health(&self) -> Option<&FleetHealth> {
        self.last_health.as_ref()
    }

    /// The merged accumulator from the latest poll.
    pub fn accumulator(&self) -> &FleetAccumulator {
        &self.acc
    }

    /// The aggregator's telemetry store: merged site trend series,
    /// appended once per poll (the fleet's time axis).
    pub fn ts(&self) -> &TsStore {
        &self.ts
    }

    /// The current shard map (rebalanced as peers die and recover).
    pub fn map(&self) -> Option<&ShardMap> {
        self.map.as_ref()
    }

    /// Builds the `/status` document: one row per shard, then the
    /// merged view.
    pub fn status(&self) -> FleetStatus {
        let shards: Vec<PeerStatus> = self
            .peers
            .iter()
            .map(|p| PeerStatus {
                addr: p.addr.to_string(),
                shard: p.last.as_ref().and_then(|s| s.shard.clone()),
                cycle: p.last.as_ref().map_or(0, |s| s.cycle),
                targets: p.last.as_ref().map_or(0, |s| s.targets),
                profiles_ingested: p.last.as_ref().map_or(0, |s| s.acc.instances.len()),
                breaker: self.breakers.state(&p.addr.to_string()).to_string(),
                consecutive_failures: p.consecutive_failures,
                stale: self.peer_stale(p),
            })
            .collect();
        let stale_shards = shards.iter().filter(|s| s.stale).count();
        FleetStatus {
            polls: self.polls,
            stale_shards,
            map_version: self.map.as_ref().map(|m| m.version),
            rebalances: self.rebalances,
            profiles_ingested: self.acc.profiles_ingested(),
            goroutines_seen: self.acc.goroutines_seen(),
            top: self
                .last_report
                .as_ref()
                .map(|r| {
                    r.suspects
                        .iter()
                        .map(|s| TopSite {
                            op: s.stats.op.to_string(),
                            rms: s.stats.rms,
                            total: s.stats.total,
                            max_instance: s.stats.max_instance,
                        })
                        .collect()
                })
                .unwrap_or_default(),
            ledger: self.ledger.summary(),
            shards,
        }
    }

    /// The merged fleet as one `/api/snapshot` document (`shard: None`
    /// — the fleet view is the whole), so `leakprofd status`/`top` can
    /// point at a fleet aggregator exactly like at a daemon.
    pub fn api_snapshot(&self) -> ApiSnapshot {
        ApiSnapshot {
            version: API_SNAPSHOT_VERSION,
            cycle: self
                .peers
                .iter()
                .filter_map(|p| p.last.as_ref())
                .map(|s| s.cycle)
                .max()
                .unwrap_or(0),
            shard: None,
            targets: self
                .peers
                .iter()
                .filter_map(|p| p.last.as_ref())
                .map(|s| s.targets)
                .sum(),
            acc: self.acc.snapshot(),
            ledger: self.ledger.entries().cloned().collect(),
        }
    }

    /// Fetches every peer's `/trace` snapshot and stitches it together
    /// with the aggregator's own spans into one Chrome/Perfetto export:
    /// the fleet's `/trace` answers with the whole distributed timeline,
    /// one process lane per shard plus the fleet lane, flow arrows on
    /// every hop. Peers that fail to answer (or answer with something
    /// unparseable) are skipped with a warning event — a dark shard
    /// costs its lane, never the export.
    pub fn stitched_trace(&self) -> String {
        let mut snaps = vec![self.tracer.snapshot()];
        for peer in &self.peers {
            match http_get(peer.addr, "/trace", self.connect_timeout, self.read_timeout) {
                Ok(body) => {
                    match std::str::from_utf8(&body)
                        .map_err(|e| e.to_string())
                        .and_then(|s| {
                            serde_json::from_str::<TraceSnapshot>(s).map_err(|e| e.to_string())
                        }) {
                        Ok(snap) => snaps.push(snap),
                        Err(e) => self.events.warn(
                            "fleet",
                            format!("bad trace snapshot from {}: {e}", peer.addr),
                        ),
                    }
                }
                Err(e) => self.events.warn(
                    "fleet",
                    format!("trace fetch from {} failed: {e}", peer.addr),
                ),
            }
        }
        obs::to_chrome_stitched(&snaps)
    }

    /// Prometheus exposition for the aggregator's own `/metrics`.
    pub fn metrics_text(&self) -> String {
        let status = self.status();
        let mut p = PromText::new();
        p.family(
            "leakprofd_fleet_polls_total",
            "counter",
            "Completed fleet poll rounds.",
        );
        p.sample("leakprofd_fleet_polls_total", &[], status.polls);
        p.family(
            "leakprofd_fleet_shards",
            "gauge",
            "Polled shard daemons by slice freshness.",
        );
        p.sample(
            "leakprofd_fleet_shards",
            &[("state", "fresh")],
            status.shards.len() - status.stale_shards,
        );
        p.sample(
            "leakprofd_fleet_shards",
            &[("state", "stale")],
            status.stale_shards,
        );
        p.family(
            "leakprofd_fleet_rebalances_total",
            "counter",
            "Rebalanced shard-map versions emitted on failover.",
        );
        p.sample("leakprofd_fleet_rebalances_total", &[], status.rebalances);
        if let Some(v) = status.map_version {
            p.family(
                "leakprofd_fleet_map_version",
                "gauge",
                "Current shard-map version.",
            );
            p.sample("leakprofd_fleet_map_version", &[], v);
        }
        p.family(
            "leakprofd_fleet_profiles_ingested",
            "gauge",
            "Profiles ingested across the merged fleet.",
        );
        p.sample(
            "leakprofd_fleet_profiles_ingested",
            &[],
            status.profiles_ingested,
        );
        if let Some(report) = &self.last_report {
            p.family(
                "leakprofd_suspect_rms",
                "gauge",
                "Fleet-wide RMS blocked-goroutine impact per suspect site.",
            );
            for s in &report.suspects {
                let site = s.stats.op.to_string();
                p.sample(
                    "leakprofd_suspect_rms",
                    &[("site", site.as_str())],
                    s.stats.rms,
                );
            }
        }
        p.family(
            "leakprofd_build_info",
            "gauge",
            "Build identity; the value is always 1.",
        );
        p.sample(
            "leakprofd_build_info",
            &[("version", env!("CARGO_PKG_VERSION")), ("role", "fleet")],
            1u64,
        );
        p.family(
            "leakprofd_obs_dropped_total",
            "counter",
            "Observability records dropped because a ring was full.",
        );
        p.sample(
            "leakprofd_obs_dropped_total",
            &[("kind", "span")],
            self.tracer.spans_dropped(),
        );
        p.sample(
            "leakprofd_obs_dropped_total",
            &[("kind", "event")],
            self.events.dropped(),
        );
        if let Some(worst) = self.tracer.worst_cycle() {
            p.family(
                "leakprofd_worst_cycle_us",
                "gauge",
                "Duration of the slowest recent poll, with its trace id as an exemplar.",
            );
            let cycle = worst.cycle.to_string();
            p.sample(
                "leakprofd_worst_cycle_us",
                &[
                    ("trace_id", worst.trace_id.as_str()),
                    ("cycle", cycle.as_str()),
                ],
                worst.dur_us,
            );
        }
        p.finish()
    }
}

/// Every route [`serve_fleet_endpoints`] answers (also its 404 body).
pub fn fleet_routes() -> Vec<String> {
    vec![
        "/metrics".into(),
        "/status".into(),
        "/health".into(),
        "/flame?from=&to=".into(),
        "/flame.txt?from=&to=".into(),
        "/trace".into(),
        "/trace/self".into(),
        "/logs?level=&limit=".into(),
        "/api/snapshot".into(),
        "/api/shardmap".into(),
    ]
}

/// Serves a shared fleet aggregator's endpoints on `addr`; a driver
/// loop keeps calling [`FleetAggregator::poll_once`] through the mutex.
///
/// * `/status` — [`FleetStatus`]: per-shard freshness rows above the
///   merged view.
/// * `/health` — merged per-site trend verdicts.
/// * `/metrics` — aggregator Prometheus exposition.
/// * `/trace` — the stitched fleet-wide Chrome export: the aggregator's
///   own spans plus every reachable shard's `/trace`, one process lane
///   each, flow arrows across the hops.
/// * `/trace/self` — the aggregator's own raw [`TraceSnapshot`] (what a
///   daemon serves at `/trace`), so `leakprofd trace --addr <fleet>`
///   can restitch the fleet lane together with explicitly listed
///   processes such as push clients.
/// * `/flame` + `/flame.txt` — the merged blocked-goroutine flamegraph
///   (SVG/HTML and collapsed folded-stack text); `?from=&to=` renders
///   the differential over a poll window instead of the live view.
/// * `/logs?level=&limit=` — the aggregator's structured event log,
///   filterable by severity and capped to the newest N.
/// * `/api/snapshot` — the merged fleet as one [`ApiSnapshot`], making
///   aggregators composable with `leakprofd status`/`top`.
/// * `/api/shardmap` — the current (possibly rebalanced) map, for
///   shard daemons and operators to pick up; 404 without a map.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_fleet_endpoints(
    fleet: Arc<Mutex<FleetAggregator>>,
    addr: &str,
) -> std::io::Result<HttpServer> {
    let not_found = format!("try {}", fleet_routes().join(", "));
    HttpServer::serve(addr, 2, move |req: &Request| {
        let f = fleet.lock().expect("fleet poisoned");
        match req.path.as_str() {
            "/metrics" => Response::text(f.metrics_text()),
            "/status" => Response::json(
                serde_json::to_string_pretty(&f.status()).expect("fleet status serializes"),
            ),
            "/health" => {
                let health = match f.fleet_health() {
                    Some(h) => h.clone(),
                    None => FleetHealth {
                        cycle: 0,
                        sites: Vec::new(),
                        adaptive: f.controller.status(),
                    },
                };
                Response::json(serde_json::to_string_pretty(&health).expect("health serializes"))
            }
            p if matches!(crate::daemon::parse_query(p).0, "/flame" | "/flame.txt") => {
                let (path, params) = crate::daemon::parse_query(p);
                crate::flame::serve_flame(
                    &f.accumulator().snapshot(),
                    f.fleet_health(),
                    f.ts(),
                    &params,
                    path == "/flame",
                    "fleet — blocked goroutines (merged)",
                    "poll",
                )
            }
            "/trace" => Response::json(f.stitched_trace()),
            "/trace/self" => Response::json(
                serde_json::to_string(&f.tracer().snapshot()).expect("trace serializes"),
            ),
            p if crate::daemon::parse_query(p).0 == "/logs" => {
                let (_, params) = crate::daemon::parse_query(p);
                crate::daemon::serve_logs(f.events(), &params)
            }
            "/api/snapshot" => Response::json(
                serde_json::to_string_pretty(&f.api_snapshot()).expect("snapshot serializes"),
            ),
            "/api/shardmap" => match f.map() {
                Some(map) => Response::json(map.to_json()),
                None => Response::error(404, "no shard map loaded"),
            },
            _ => Response::error(404, &not_found),
        }
    })
}
