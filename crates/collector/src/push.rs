//! The pusher side of push-mode ingestion: what runs *inside* an
//! instance (or the `leakprofd push` client) to deliver goroutine
//! profiles to a daemon's `POST /api/push`.
//!
//! Three pieces:
//!
//! * [`WatermarkTrigger`] — decides *when* to push: immediately when
//!   the instance's blocked-goroutine count crosses a watermark (the
//!   paper's "surface within one collection interval" requirement
//!   becomes sub-interval), plus an optional heartbeat so quiet
//!   instances still report.
//! * [`backoff_schedule`] / [`backoff_delay`] — capped exponential
//!   backoff with deterministic per-(seed, instance, attempt) jitter,
//!   honoring the server's `Retry-After` hint when one arrives. The
//!   schedule is a pure function, pinned byte-for-byte in tests.
//! * [`PushClient`] — the retry loop over a kept-alive connection:
//!   backpressure statuses (`429`/`503`) sleep out the schedule and
//!   retry; permanent rejections (`400`/`413`) fail fast; transport
//!   errors redial.

use std::net::SocketAddr;
use std::time::Duration;

use gosim::rng::SplitMix64;
use gosim::GoroutineProfile;
use obs::{stage, TraceContext, Tracer};
use serde::{Deserialize, Serialize};

use crate::http::{http_post_with, HttpConnection, HttpError, ResponseMeta};

/// The path pushers POST profiles to.
pub const PUSH_PATH: &str = "/api/push";

/// Pusher tuning knobs.
#[derive(Debug, Clone)]
pub struct PushConfig {
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Read deadline per attempt.
    pub read_timeout: Duration,
    /// Attempts per profile (first try + retries).
    pub max_attempts: u32,
    /// Base backoff; attempt `k`'s delay grows as `base * 2^(k-1)`.
    pub backoff_base: Duration,
    /// Backoff ceiling — no delay (hinted or computed) exceeds this.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Reuse one kept-alive connection across pushes.
    pub keepalive: bool,
}

impl Default for PushConfig {
    fn default() -> Self {
        PushConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(500),
            max_attempts: 5,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0,
            keepalive: true,
        }
    }
}

/// The pure backoff function: delay before retry number `attempt`
/// (1-based — `attempt = 1` is the delay after the first failure).
///
/// `base * 2^(attempt-1)` plus deterministic jitter in `[0, step)`
/// drawn from a [`SplitMix64`] keyed on (seed, instance, attempt), all
/// capped at `backoff_cap`. When the server sent a `Retry-After` hint,
/// the delay honors it as a floor (never retry earlier than the server
/// asked) while keeping the cap.
pub fn backoff_delay(
    config: &PushConfig,
    instance: &str,
    attempt: u32,
    retry_after_ms: Option<u64>,
) -> Duration {
    let step = config
        .backoff_base
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let mut rng = SplitMix64::new(
        config.jitter_seed
            ^ fnv1a(instance.as_bytes())
            ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let jitter = Duration::from_micros(rng.next_below(step.as_micros().max(1) as u64));
    let mut delay = step + jitter;
    if let Some(ms) = retry_after_ms {
        delay = delay.max(Duration::from_millis(ms));
    }
    delay.min(config.backoff_cap)
}

/// The hintless backoff schedule for `attempts` consecutive failures —
/// a pure function of (config, instance), pinned byte-for-byte in
/// tests so the retry behavior can never drift silently.
pub fn backoff_schedule(config: &PushConfig, instance: &str, attempts: u32) -> Vec<Duration> {
    (1..=attempts)
        .map(|a| backoff_delay(config, instance, a, None))
        .collect()
}

/// Why a push ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// Transport-level failure on the final attempt.
    Transport(HttpError),
    /// The server rejected the profile permanently (`400`/`413`);
    /// retrying the same bytes cannot succeed.
    Rejected {
        /// The rejecting status code.
        status: u16,
        /// The server's explanation.
        detail: String,
    },
    /// Every attempt was shed (`429`/`503`); the queue never admitted
    /// the profile within the attempt budget.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Status of the final shed.
        last_status: u16,
    },
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Transport(e) => write!(f, "push transport failed: {e}"),
            PushError::Rejected { status, detail } => {
                write!(f, "push rejected with {status}: {detail}")
            }
            PushError::Exhausted {
                attempts,
                last_status,
            } => write!(
                f,
                "push shed on all {attempts} attempts (last {last_status})"
            ),
        }
    }
}

/// What an eventually-admitted push went through.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushReceipt {
    /// Attempts spent (1 = admitted first try).
    pub attempts: u32,
    /// Backpressure responses absorbed along the way.
    pub sheds: u32,
}

/// Lifetime pusher counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushStats {
    /// Profiles admitted by the daemon.
    pub pushed: u64,
    /// Backpressure responses (each slept out a backoff step).
    pub sheds: u64,
    /// Transport errors (each redialed).
    pub transport_errors: u64,
    /// Profiles that exhausted every attempt.
    pub failed: u64,
}

/// A pushing client bound to one daemon address, retrying with the
/// deterministic capped-backoff schedule and reusing a kept-alive
/// connection when configured.
pub struct PushClient {
    addr: SocketAddr,
    config: PushConfig,
    conn: Option<HttpConnection>,
    stats: PushStats,
    tracer: Tracer,
    pushes: u64,
}

impl PushClient {
    /// Creates a client pushing to `addr`.
    pub fn new(addr: SocketAddr, config: PushConfig) -> PushClient {
        PushClient {
            addr,
            config,
            conn: None,
            stats: PushStats::default(),
            tracer: Tracer::default(),
            pushes: 0,
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &PushStats {
        &self.stats
    }

    /// Records spans on `tracer` from now on: one PUSH root per push,
    /// a TARGET child per attempt (carrying the hop id sent as
    /// `traceparent`), and a BACKOFF child per backoff/Retry-After
    /// sleep. When a daemon response carries a `traceparent` header,
    /// the *next* push adopts it — a pusher behind a traced daemon
    /// joins the fleet-wide trace one push later.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The pusher's tracer (for `--trace-out` snapshots).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Pushes one profile, sleeping out the backoff schedule across
    /// shed responses.
    ///
    /// # Errors
    ///
    /// [`PushError::Rejected`] on a permanent rejection,
    /// [`PushError::Exhausted`] when every attempt was shed, and
    /// [`PushError::Transport`] when the final attempt failed below
    /// HTTP.
    pub fn push(&mut self, profile: &GoroutineProfile) -> Result<PushReceipt, PushError> {
        let body = serde_json::to_string(profile)
            .expect("profile serializes")
            .into_bytes();
        self.pushes += 1;
        // Each push is one trace cycle. An adopted daemon context (from
        // the previous push's response) parents this push under the
        // daemon's — usually the fleet's — distributed trace.
        self.tracer.begin_cycle();
        let mut root = self.tracer.start(stage::PUSH, &profile.instance);
        let root_id = root.id();
        let result = self.push_attempts(profile, &body, root_id);
        match &result {
            Ok(receipt) => {
                root.attr("attempts", receipt.attempts);
                root.attr("sheds", receipt.sheds);
            }
            Err(e) => root.attr("error", e),
        }
        root.finish();
        let flagged = match &result {
            Ok(receipt) => receipt.sheds > 0,
            Err(_) => true,
        };
        self.tracer.finish_cycle_flagged(self.pushes, flagged);
        result
    }

    /// The retry loop behind [`PushClient::push`], spans included.
    fn push_attempts(
        &mut self,
        profile: &GoroutineProfile,
        body: &[u8],
        root_id: u64,
    ) -> Result<PushReceipt, PushError> {
        let mut receipt = PushReceipt::default();
        let mut last_status = 0u16;
        for attempt in 1..=self.config.max_attempts.max(1) {
            receipt.attempts = attempt;
            let mut span = self
                .tracer
                .start_with(stage::TARGET, &profile.instance, root_id);
            span.attr("attempt", attempt);
            let traceparent = self.tracer.hop(&mut span).map(|c| c.to_header());
            let outcome = self.send(body, traceparent.as_deref());
            if let Ok(meta) = &outcome {
                span.attr("status", meta.status);
                // The daemon told us which trace it is in; the next
                // push joins it.
                if let Some(ctx) = meta.traceparent.as_deref().and_then(TraceContext::parse) {
                    self.tracer.adopt_remote(&ctx);
                }
            }
            match outcome {
                Ok(meta) if meta.status == 200 => {
                    span.finish();
                    self.stats.pushed += 1;
                    self.stats.sheds += u64::from(receipt.sheds);
                    return Ok(receipt);
                }
                Ok(meta) if meta.status == 429 || meta.status == 503 => {
                    span.finish();
                    receipt.sheds += 1;
                    last_status = meta.status;
                    if attempt < self.config.max_attempts {
                        self.backoff_sleep(profile, attempt, meta.retry_after_ms, root_id);
                    }
                }
                Ok(meta) => {
                    span.finish();
                    self.stats.failed += 1;
                    return Err(PushError::Rejected {
                        status: meta.status,
                        detail: String::from_utf8_lossy(&meta.body).into_owned(),
                    });
                }
                Err(e) => {
                    span.attr("error", &e);
                    span.finish();
                    // The connection is suspect after any transport
                    // error; drop it so the next attempt redials.
                    self.conn = None;
                    self.stats.transport_errors += 1;
                    if attempt == self.config.max_attempts.max(1) {
                        self.stats.failed += 1;
                        return Err(PushError::Transport(e));
                    }
                    self.backoff_sleep(profile, attempt, None, root_id);
                }
            }
        }
        self.stats.sheds += u64::from(receipt.sheds);
        self.stats.failed += 1;
        Err(PushError::Exhausted {
            attempts: receipt.attempts,
            last_status,
        })
    }

    /// Sleeps out one backoff step under a BACKOFF span, so shed storms
    /// show up as visible idle bars in the stitched timeline.
    fn backoff_sleep(
        &self,
        profile: &GoroutineProfile,
        attempt: u32,
        retry_after_ms: Option<u64>,
        root_id: u64,
    ) {
        let delay = backoff_delay(&self.config, &profile.instance, attempt, retry_after_ms);
        let mut span = self
            .tracer
            .start_with(stage::BACKOFF, &profile.instance, root_id);
        span.attr("delay_ms", delay.as_millis() as u64);
        if let Some(ms) = retry_after_ms {
            span.attr("retry_after_ms", ms);
        }
        std::thread::sleep(delay);
        span.finish();
    }

    /// One POST, over the pooled connection when keep-alive is on.
    fn send(&mut self, body: &[u8], traceparent: Option<&str>) -> Result<ResponseMeta, HttpError> {
        if !self.config.keepalive {
            return http_post_with(
                self.addr,
                PUSH_PATH,
                "application/json",
                body,
                self.config.connect_timeout,
                self.config.read_timeout,
                traceparent,
            );
        }
        if self.conn.is_none() {
            self.conn = Some(HttpConnection::connect(
                self.addr,
                self.config.connect_timeout,
                self.config.read_timeout,
            )?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        match conn.post_with(PUSH_PATH, "application/json", body, traceparent) {
            Ok(meta) => Ok(meta),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Decides when an instance should push: immediately when its blocked
/// count reaches the watermark, else on a heartbeat every
/// `heartbeat_every` polls (0 disables the heartbeat).
#[derive(Debug, Clone)]
pub struct WatermarkTrigger {
    watermark: u64,
    heartbeat_every: u64,
    polls_since_push: u64,
}

impl WatermarkTrigger {
    /// Creates a trigger firing at `watermark` blocked goroutines, with
    /// an optional heartbeat.
    pub fn new(watermark: u64, heartbeat_every: u64) -> WatermarkTrigger {
        WatermarkTrigger {
            watermark,
            heartbeat_every,
            polls_since_push: 0,
        }
    }

    /// Observes one poll of the instance's blocked count and returns
    /// whether to push now.
    pub fn should_push(&mut self, blocked: u64) -> bool {
        self.polls_since_push += 1;
        let fire = blocked >= self.watermark
            || (self.heartbeat_every > 0 && self.polls_since_push >= self.heartbeat_every);
        if fire {
            self.polls_since_push = 0;
        }
        fire
    }
}

/// FNV-1a, matching the ingest tier's routing hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pinned_config() -> PushConfig {
        PushConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 7,
            ..PushConfig::default()
        }
    }

    #[test]
    fn backoff_schedule_is_pinned_byte_for_byte() {
        // The full retry behavior for (seed 7, instance "pay-0"), as a
        // frozen artifact: capped exponential growth with deterministic
        // jitter. If this string ever changes, the pusher's production
        // retry behavior changed — which must be a deliberate decision,
        // not a drive-by.
        let schedule = backoff_schedule(&pinned_config(), "pay-0", 8);
        assert_eq!(
            format!("{schedule:?}"),
            "[132.222ms, 338.729ms, 795.498ms, 1.130636s, 2.671973s, 4.873363s, 5s, 5s]"
        );
        // And it is a pure function: same inputs, same bytes.
        let again = backoff_schedule(&pinned_config(), "pay-0", 8);
        assert_eq!(format!("{schedule:?}"), format!("{again:?}"));
    }

    #[test]
    fn backoff_honors_retry_after_as_floor_and_cap_as_ceiling() {
        let cfg = pinned_config();
        // A hint above the computed delay becomes the delay...
        let hinted = backoff_delay(&cfg, "pay-0", 1, Some(3_000));
        assert_eq!(hinted, Duration::from_millis(3_000));
        // ...a hint below it is already covered by the backoff...
        let low_hint = backoff_delay(&cfg, "pay-0", 1, Some(1));
        assert_eq!(low_hint, backoff_delay(&cfg, "pay-0", 1, None));
        // ...and nothing pierces the cap, hint or not.
        assert_eq!(
            backoff_delay(&cfg, "pay-0", 1, Some(60_000)),
            Duration::from_secs(5)
        );
        assert_eq!(
            backoff_delay(&cfg, "pay-0", 30, None),
            Duration::from_secs(5)
        );
    }

    #[test]
    fn jitter_decorrelates_instances() {
        let cfg = pinned_config();
        let a = backoff_schedule(&cfg, "pay-0", 4);
        let b = backoff_schedule(&cfg, "pay-1", 4);
        assert_ne!(
            format!("{a:?}"),
            format!("{b:?}"),
            "two instances must not retry in lockstep"
        );
    }

    #[test]
    fn watermark_trigger_fires_on_crossing_and_heartbeat() {
        let mut t = WatermarkTrigger::new(10, 3);
        assert!(!t.should_push(2));
        assert!(t.should_push(10), "watermark crossing fires immediately");
        assert!(!t.should_push(1));
        assert!(!t.should_push(1));
        assert!(t.should_push(1), "third quiet poll is the heartbeat");
        // Heartbeat disabled: only the watermark fires.
        let mut t = WatermarkTrigger::new(5, 0);
        for _ in 0..50 {
            assert!(!t.should_push(4));
        }
        assert!(t.should_push(5));
    }
}
