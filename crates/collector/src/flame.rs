//! Flame tier: builds [`obs::FlameGraph`]s from accumulator state and
//! answers the `/flame` + `/flame.txt` routes on daemons and fleet
//! aggregators.
//!
//! The trie is a **pure function of the accumulator snapshot** — per
//! site, the representative goroutine's stack (root-first) weighted by
//! the site's fleet-wide blocked count. No new wire state: because
//! `FleetAccumulator::merge` already makes an N-shard merge
//! byte-identical to a whole-fleet daemon's accumulator, the folded
//! flame output inherits that differential for free, at every tier.
//!
//! Three views share the builder:
//!
//! * **live** — weight = current blocked goroutines per site;
//! * **differential** (`?from=&to=`) — weight = growth of the site's
//!   blocked population between two cycle (or poll) indices, resolved
//!   through the embedded telemetry store (the `site_blocked` series
//!   is the raw cumulative ingest, so the population is its per-cycle
//!   increment), so an operator sees which subtrees *grew* — the leak,
//!   not the steady state;
//! * **self** (`/flame/self`) — the daemon's own cycle time: worker
//!   wait stacks from [`obs::WorkerBoard`] plus per-stage latency
//!   histograms, rendered with the same trie.

use std::collections::BTreeMap;

use gosim::{Frame, GoroutineProfile};
use leakprof::analyze::{AccumulatorSnapshot, SiteSnapshot};
use leakprof::series as sid;
use obs::{FlameGraph, FlameOptions, LatencyHistogram};
use timeseries::TsStore;

use crate::health::FleetHealth;
use crate::http::Response;

/// One frame's label in the trie: `func` alone for runtime frames
/// (their location is synthetic), `func file:line` otherwise — the
/// same shape Go flamegraph tooling shows.
pub fn frame_label(f: &Frame) -> String {
    if f.loc.line == 0 {
        f.func.clone()
    } else {
        format!("{} {}:{}", f.func, f.loc.file, f.loc.line)
    }
}

/// A site's stack as root-first labels, plus the length of the prefix
/// ending at the blocking *user* frame (everything below it is
/// synthetic `runtime.*`). The prefix is the verdict anchor: coloring
/// it — and letting the runtime tail inherit — is what lights up "the
/// regressing subtree".
fn site_path(site: &SiteSnapshot) -> (Vec<String>, usize) {
    let frames: Vec<&Frame> = site.representative.stack.iter().rev().collect();
    let labels: Vec<String> = frames.iter().map(|f| frame_label(f)).collect();
    let prefix = frames
        .iter()
        .rposition(|f| !f.is_runtime())
        .map_or(labels.len(), |i| i + 1);
    (labels, prefix)
}

/// Builds the flame trie from an accumulator snapshot, asking
/// `weight_of` for each site's weight (zero-weight sites vanish).
/// Deterministic: the snapshot's site order never shows because the
/// trie sorts by frame label.
pub fn build_flame<F>(snap: &AccumulatorSnapshot, mut weight_of: F) -> FlameGraph
where
    F: FnMut(&SiteSnapshot) -> u64,
{
    let mut g = FlameGraph::new();
    for site in &snap.sites {
        let (labels, _) = site_path(site);
        g.add(&labels, weight_of(site));
    }
    g
}

/// The live weight of a site: its fleet-wide blocked-goroutine count.
pub fn live_weight(site: &SiteSnapshot) -> u64 {
    site.per_instance.iter().map(|(_, n)| n).sum()
}

/// Maps verdict path prefixes (`;`-joined root-first labels, up to the
/// blocking user frame) to `/health` trend classes, for
/// [`obs::FlameOptions::verdicts`]. When two sites share a prefix the
/// worse verdict wins (regressing > flat > improving).
pub fn flame_verdicts(
    snap: &AccumulatorSnapshot,
    health: Option<&FleetHealth>,
) -> BTreeMap<String, String> {
    let Some(health) = health else {
        return BTreeMap::new();
    };
    let by_fp: BTreeMap<&str, &str> = health
        .sites
        .iter()
        .map(|s| (s.fingerprint.as_str(), s.class.as_str()))
        .collect();
    let severity = |class: &str| match class {
        "regressing" => 0,
        "flat" => 1,
        _ => 2,
    };
    let mut out: BTreeMap<String, String> = BTreeMap::new();
    for site in &snap.sites {
        let fp = sid::op_fingerprint(&site.op);
        let Some(class) = by_fp.get(fp.as_str()) else {
            continue;
        };
        let (labels, prefix) = site_path(site);
        if prefix == 0 {
            continue;
        }
        let key = labels[..prefix]
            .iter()
            .map(|l| obs::flame::sanitize_label(l))
            .collect::<Vec<_>>()
            .join(";");
        match out.get(&key) {
            Some(have) if severity(have) <= severity(class) => {}
            _ => {
                out.insert(key, class.to_string());
            }
        }
    }
    out
}

/// The daemon's self-flame: worker wait stacks (weight = µs in the
/// current wait) under each worker's name, plus a `cycle` subtree
/// splitting total per-stage latency (weight = summed µs). Stage sums
/// nest inside the cycle span's own sum, so the `cycle` frame keeps
/// only the unattributed remainder as self time.
pub fn self_flame(profile: &GoroutineProfile, stages: &[(String, LatencyHistogram)]) -> FlameGraph {
    let mut g = FlameGraph::new();
    for rec in &profile.goroutines {
        let mut labels = vec![rec.name.clone()];
        labels.extend(rec.stack.iter().rev().map(frame_label));
        g.add(&labels, rec.wait_ticks);
    }
    let cycle_sum = stages
        .iter()
        .find(|(s, _)| s == obs::stage::CYCLE)
        .map_or(0, |(_, h)| h.sum_us());
    let mut attributed = 0u64;
    for (stage, h) in stages {
        if stage == obs::stage::CYCLE {
            continue;
        }
        g.add([obs::stage::CYCLE, stage.as_str()], h.sum_us());
        attributed = attributed.saturating_add(h.sum_us());
    }
    g.add([obs::stage::CYCLE], cycle_sum.saturating_sub(attributed));
    g
}

/// The differential window parsed from `?from=&to=`.
enum Window {
    Live,
    Diff { from: u64, to: u64 },
}

fn parse_window(params: &[(String, String)]) -> Result<Window, Response> {
    let get = |k: &str| {
        params
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    let parse = |k: &str| -> Result<Option<u64>, Response> {
        match get(k).filter(|s| !s.is_empty()) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| Response::error(400, &format!("{k} must be a non-negative integer"))),
        }
    };
    match (parse("from")?, parse("to")?) {
        (None, None) => Ok(Window::Live),
        (Some(from), Some(to)) if from <= to => Ok(Window::Diff { from, to }),
        (Some(_), Some(_)) => Err(Response::error(400, "from must not exceed to")),
        _ => Err(Response::error(
            400,
            "differential flame needs both from and to",
        )),
    }
}

/// Answers one `/flame` (`html = true`) or `/flame.txt` request. Shared
/// by the daemon and the fleet aggregator: both hand in their merged
/// accumulator snapshot, latest health verdicts, and telemetry store —
/// the only difference is the title and what the time axis counts
/// (daemon cycles vs. fleet polls).
pub fn serve_flame(
    snap: &AccumulatorSnapshot,
    health: Option<&FleetHealth>,
    ts: &TsStore,
    params: &[(String, String)],
    html: bool,
    title: &str,
    time_axis: &str,
) -> Response {
    let window = match parse_window(params) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let (graph, subtitle) = match window {
        Window::Live => (
            build_flame(snap, live_weight),
            "live blocked goroutines per stack".to_string(),
        ),
        Window::Diff { from, to } => {
            // `site_blocked` is the raw cumulative ingest — every cycle
            // adds the site's current blocked count — so its per-cycle
            // increment v(t) − v(t−1) IS the blocked population at
            // cycle t. The differential weight is the growth of that
            // population across the window; flat sites (constant
            // increment) cancel to zero even though their cumulative
            // total keeps climbing. (Once `from` ages out of the raw
            // ring the rate degrades through rollup `last` values:
            // coarser, still monotone-safe under the max(0) clamp.)
            let g = build_flame(snap, |site| {
                let id = sid::site_blocked_id(&sid::op_fingerprint(&site.op));
                let rate = |t: u64| {
                    let v = ts.value_at(&id, t).unwrap_or(0.0);
                    let prev = match t.checked_sub(1) {
                        Some(p) => ts.value_at(&id, p).unwrap_or(0.0),
                        None => 0.0,
                    };
                    v - prev
                };
                (rate(to) - rate(from)).max(0.0).round() as u64
            });
            (
                g,
                format!("growth in blocked goroutines, {time_axis} {from} → {to}"),
            )
        }
    };
    if html {
        let opts = FlameOptions {
            title: title.to_string(),
            subtitle,
            verdicts: flame_verdicts(snap, health),
            ..FlameOptions::default()
        };
        Response::html(graph.render_html(&opts))
    } else {
        Response::text(graph.to_folded())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::{Frame, Gid, GoStatus, GoroutineRecord, Loc};
    use leakprof::{BlockedOp, ChanOpKind, FleetAccumulator};

    fn blocked(instance: &str, file: &str, line: u32, n: usize) -> GoroutineProfile {
        let goroutines = (0..n)
            .map(|i| GoroutineRecord {
                gid: Gid(i as u64 + 1),
                name: format!("{instance}-g{i}"),
                status: GoStatus::ChanSend { nil_chan: false },
                stack: vec![
                    Frame::runtime("runtime.gopark"),
                    Frame::runtime("runtime.chansend1"),
                    Frame::new("pay.Handle$1", Loc::new(file, line)),
                    Frame::new("main.main", Loc::new("main.go", 5)),
                ],
                created_by: Frame::new("pay.Handle", Loc::new(file, line - 1)),
                wait_ticks: 100,
                retained_bytes: 2048,
            })
            .collect();
        GoroutineProfile {
            instance: instance.into(),
            captured_at: 0,
            goroutines,
        }
    }

    #[test]
    fn flame_from_accumulator_weights_sites_by_blocked_count() {
        let mut acc = FleetAccumulator::new();
        acc.ingest(&blocked("a", "pay/h.go", 10, 3));
        acc.ingest(&blocked("b", "pay/h.go", 10, 2));
        let snap = acc.snapshot();
        let g = build_flame(&snap, live_weight);
        assert_eq!(g.total(), 5);
        let folded = g.to_folded();
        assert_eq!(
            folded,
            "main.main main.go:5;pay.Handle$1 pay/h.go:10;runtime.chansend1;runtime.gopark 5\n",
            "root-first, user frames above the runtime tail"
        );
        assert_eq!(FlameGraph::from_folded(&folded).unwrap(), g);
    }

    #[test]
    fn merged_flame_matches_whole_fleet_flame() {
        let profiles = [
            blocked("a", "pay/h.go", 10, 3),
            blocked("b", "geo/h.go", 20, 4),
            blocked("c", "pay/h.go", 10, 1),
        ];
        let mut whole = FleetAccumulator::new();
        for p in &profiles {
            whole.ingest(p);
        }
        // Two shards splitting the same fleet, merged in either order.
        let mut s1 = FleetAccumulator::new();
        s1.ingest(&profiles[0]);
        let mut s2 = FleetAccumulator::new();
        s2.ingest(&profiles[1]);
        s2.ingest(&profiles[2]);
        let mut m12 = s1.clone();
        m12.merge(&s2);
        let mut m21 = s2.clone();
        m21.merge(&s1);

        let fold = |acc: &FleetAccumulator| build_flame(&acc.snapshot(), live_weight).to_folded();
        assert_eq!(fold(&m12), fold(&whole));
        assert_eq!(fold(&m21), fold(&whole), "merge order never shows");
    }

    #[test]
    fn verdicts_anchor_at_the_blocking_user_frame() {
        let mut acc = FleetAccumulator::new();
        acc.ingest(&blocked("a", "pay/h.go", 10, 3));
        let snap = acc.snapshot();
        let fp = sid::op_fingerprint(&BlockedOp {
            kind: ChanOpKind::Send,
            loc: Loc::new("pay/h.go", 10),
        });
        let health = FleetHealth {
            cycle: 1,
            sites: vec![crate::health::SiteHealth {
                fingerprint: fp,
                class: "regressing".into(),
                rel_slope: 1.0,
                z: 9.0,
                anomaly: true,
                rms: 3.0,
                spark: vec![],
                why: String::new(),
            }],
            adaptive: crate::adaptive::AdaptiveStatus {
                enabled: false,
                interval_ms: 0,
                last_change_reason: "start".into(),
                last_change_cycle: 0,
                tightened_total: 0,
                backed_off_total: 0,
                stable_cycles: 0,
            },
        };
        let verdicts = flame_verdicts(&snap, Some(&health));
        assert_eq!(
            verdicts.get("main.main main.go:5;pay.Handle$1 pay/h.go:10"),
            Some(&"regressing".to_string()),
            "keyed by the user-frame prefix, runtime tail excluded: {verdicts:?}"
        );
        assert!(flame_verdicts(&snap, None).is_empty());
    }

    #[test]
    fn differential_flame_reports_growth_only() {
        let mut acc = FleetAccumulator::new();
        acc.ingest(&blocked("a", "pay/h.go", 10, 8));
        acc.ingest(&blocked("a2", "geo/h.go", 20, 5));
        let snap = acc.snapshot();
        let mut ts = TsStore::in_memory(Default::default());
        let fp = |file: &str, line| {
            sid::op_fingerprint(&BlockedOp {
                kind: ChanOpKind::Send,
                loc: Loc::new(file, line),
            })
        };
        let pay = sid::site_blocked_id(&fp("pay/h.go", 10));
        let geo = sid::site_blocked_id(&fp("geo/h.go", 20));
        // Cumulative totals: every cycle re-ingests the current blocked
        // population. pay's population grows 2 → 2 → 8 (cumulative
        // 2, 4, 12); geo's stays 5 (cumulative 5, 10, 15).
        ts.append(1, &[(&pay, 2.0), (&geo, 5.0)]).unwrap();
        ts.append(2, &[(&pay, 4.0), (&geo, 10.0)]).unwrap();
        ts.append(3, &[(&pay, 12.0), (&geo, 15.0)]).unwrap();

        let resp = serve_flame(&snap, None, &ts, &[], false, "t", "cycle");
        assert_eq!(resp.status, 200);
        let live = String::from_utf8(resp.body).unwrap();
        assert_eq!(FlameGraph::from_folded(&live).unwrap().total(), 13);

        let diff_params = vec![
            ("from".to_string(), "1".to_string()),
            ("to".into(), "3".into()),
        ];
        let resp = serve_flame(&snap, None, &ts, &diff_params, false, "t", "cycle");
        assert_eq!(resp.status, 200);
        let diff = String::from_utf8(resp.body).unwrap();
        let g = FlameGraph::from_folded(&diff).unwrap();
        assert_eq!(g.total(), 6, "pay's population grew 2 → 8: {diff}");
        assert!(diff.contains("pay/h.go:10"));
        assert!(!diff.contains("geo/h.go:20"), "flat sites vanish: {diff}");
    }

    #[test]
    fn flame_query_validation_rejects_half_windows() {
        let snap = FleetAccumulator::new().snapshot();
        let ts = TsStore::in_memory(Default::default());
        let bad = [
            vec![("from".to_string(), "1".to_string())],
            vec![("to".to_string(), "3".to_string())],
            vec![
                ("from".to_string(), "x".to_string()),
                ("to".into(), "3".into()),
            ],
            vec![
                ("from".to_string(), "5".to_string()),
                ("to".into(), "3".into()),
            ],
        ];
        for params in bad {
            let resp = serve_flame(&snap, None, &ts, &params, false, "t", "cycle");
            assert_eq!(resp.status, 400, "{params:?}");
        }
    }

    #[test]
    fn self_flame_folds_workers_and_stages() {
        let board = obs::WorkerBoard::new();
        let _h = board.register(
            "scrape-worker-0",
            obs::site!("collector::flame::worker_loop"),
        );
        let profile = board.self_profile("leakprofd");
        let mut cycle = LatencyHistogram::new();
        cycle.record_us(1000);
        let mut scrape = LatencyHistogram::new();
        scrape.record_us(700);
        let stages = vec![
            (obs::stage::CYCLE.to_string(), cycle),
            (obs::stage::SCRAPE.to_string(), scrape),
        ];
        let g = self_flame(&profile, &stages);
        let folded = g.to_folded();
        assert!(folded.contains("cycle;scrape 700"), "{folded}");
        assert!(
            folded.contains("cycle 300"),
            "self time is the remainder: {folded}"
        );
    }
}
