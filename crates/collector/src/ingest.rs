//! Push-mode ingestion: the tier behind `POST /api/push` that lets
//! instances send their own goroutine profiles instead of waiting to be
//! scraped, and lets one daemon survive a 200K-instance stampede.
//!
//! The pipeline is built to shed load without ever corrupting the
//! ranking:
//!
//! 1. **Admission control** — the HTTP handler does O(parse) work, then
//!    either enqueues the profile on a bounded MPSC queue or, when the
//!    queue is at its high watermark, sheds with `429` + a
//!    deterministically jittered `Retry-After` hint. Every shed is
//!    counted; nothing is dropped silently.
//! 2. **Shard absorbers** — per-shard worker threads drain the queue
//!    off the hot path into per-instance *newest-wins* maps: a newer
//!    profile for an instance replaces the older pending one
//!    (drop-oldest-per-sender), a stale arrival never overwrites a
//!    newer one (never drop-newest). Overload therefore costs
//!    freshness, not correctness: once an instance's newest profile
//!    lands, the cycle ingests exactly that profile. Each absorber also
//!    runs [`leakprof::analyze_profile`] on the profiles it keeps, so
//!    the expensive per-goroutine stack walk is paid as pushes arrive,
//!    not at cycle end.
//! 3. **Cycle-end fold** — [`IngestTier::drain_sorted`] hands the
//!    coalesced, pre-analyzed profiles to the daemon, which
//!    deduplicates them against the pull tier ([`dedupe_newest_wins`]),
//!    WALs the combined set, and folds it into the fleet accumulator
//!    via [`leakprof::FleetAccumulator::merge_profile_sites`] — exactly
//!    what `ingest` does after its own analysis, so push and pull land
//!    in one ranking and a post-overload daemon converges
//!    byte-identically to a never-overloaded one over the same final
//!    profiles (pinned in `tests/push.rs`). The fold a 10K-instance
//!    cycle pays is count merges only, sub-linear in wall time because
//!    the stack walks already happened in the absorbers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gosim::rng::SplitMix64;
use gosim::GoroutineProfile;
use obs::{EventLog, LatencyHistogram};
use serde::{Deserialize, Serialize};

use crate::http::Response;

/// Push-ingest tuning knobs.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Absorber shards (worker threads + per-instance maps); 0 means 4.
    pub shards: usize,
    /// Ingest-queue high watermark: pushes arriving while this many
    /// profiles are queued-but-unabsorbed are shed with `429`.
    pub queue_capacity: usize,
    /// Base retry hint for shed pushes; the hint is jittered over
    /// `[base, 2*base)` so 10K shed pushers don't re-stampede in sync.
    pub retry_base_ms: u64,
    /// Upper bound on the retry hint.
    pub retry_cap_ms: u64,
    /// Seed for the deterministic shed-hint jitter.
    pub jitter_seed: u64,
    /// Largest accepted push body in bytes; larger bodies get `413`.
    pub max_body_bytes: usize,
    /// Pending-connection bound for the daemon's endpoint server when
    /// push is enabled (the accept pool then sheds with `503` +
    /// `Retry-After` instead of queueing without bound); 0 = unbounded.
    pub accept_pending: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            shards: 4,
            queue_capacity: 4096,
            retry_base_ms: 250,
            retry_cap_ms: 5_000,
            jitter_seed: 0,
            max_body_bytes: 4 * 1024 * 1024,
            accept_pending: 1024,
        }
    }
}

/// Point-in-time push-tier counters (served in `/status`, rendered at
/// `/metrics`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestSummary {
    /// Pushes received (every `POST /api/push`, whatever its fate).
    pub push_total: u64,
    /// Pushes admitted onto the ingest queue.
    pub admitted_total: u64,
    /// Pushes shed with `429` at the queue high watermark.
    pub shed_total: u64,
    /// Admitted profiles that replaced an older pending profile from
    /// the same instance (drop-oldest-per-sender).
    pub coalesced_total: u64,
    /// Admitted profiles dropped on absorption because a newer profile
    /// from the same instance was already pending (never drop-newest).
    pub stale_dropped_total: u64,
    /// Pushes rejected as unparseable (`400`) or oversized (`413`).
    pub bad_request_total: u64,
    /// Connections answered `503` by the saturated accept pool.
    pub http_rejected_total: u64,
    /// Profiles handed to the analysis fold by cycle-end drains.
    pub drained_total: u64,
    /// Current ingest-queue depth (queued, not yet absorbed).
    pub queue_depth: usize,
    /// Instances with a coalesced profile pending for the next cycle.
    pub pending_instances: usize,
    /// Median observed queue depth at admission time.
    pub queue_depth_p50: u64,
    /// p99 observed queue depth at admission time.
    pub queue_depth_p99: u64,
}

/// A profile ready for the cycle-end fold. `sites` carries the
/// [`leakprof::analyze_profile`] output when an absorber already
/// computed it off the cycle path; `None` means the cycle analyzes the
/// profile itself (the pull tier's scrapes). Either way the fold lands
/// in the accumulator through the same per-profile merge, so the
/// ranking is byte-identical regardless of which tier delivered the
/// profile.
pub struct AbsorbedProfile {
    /// The profile itself (WALed and observed as-is).
    pub profile: GoroutineProfile,
    /// Pre-computed per-site analysis, when an absorber paid for it.
    pub sites: Option<leakprof::ProfileSites>,
}

impl AbsorbedProfile {
    /// Wraps a profile whose analysis the cycle will run itself.
    pub fn raw(profile: GoroutineProfile) -> AbsorbedProfile {
        AbsorbedProfile {
            profile,
            sites: None,
        }
    }
}

/// State shared between the HTTP hot path, the absorbers, and the
/// daemon's cycle loop.
struct IngestShared {
    maps: Vec<Mutex<HashMap<String, (GoroutineProfile, leakprof::ProfileSites)>>>,
    depth: AtomicUsize,
    paused: AtomicBool,
    push_total: AtomicU64,
    admitted_total: AtomicU64,
    shed_total: AtomicU64,
    coalesced_total: AtomicU64,
    stale_dropped_total: AtomicU64,
    bad_request_total: AtomicU64,
    http_rejected_total: Arc<AtomicU64>,
    drained_total: AtomicU64,
    depth_hist: Mutex<LatencyHistogram>,
}

impl IngestShared {
    /// Folds one admitted profile into its shard map, newest wins. The
    /// per-goroutine stack analysis runs here, in the absorber thread —
    /// by drain time the cycle only has count maps left to merge.
    fn absorb(&self, shard: usize, profile: GoroutineProfile) {
        let sites = leakprof::analyze_profile(&profile);
        {
            let mut map = self.maps[shard].lock().expect("shard map poisoned");
            match map.entry(profile.instance.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    // Ties go to the later arrival: queue order within a
                    // shard preserves per-instance send order.
                    if profile.captured_at >= e.get().0.captured_at {
                        e.insert((profile, sites));
                        self.coalesced_total.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.stale_dropped_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((profile, sites));
                }
            }
        }
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The push-mode ingestion tier. Create with [`IngestTier::start`],
/// share via `Arc` between the endpoint server (hot path:
/// [`IngestTier::handle_push`]) and the daemon (cycle end:
/// [`IngestTier::drain_sorted`]). Dropping the tier stops the absorber
/// threads.
pub struct IngestTier {
    config: IngestConfig,
    shared: Arc<IngestShared>,
    senders: Vec<Sender<GoroutineProfile>>,
    absorbers: Vec<std::thread::JoinHandle<()>>,
    events: EventLog,
}

impl IngestTier {
    /// Starts the absorber shards and returns the tier.
    pub fn start(config: IngestConfig) -> IngestTier {
        let shards = if config.shards == 0 { 4 } else { config.shards };
        let shared = Arc::new(IngestShared {
            maps: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            depth: AtomicUsize::new(0),
            paused: AtomicBool::new(false),
            push_total: AtomicU64::new(0),
            admitted_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            coalesced_total: AtomicU64::new(0),
            stale_dropped_total: AtomicU64::new(0),
            bad_request_total: AtomicU64::new(0),
            http_rejected_total: Arc::new(AtomicU64::new(0)),
            drained_total: AtomicU64::new(0),
            depth_hist: Mutex::new(LatencyHistogram::new()),
        });
        let mut senders = Vec::with_capacity(shards);
        let mut absorbers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = std::sync::mpsc::channel::<GoroutineProfile>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            absorbers.push(std::thread::spawn(move || absorber_loop(shard, rx, shared)));
        }
        IngestTier {
            config,
            shared,
            senders,
            absorbers,
            events: EventLog::default(),
        }
    }

    /// Installs the structured event log bad-request rejections are
    /// reported to. Call before sharing the tier; sheds are *not*
    /// logged per-occurrence (they are the hot path, and counted in
    /// `shed_total`), only malformed bodies are.
    pub fn set_events(&mut self, events: EventLog) {
        self.events = events;
    }

    /// The tier's configuration (the daemon reads the accept-pool and
    /// fold settings from here).
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The `503` counter the endpoint server's accept loop bumps; wired
    /// into [`crate::http::ServerOptions::overload_rejected`].
    pub fn http_rejected_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.shared.http_rejected_total)
    }

    /// Handles one `POST /api/push` body: parse, admit-or-shed, route
    /// to the owning shard. This is the HTTP hot path — no daemon
    /// mutex, no analysis work, one bounded queue send.
    pub fn handle_push(&self, body: &[u8]) -> Response {
        self.shared.push_total.fetch_add(1, Ordering::Relaxed);
        if body.len() > self.config.max_body_bytes {
            self.shared
                .bad_request_total
                .fetch_add(1, Ordering::Relaxed);
            self.events.warn(
                "ingest",
                format!(
                    "rejected push: body {} bytes exceeds cap {}",
                    body.len(),
                    self.config.max_body_bytes
                ),
            );
            return Response::error(413, "profile body too large");
        }
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => {
                self.shared
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                self.events
                    .warn("ingest", "rejected push: body is not UTF-8");
                return Response::error(400, "profile body is not UTF-8");
            }
        };
        let profile: GoroutineProfile = match serde_json::from_str(text) {
            Ok(p) => p,
            Err(e) => {
                self.shared
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                self.events
                    .warn("ingest", format!("rejected push: unparseable profile: {e}"));
                return Response::error(400, &format!("unparseable profile: {e}"));
            }
        };
        if profile.instance.is_empty() {
            self.shared
                .bad_request_total
                .fetch_add(1, Ordering::Relaxed);
            self.events
                .warn("ingest", "rejected push: profile missing instance id");
            return Response::error(400, "profile missing instance id");
        }
        // Admission: the queue depth is the watermark. Replacement
        // happens downstream in the shard maps, so the queue only grows
        // when pushes outrun the absorbers — the definition of
        // overload.
        let depth = self.shared.depth.load(Ordering::Relaxed);
        if depth >= self.config.queue_capacity {
            let shed = self.shared.shed_total.fetch_add(1, Ordering::Relaxed);
            let hint = self.retry_hint(&profile.instance, shed);
            return Response::retry_after(429, hint, "ingest queue at high watermark");
        }
        self.shared.depth.fetch_add(1, Ordering::Relaxed);
        self.shared
            .depth_hist
            .lock()
            .expect("depth hist poisoned")
            .record_us(depth as u64);
        let shard = shard_of(&profile.instance, self.senders.len());
        if self.senders[shard].send(profile).is_err() {
            // Absorbers only exit when the tier is dropping.
            self.shared.depth.fetch_sub(1, Ordering::Relaxed);
            return Response::error(503, "ingest tier shutting down");
        }
        self.shared.admitted_total.fetch_add(1, Ordering::Relaxed);
        Response::json(format!("{{\"status\":\"ok\",\"queued\":{}}}", depth + 1))
    }

    /// The deterministic shed hint: jittered over `[base, 2*base)` by a
    /// [`SplitMix64`] stream keyed on (seed, instance, shed ordinal),
    /// capped at `retry_cap_ms`. Same seed + same shed sequence = same
    /// hints, byte for byte — which is what makes the overload chaos
    /// tests replayable.
    fn retry_hint(&self, instance: &str, shed_ordinal: u64) -> u64 {
        let base = self.config.retry_base_ms.max(1);
        let mut rng = SplitMix64::new(
            self.config.jitter_seed
                ^ fnv1a(instance.as_bytes())
                ^ shed_ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        (base + rng.next_below(base)).min(self.config.retry_cap_ms.max(base))
    }

    /// Current ingest-queue depth (admitted, not yet absorbed).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// Instances with a coalesced profile pending for the next cycle.
    pub fn pending_instances(&self) -> usize {
        self.shared
            .maps
            .iter()
            .map(|m| m.lock().expect("shard map poisoned").len())
            .sum()
    }

    /// Takes every pending coalesced profile with its pre-computed
    /// analysis, sorted by instance — called by the daemon at cycle
    /// end. Pushes still in the queue (or arriving during the drain)
    /// land in the next cycle.
    pub fn drain_sorted(&self) -> Vec<AbsorbedProfile> {
        let mut out: Vec<AbsorbedProfile> = Vec::new();
        for map in &self.shared.maps {
            let taken = std::mem::take(&mut *map.lock().expect("shard map poisoned"));
            out.extend(taken.into_values().map(|(profile, sites)| AbsorbedProfile {
                profile,
                sites: Some(sites),
            }));
        }
        out.sort_by(|a, b| a.profile.instance.cmp(&b.profile.instance));
        self.shared
            .drained_total
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Blocks until the queue is fully absorbed (or `timeout` passes).
    /// Tests and benches use this to make cycle contents deterministic;
    /// the daemon itself never waits.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.queue_depth() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Pauses (or resumes) the absorbers. With absorbers paused the
    /// queue fills and admission control sheds — the deterministic
    /// overload switch the chaos tests flip.
    pub fn pause_absorbers(&self, paused: bool) {
        self.shared.paused.store(paused, Ordering::Relaxed);
    }

    /// Point-in-time counters.
    pub fn summary(&self) -> IngestSummary {
        let (p50, p99) = {
            let h = self.shared.depth_hist.lock().expect("depth hist poisoned");
            (h.p50_us(), h.p99_us())
        };
        IngestSummary {
            push_total: self.shared.push_total.load(Ordering::Relaxed),
            admitted_total: self.shared.admitted_total.load(Ordering::Relaxed),
            shed_total: self.shared.shed_total.load(Ordering::Relaxed),
            coalesced_total: self.shared.coalesced_total.load(Ordering::Relaxed),
            stale_dropped_total: self.shared.stale_dropped_total.load(Ordering::Relaxed),
            bad_request_total: self.shared.bad_request_total.load(Ordering::Relaxed),
            http_rejected_total: self.shared.http_rejected_total.load(Ordering::Relaxed),
            drained_total: self.shared.drained_total.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            pending_instances: self.pending_instances(),
            queue_depth_p50: p50,
            queue_depth_p99: p99,
        }
    }
}

impl Drop for IngestTier {
    fn drop(&mut self) {
        self.senders.clear(); // disconnects every shard channel
        self.shared.paused.store(false, Ordering::Relaxed);
        for t in self.absorbers.drain(..) {
            let _ = t.join();
        }
    }
}

/// One shard's absorber: drains its queue into the shard map. While
/// paused it leaves the queue untouched so depth (and shedding) build
/// up deterministically.
fn absorber_loop(shard: usize, rx: Receiver<GoroutineProfile>, shared: Arc<IngestShared>) {
    loop {
        if shared.paused.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(profile) => {
                // A pause can land while this thread sits in `recv`.
                // Hold the in-flight item until unpaused — depth only
                // decrements inside `absorb`, so a paused tier's
                // watermark stays exact.
                while shared.paused.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                shared.absorb(shard, profile);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Stable shard routing so one instance's pushes stay ordered within a
/// single shard queue.
fn shard_of(instance: &str, shards: usize) -> usize {
    (fnv1a(instance.as_bytes()) % shards as u64) as usize
}

/// FNV-1a, the repo's standard cheap stable hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Merges the pull tier's scraped profiles with the push tier's drained
/// profiles into one per-instance-deduplicated, instance-sorted set:
/// the newest `captured_at` wins, pushes winning ties (they observed
/// the instance later in the cycle). This is the only place the two
/// tiers meet, so "same instance reachable via both tiers contributes
/// exactly once per cycle" holds by construction. Push winners keep
/// their absorber-computed analysis; pull winners carry `None` and are
/// analyzed by the cycle fold.
pub fn dedupe_newest_wins(
    pulled: Vec<GoroutineProfile>,
    pushed: Vec<AbsorbedProfile>,
) -> Vec<AbsorbedProfile> {
    if pushed.is_empty() {
        return pulled.into_iter().map(AbsorbedProfile::raw).collect();
    }
    if pulled.is_empty() {
        // A drain is already one profile per instance (the shard of an
        // instance is a pure function of its name, so no instance
        // spans two shard maps) and `drain_sorted` ordered it — the
        // re-keying below would rebuild the same set.
        return pushed;
    }
    let mut by_instance: HashMap<String, AbsorbedProfile> = HashMap::new();
    for p in pulled {
        by_instance.insert(p.instance.clone(), AbsorbedProfile::raw(p));
    }
    for a in pushed {
        match by_instance.entry(a.profile.instance.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if a.profile.captured_at >= e.get().profile.captured_at {
                    e.insert(a);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(a);
            }
        }
    }
    let mut out: Vec<AbsorbedProfile> = by_instance.into_values().collect();
    out.sort_by(|a, b| a.profile.instance.cmp(&b.profile.instance));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(instance: &str, captured_at: u64) -> GoroutineProfile {
        GoroutineProfile {
            instance: instance.into(),
            captured_at,
            goroutines: vec![],
        }
    }

    fn push(tier: &IngestTier, p: &GoroutineProfile) -> Response {
        tier.handle_push(serde_json::to_string(p).unwrap().as_bytes())
    }

    #[test]
    fn admits_coalesces_and_drains_newest_per_instance() {
        let tier = IngestTier::start(IngestConfig {
            shards: 2,
            queue_capacity: 64,
            ..IngestConfig::default()
        });
        // Out-of-order pushes for one instance plus one other instance.
        for (inst, at) in [("pay-0", 1), ("pay-0", 3), ("pay-0", 2), ("auth-1", 5)] {
            let resp = push(&tier, &profile(inst, at));
            assert_eq!(
                resp.status,
                200,
                "{:?}",
                String::from_utf8_lossy(&resp.body)
            );
        }
        assert!(tier.quiesce(Duration::from_secs(2)), "absorbers must drain");
        let drained = tier.drain_sorted();
        assert!(
            drained.iter().all(|a| a.sites.is_some()),
            "absorbers must pre-analyze everything they keep"
        );
        let got: Vec<(String, u64)> = drained
            .iter()
            .map(|a| (a.profile.instance.clone(), a.profile.captured_at))
            .collect();
        assert_eq!(
            got,
            vec![("auth-1".to_string(), 5), ("pay-0".to_string(), 3)],
            "one contribution per instance, newest captured_at wins"
        );
        let s = tier.summary();
        assert_eq!(s.push_total, 4);
        assert_eq!(s.admitted_total, 4);
        assert_eq!(s.shed_total, 0);
        assert_eq!(s.coalesced_total, 1, "3 replaced 1");
        assert_eq!(s.stale_dropped_total, 1, "2 arrived after 3, dropped");
        assert_eq!(s.drained_total, 2);
        // A second drain starts empty.
        assert!(tier.drain_sorted().is_empty());
    }

    #[test]
    fn watermark_sheds_with_deterministic_jittered_hints() {
        let tier = IngestTier::start(IngestConfig {
            shards: 1,
            queue_capacity: 2,
            retry_base_ms: 100,
            retry_cap_ms: 1_000,
            jitter_seed: 42,
            ..IngestConfig::default()
        });
        tier.pause_absorbers(true);
        // Two fit, the rest shed.
        let mut sheds = Vec::new();
        for i in 0..6 {
            let resp = push(&tier, &profile(&format!("svc-{i}"), 1));
            if resp.status == 429 {
                let ms: u64 = resp
                    .headers
                    .iter()
                    .find(|(k, _)| k == "retry-after-ms")
                    .expect("shed must carry retry-after-ms")
                    .1
                    .parse()
                    .unwrap();
                assert!((100..200).contains(&ms), "hint {ms} outside [base, 2*base)");
                sheds.push(ms);
            }
        }
        assert_eq!(sheds.len(), 4);
        assert_eq!(tier.summary().shed_total, 4);
        assert_eq!(tier.queue_depth(), 2);
        // Determinism: an identically-seeded tier sheds with identical
        // hints for the same push sequence.
        let twin = IngestTier::start(IngestConfig {
            shards: 1,
            queue_capacity: 2,
            retry_base_ms: 100,
            retry_cap_ms: 1_000,
            jitter_seed: 42,
            ..IngestConfig::default()
        });
        twin.pause_absorbers(true);
        let mut twin_sheds = Vec::new();
        for i in 0..6 {
            let resp = push(&twin, &profile(&format!("svc-{i}"), 1));
            if resp.status == 429 {
                let ms: u64 = resp
                    .headers
                    .iter()
                    .find(|(k, _)| k == "retry-after-ms")
                    .unwrap()
                    .1
                    .parse()
                    .unwrap();
                twin_sheds.push(ms);
            }
        }
        assert_eq!(sheds, twin_sheds);
        // Unpause: the queued two absorb and the next push is admitted.
        tier.pause_absorbers(false);
        assert!(tier.quiesce(Duration::from_secs(2)));
        let resp = push(&tier, &profile("late-1", 9));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        let tier = IngestTier::start(IngestConfig {
            max_body_bytes: 64,
            ..IngestConfig::default()
        });
        assert_eq!(tier.handle_push(b"not json").status, 400);
        assert_eq!(tier.handle_push(&[b'x'; 65]).status, 413);
        let no_instance = serde_json::to_string(&profile("", 1)).unwrap();
        assert_eq!(tier.handle_push(no_instance.as_bytes()).status, 400);
        let s = tier.summary();
        assert_eq!(s.bad_request_total, 3);
        assert_eq!(s.admitted_total, 0);
    }

    #[test]
    fn dedupe_prefers_newest_and_breaks_ties_toward_push() {
        let absorbed = |p: GoroutineProfile| AbsorbedProfile {
            sites: Some(leakprof::analyze_profile(&p)),
            profile: p,
        };
        let pulled = vec![profile("a", 10), profile("b", 10), profile("c", 10)];
        let pushed = vec![
            absorbed(profile("a", 9)),  // older: pull wins
            absorbed(profile("b", 11)), // newer: push wins
            absorbed(profile("c", 10)), // tie: push wins
            absorbed(profile("d", 1)),  // push-only instance
        ];
        let merged = dedupe_newest_wins(pulled.clone(), pushed);
        let got: Vec<(String, u64, bool)> = merged
            .iter()
            .map(|a| {
                (
                    a.profile.instance.clone(),
                    a.profile.captured_at,
                    a.sites.is_some(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                // Pull winners carry no pre-analysis; push winners do.
                ("a".to_string(), 10, false),
                ("b".to_string(), 11, true),
                ("c".to_string(), 10, true),
                ("d".to_string(), 1, true),
            ]
        );
        // Pull-only cycles pass through in order (exact legacy path).
        let untouched = dedupe_newest_wins(pulled.clone(), vec![]);
        assert_eq!(untouched.len(), 3);
        assert_eq!(untouched[0].profile.instance, "a");
        assert!(untouched.iter().all(|a| a.sites.is_none()));
    }
}
