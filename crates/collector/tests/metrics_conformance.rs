//! `/metrics` conformance: the daemon's exposition must follow the
//! Prometheus text format line grammar — every family announced with
//! `# HELP` and `# TYPE` before its samples, all names under the
//! `leakprofd_` prefix, family lines grouped, label syntax and sample
//! values well-formed. The checker below parses the grammar directly
//! rather than substring-matching, so a malformed line anywhere fails.

use std::collections::BTreeMap;

use collector::{Daemon, DaemonConfig, DemoFleet, PromText};
use leakprof::LeakProf;

#[derive(Default)]
struct Family {
    kind: String,
    has_help: bool,
    samples: usize,
    finished: bool,
}

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses `{k="v",...}`-style labels, returning the byte length
/// consumed (including braces). Panics with `ctx` on malformed syntax.
fn parse_labels(s: &str, ctx: &str) -> usize {
    let bytes = s.as_bytes();
    assert_eq!(bytes[0], b'{', "{ctx}: labels must start with '{{'");
    let mut i = 1;
    loop {
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let name = &s[name_start..i];
        assert!(is_label_name(name), "{ctx}: bad label name {name:?}");
        i += 1; // '='
        assert_eq!(
            bytes.get(i),
            Some(&b'"'),
            "{ctx}: label value must be quoted"
        );
        i += 1;
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                let next = bytes.get(i + 1);
                assert!(
                    matches!(next, Some(b'\\') | Some(b'"') | Some(b'n')),
                    "{ctx}: bad escape in label value"
                );
                i += 1;
            }
            i += 1;
        }
        assert_eq!(bytes.get(i), Some(&b'"'), "{ctx}: unterminated label value");
        i += 1;
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return i + 1,
            other => panic!("{ctx}: expected ',' or '}}' after label, got {other:?}"),
        }
    }
}

/// The family a sample name belongs to: itself, or — for summary and
/// histogram `_count`/`_sum` lines, and histogram `_bucket` lines —
/// the declared base family.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, Family>) -> &'a str {
    if families.contains_key(name) {
        return name;
    }
    for suffix in ["_count", "_sum"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families
                .get(base)
                .is_some_and(|f| f.kind == "summary" || f.kind == "histogram")
            {
                return base;
            }
        }
    }
    if let Some(base) = name.strip_suffix("_bucket") {
        if families.get(base).is_some_and(|f| f.kind == "histogram") {
            return base;
        }
    }
    panic!("sample {name} has no # TYPE declaration");
}

fn assert_conformant(text: &str) {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut current: Option<String> = None;
    for (n, line) in text.lines().enumerate() {
        let ctx = format!("line {}: {line:?}", n + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("{ctx}: HELP without text"));
            assert!(is_metric_name(name), "{ctx}: bad family name");
            assert!(
                name.starts_with("leakprofd_"),
                "{ctx}: family missing leakprofd_ prefix"
            );
            assert!(!help.trim().is_empty(), "{ctx}: empty HELP text");
            let fam = families.entry(name.to_string()).or_default();
            assert!(!fam.has_help, "{ctx}: duplicate HELP for {name}");
            assert_eq!(fam.samples, 0, "{ctx}: HELP must precede samples of {name}");
            fam.has_help = true;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("{ctx}: TYPE without kind"));
            assert!(is_metric_name(name), "{ctx}: bad family name");
            assert!(
                name.starts_with("leakprofd_"),
                "{ctx}: family missing leakprofd_ prefix"
            );
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ),
                "{ctx}: unknown TYPE kind {kind:?}"
            );
            let fam = families.entry(name.to_string()).or_default();
            assert!(fam.kind.is_empty(), "{ctx}: duplicate TYPE for {name}");
            assert_eq!(fam.samples, 0, "{ctx}: TYPE must precede samples of {name}");
            fam.kind = kind.to_string();
        } else if line.starts_with('#') {
            panic!("{ctx}: unexpected comment line");
        } else {
            let name_end = line
                .find(['{', ' '])
                .unwrap_or_else(|| panic!("{ctx}: sample without value"));
            let name = &line[..name_end];
            assert!(is_metric_name(name), "{ctx}: bad sample name");
            let mut rest = &line[name_end..];
            if rest.starts_with('{') {
                let consumed = parse_labels(rest, &ctx);
                rest = &rest[consumed..];
            }
            let value = rest.trim_start();
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{ctx}: sample value {value:?} is not a number"));
            let base = family_of(name, &families).to_string();
            if name.ends_with("_bucket")
                && families.get(&base).is_some_and(|f| f.kind == "histogram")
            {
                assert!(
                    line.contains("le=\""),
                    "{ctx}: histogram _bucket sample without an le label"
                );
            }
            {
                let fam = families.get(&base).expect("family exists");
                assert!(!fam.kind.is_empty(), "{ctx}: sample before TYPE");
                assert!(fam.has_help, "{ctx}: family {base} has no HELP");
                assert!(
                    !fam.finished,
                    "{ctx}: family {base} lines are not contiguous"
                );
            }
            if let Some(prev) = &current {
                if *prev != base {
                    families.get_mut(prev).expect("family exists").finished = true;
                }
            }
            families.get_mut(&base).expect("family exists").samples += 1;
            current = Some(base);
        }
    }
    for (name, fam) in &families {
        assert!(fam.samples > 0, "family {name} declared but has no samples");
    }
    assert!(!families.is_empty(), "no families at all");
}

#[test]
fn fresh_daemon_metrics_conform() {
    let daemon = Daemon::new(DaemonConfig::default(), LeakProf::default(), vec![]).unwrap();
    assert_conformant(&daemon.metrics_text());
}

#[test]
fn busy_daemon_metrics_conform_and_cover_every_subsystem() {
    let demo = DemoFleet::build(6, 2, 7);
    let server = demo.hub.serve("127.0.0.1:0", 2).unwrap();
    let targets = demo.targets(server.addr());
    let config = DaemonConfig {
        adaptive: collector::AdaptiveConfig::enabled(100, 4000, 1000),
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(
        config,
        LeakProf::new(leakprof::Config {
            threshold: 1,
            ast_filter: false,
            top_n: 5,
        }),
        targets,
    )
    .unwrap();
    for _ in 0..4 {
        daemon.run_cycle();
    }
    let text = daemon.metrics_text();
    assert_conformant(&text);
    for family in [
        "leakprofd_cycles_total",
        "leakprofd_scrapes_total",
        "leakprofd_scrape_latency_us",
        "leakprofd_breaker_targets",
        "leakprofd_reports_total",
        "leakprofd_conn_requests_total",
        "leakprofd_spans_total",
        "leakprofd_stage_latency_us",
        "leakprofd_suspect_rms",
        "leakprofd_interval_ms",
        "leakprofd_interval_changes_total",
        "leakprofd_ts_series",
        "leakprofd_ts_appends_total",
        "leakprofd_build_info",
        "leakprofd_obs_dropped_total",
        "leakprofd_worst_cycle_us",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing family {family}"
        );
    }
    // The obs drop counter carries one series per record kind, and the
    // build gauge pins the crate version in its labels.
    assert!(text.contains("leakprofd_obs_dropped_total{kind=\"span\"}"));
    assert!(text.contains("leakprofd_obs_dropped_total{kind=\"event\"}"));
    assert!(text.contains(&format!(
        "leakprofd_build_info{{version=\"{}\",role=\"daemon\"}} 1",
        env!("CARGO_PKG_VERSION")
    )));
    // The worst-cycle exemplar names the trace to pull up in Perfetto.
    assert!(text.contains("leakprofd_worst_cycle_us{trace_id=\""));
}

#[test]
fn ingest_enabled_daemon_exposes_conformant_push_families() {
    let mut daemon = Daemon::new(
        DaemonConfig {
            ingest: Some(collector::IngestConfig::default()),
            ..DaemonConfig::default()
        },
        LeakProf::default(),
        vec![],
    )
    .unwrap();
    // Exercise every counter: admitted, coalesced (same instance
    // twice, newer capture), bad request, and a drain.
    let tier = std::sync::Arc::clone(daemon.ingest_tier().unwrap());
    tier.pause_absorbers(true);
    for captured_at in [100u64, 200] {
        let p = gosim::GoroutineProfile {
            instance: "pay-0".into(),
            captured_at,
            goroutines: vec![],
        };
        assert_eq!(
            tier.handle_push(serde_json::to_string(&p).unwrap().as_bytes())
                .status,
            200
        );
    }
    tier.handle_push(b"not json");
    tier.pause_absorbers(false);
    assert!(tier.quiesce(std::time::Duration::from_secs(5)));
    daemon.run_cycle();
    let text = daemon.metrics_text();
    assert_conformant(&text);
    for family in [
        "leakprofd_ingest_queue_depth",
        "leakprofd_ingest_queue_depth_observed",
        "leakprofd_ingest_push_total",
        "leakprofd_ingest_admitted_total",
        "leakprofd_ingest_shed_total",
        "leakprofd_ingest_coalesced_total",
        "leakprofd_ingest_rejected_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing family {family}"
        );
    }
    // Two profile pushes plus the garbage one, whatever their fate.
    assert!(text.contains("leakprofd_ingest_push_total 3"));
    assert!(text.contains("reason=\"bad_request\""));
}

#[test]
fn checker_rejects_malformed_expositions() {
    let bad: &[&str] = &[
        // Sample without any TYPE.
        "leakprofd_x 1\n",
        // TYPE without samples is declared-but-empty.
        "# HELP leakprofd_x h\n# TYPE leakprofd_x gauge\n",
        // Missing HELP.
        "# TYPE leakprofd_x gauge\nleakprofd_x 1\n",
        // Bad prefix.
        "# HELP other_x h\n# TYPE other_x gauge\nother_x 1\n",
        // Non-numeric value.
        "# HELP leakprofd_x h\n# TYPE leakprofd_x gauge\nleakprofd_x oops\n",
        // Unterminated label value.
        "# HELP leakprofd_x h\n# TYPE leakprofd_x gauge\nleakprofd_x{a=\"b 1\n",
        // Histogram bucket without an le label.
        "# HELP leakprofd_x h\n# TYPE leakprofd_x histogram\nleakprofd_x_bucket{stage=\"a\"} 1\nleakprofd_x_sum 1\nleakprofd_x_count 1\n",
    ];
    for text in bad {
        let got = std::panic::catch_unwind(|| assert_conformant(text));
        assert!(got.is_err(), "checker accepted malformed input {text:?}");
    }
}

#[test]
fn prom_text_builder_round_trips_through_the_checker() {
    let mut p = PromText::new();
    p.family("leakprofd_demo", "gauge", "A demo family.");
    p.sample("leakprofd_demo", &[("site", "send at a\"b\\c.go:1")], 1.5);
    assert_conformant(&p.finish());
}

#[test]
fn prom_text_histograms_round_trip_through_the_checker() {
    let mut h = collector::LatencyHistogram::new();
    for us in [3, 900, 5000] {
        h.record_us(us);
    }
    let mut p = PromText::new();
    p.family("leakprofd_demo_us", "histogram", "A demo histogram.");
    p.histogram("leakprofd_demo_us", &[("stage", "scrape")], &h);
    let text = p.finish();
    assert_conformant(&text);
    // Cumulative buckets end at the count, and +Inf repeats it.
    assert!(text.contains("leakprofd_demo_us_bucket{stage=\"scrape\",le=\"+Inf\"} 3"));
    assert!(text.contains("leakprofd_demo_us_count{stage=\"scrape\"} 3"));
    assert!(text.contains("leakprofd_demo_us_sum{stage=\"scrape\"} 5903"));
}
