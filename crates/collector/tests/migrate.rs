//! Differential test for `leakprofd migrate-history`: queries over the
//! migrated store must equal a plain fold over the raw JSONL records —
//! the store adds resolution tiers and durability, never changes the
//! numbers. Also pins the crash-aftermath contract: one torn trailing
//! history line is tolerated and simply not migrated.

use std::collections::BTreeMap;

use collector::history::{CycleRecord, TopSite};
use collector::{load_jsonl, migrate_history};
use timeseries::{RollupSpec, StoreConfig, TsStore};

fn record(cycle: u64, sites: &[(&str, f64, u64)]) -> CycleRecord {
    CycleRecord {
        cycle,
        profiles: 4,
        failures: 0,
        retries: 0,
        wall_ms: 2.5,
        p50_us: 100,
        p99_us: 400,
        top: sites
            .iter()
            .map(|(op, rms, total)| TopSite {
                op: op.to_string(),
                rms: *rms,
                total: *total,
                max_instance: *total / 2,
            })
            .collect(),
    }
}

fn synthetic_history(n: u64) -> Vec<CycleRecord> {
    (1..=n)
        .map(|c| {
            let mut sites: Vec<(String, f64, u64)> = vec![
                // Integer-valued series so f64 sums are exact and the
                // differential comparison can use == rather than eps.
                (
                    "send at pay/handler.go:10".to_string(),
                    (c * 3) as f64,
                    c * 3,
                ),
                ("recv at cart/poll.go:22".to_string(), 40.0, 40),
            ];
            if c % 2 == 0 {
                // A site that only appears on even cycles: the store
                // must not fabricate points for the gaps.
                sites.push(("select at ship/track.go:8".to_string(), 7.0, 7));
            }
            let borrowed: Vec<(&str, f64, u64)> = sites
                .iter()
                .map(|(op, r, t)| (op.as_str(), *r, *t))
                .collect();
            record(c, &borrowed)
        })
        .collect()
}

/// The ground truth: fold the raw records by site.
struct Fold {
    count: u64,
    sum_rms: f64,
    min_rms: f64,
    max_rms: f64,
    last_rms: f64,
    sum_total: f64,
}

fn fold_records(records: &[CycleRecord]) -> BTreeMap<String, Fold> {
    let mut by_site: BTreeMap<String, Fold> = BTreeMap::new();
    for r in records {
        for site in &r.top {
            let f = by_site.entry(site.op.clone()).or_insert(Fold {
                count: 0,
                sum_rms: 0.0,
                min_rms: f64::INFINITY,
                max_rms: f64::NEG_INFINITY,
                last_rms: 0.0,
                sum_total: 0.0,
            });
            f.count += 1;
            f.sum_rms += site.rms;
            f.min_rms = f.min_rms.min(site.rms);
            f.max_rms = f.max_rms.max(site.rms);
            f.last_rms = site.rms;
            f.sum_total += site.total as f64;
        }
    }
    by_site
}

fn store_config() -> StoreConfig {
    StoreConfig {
        raw_capacity: 512,
        rollups: vec![
            RollupSpec {
                step: 8,
                capacity: 512,
            },
            RollupSpec {
                step: 64,
                capacity: 512,
            },
        ],
        snapshot_every: 16,
    }
}

#[test]
fn migrated_store_agrees_with_a_fold_over_the_raw_jsonl() {
    let dir = std::env::temp_dir().join(format!("leakprofd-migrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let history_path = dir.join("history.jsonl");

    let records = synthetic_history(100);
    let mut jsonl = String::new();
    for r in &records {
        jsonl.push_str(&serde_json::to_string(r).unwrap());
        jsonl.push('\n');
    }
    // Crash aftermath: a torn trailing line (truncated mid-record).
    jsonl.push_str("{\"cycle\":101,\"profiles\":4,\"fail");
    std::fs::write(&history_path, &jsonl).unwrap();

    // One-shot migration, exactly as the CLI runs it.
    let load = load_jsonl::<CycleRecord>(&history_path).unwrap();
    assert!(
        load.dropped_trailing.is_some(),
        "torn line must be reported"
    );
    assert_eq!(load.records.len(), 100);
    let mut ts = TsStore::open(dir.join("ts"), store_config()).unwrap();
    let (appended, skipped) = migrate_history(&load.records, &mut ts).unwrap();
    assert_eq!((appended, skipped), (100, 0));
    ts.flush().unwrap();
    drop(ts);

    // Reopen from disk: migration must be durable.
    let ts = TsStore::open(dir.join("ts"), store_config()).unwrap();

    let truth = fold_records(&records);
    assert_eq!(truth.len(), 3);
    for (op, fold) in &truth {
        let rms_id = leakprof::series::site_rms_id(op);
        let total_id = leakprof::series::site_total_id(op);
        for res in ts.resolutions() {
            let points = ts.query(&rms_id, 0, u64::MAX, Some(res));
            let count: u64 = points.iter().map(|p| p.count).sum();
            let sum: f64 = points.iter().map(|p| p.sum).sum();
            let min = points.iter().map(|p| p.min).fold(f64::INFINITY, f64::min);
            let max = points
                .iter()
                .map(|p| p.max)
                .fold(f64::NEG_INFINITY, f64::max);
            let last = points.last().map(|p| p.last).unwrap();
            assert_eq!(count, fold.count, "{op} res {res}: point count");
            assert_eq!(sum, fold.sum_rms, "{op} res {res}: rms sum");
            assert_eq!(min, fold.min_rms, "{op} res {res}: rms min");
            assert_eq!(max, fold.max_rms, "{op} res {res}: rms max");
            assert_eq!(last, fold.last_rms, "{op} res {res}: rms last");

            let totals = ts.query(&total_id, 0, u64::MAX, Some(res));
            let total_sum: f64 = totals.iter().map(|p| p.sum).sum();
            assert_eq!(total_sum, fold.sum_total, "{op} res {res}: total sum");
        }
    }

    // The gappy site must have points only at even cycles in raw.
    let gappy = ts.query("site_rms:select at ship/track.go:8", 0, u64::MAX, Some(1));
    assert_eq!(gappy.len(), 50);
    assert!(gappy.iter().all(|p| p.t % 2 == 0), "no fabricated points");

    // Re-running the migration over the same file is a no-op.
    let load = load_jsonl::<CycleRecord>(&history_path).unwrap();
    let mut ts = TsStore::open(dir.join("ts"), store_config()).unwrap();
    let (appended, skipped) = migrate_history(&load.records, &mut ts).unwrap();
    assert_eq!((appended, skipped), (0, 100));

    std::fs::remove_dir_all(&dir).unwrap();
}
