//! End-to-end tests for the `leakprofd` loop: a real fleet simulation
//! served over loopback TCP, scraped concurrently with injected faults,
//! and analyzed incrementally — cross-checked byte-for-byte against the
//! offline analyzer.

use std::time::Duration;

use collector::{
    Daemon, DaemonConfig, DemoFleet, Fault, ProfileHub, ScrapeConfig, ScrapeErrorKind,
    ScrapeTarget, Scraper,
};
use gosim::GoroutineProfile;

/// A fast scrape config for fault tests: short deadlines, one retry.
fn fast_config() -> ScrapeConfig {
    ScrapeConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(200),
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        ..ScrapeConfig::default()
    }
}

fn hub_with(instances: &[&str]) -> ProfileHub {
    let hub = ProfileHub::new();
    for id in instances {
        hub.publish(&GoroutineProfile {
            instance: (*id).into(),
            captured_at: 1,
            goroutines: vec![],
        });
    }
    hub
}

fn targets_for(hub: &ProfileHub, addr: std::net::SocketAddr) -> Vec<ScrapeTarget> {
    hub.instances()
        .into_iter()
        .map(|id| ScrapeTarget {
            path: ProfileHub::profile_path(&id),
            instance: id,
            addr,
        })
        .collect()
}

/// The ISSUE's end-to-end demo: a fleet of instances over TCP, a
/// concurrent scrape with an injected fault, and the streaming analysis
/// emitting the same top-K as the offline analyzer over the profiles
/// that were actually delivered.
#[test]
fn loopback_fleet_with_fault_streams_same_topk_as_offline() {
    let demo = DemoFleet::build(12, 2, 5);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    let targets = demo.targets(server.addr());

    // Inject a fault on one instance: its body is mangled, so the
    // scraper must classify it as a parse failure and move on.
    let victim = targets[2].instance.clone();
    demo.hub.inject_fault(&victim, Fault::CorruptJson);

    let lp = demo.leakprof(40, 10);
    let mut daemon = Daemon::new(
        DaemonConfig {
            scrape: fast_config(),
            ..DaemonConfig::default()
        },
        demo.leakprof(40, 10),
        targets,
    )
    .expect("daemon without history");

    let cycle = daemon.run_cycle();
    assert_eq!(cycle.stats.failed, 1, "exactly the faulted instance fails");
    assert_eq!(cycle.errors[0].instance, victim);
    assert_eq!(cycle.errors[0].kind, ScrapeErrorKind::Parse);
    assert_eq!(cycle.stats.succeeded, cycle.stats.targets - 1);

    // Streaming vs offline over the identical delivered profiles:
    // byte-identical serialized reports.
    let streamed = daemon.last_report().expect("cycle ran").clone();
    let offline = lp.analyze(&cycle.profiles);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&offline).unwrap(),
        "streaming accumulator diverged from offline analysis"
    );
    assert!(
        !streamed.suspects.is_empty(),
        "demo fleet leaks were found:\n{}",
        streamed.render()
    );
}

/// Same differential check with the criterion-2 filter ON: the daemon's
/// filter runs off the static tier's verdict cache (no sources ever
/// indexed in its LeakProf), the offline analyzer off the in-memory AST
/// index — and the serialized reports must still match byte-for-byte.
#[test]
fn static_tier_filter_matches_offline_ast_filter_byte_for_byte() {
    let demo = DemoFleet::build(12, 2, 5);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    let targets = demo.targets(server.addr());
    let victim = targets[2].instance.clone();
    demo.hub.inject_fault(&victim, Fault::CorruptJson);

    let root = std::env::temp_dir().join(format!("leakprofd-e2e-static-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let src_dir = root.join("src");
    let state_dir = root.join("state");
    std::fs::create_dir_all(&state_dir).expect("state dir");
    demo.write_sources(&src_dir).expect("write sources");

    let mut daemon = Daemon::new(
        DaemonConfig {
            scrape: fast_config(),
            state_dir: Some(state_dir.clone()),
            static_tier: Some(collector::StaticTierConfig::in_state_dir(
                src_dir, &state_dir,
            )),
            ..DaemonConfig::default()
        },
        // Filter nominally off and no sources indexed: coverage must
        // come entirely from the verdict cache.
        leakprof::LeakProf::new(leakprof::Config {
            threshold: 40,
            ast_filter: false,
            top_n: 10,
        }),
        targets,
    )
    .expect("daemon with static tier");

    let cycle = daemon.run_cycle();
    assert_eq!(cycle.stats.failed, 1);
    let streamed = daemon.last_report().expect("cycle ran").clone();
    let offline = demo.leakprof(40, 10).analyze(&cycle.profiles);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&offline).unwrap(),
        "verdict-cache filter diverged from the AST filter"
    );
    assert!(
        !streamed.suspects.is_empty(),
        "demo fleet leaks survive the filter:\n{}",
        streamed.render()
    );
    let stats = daemon.static_tier().expect("tier on").stats();
    assert!(stats.covered_files > 0 && stats.parse_errors == 0);
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn timeout_fault_is_reported_and_ranking_completes() {
    let hub = hub_with(&["a", "b", "slow"]);
    hub.inject_fault("slow", Fault::Delay(Duration::from_millis(400)));
    let server = hub.serve("127.0.0.1:0", 4).expect("bind");
    let report = Scraper::new(fast_config()).scrape_cycle(&targets_for(&hub, server.addr()));
    assert_eq!(report.stats.succeeded, 2);
    assert_eq!(report.stats.failed, 1);
    assert_eq!(report.errors[0].instance, "slow");
    assert_eq!(report.errors[0].kind, ScrapeErrorKind::Timeout);
    assert_eq!(report.errors[0].attempts, 2);
    // Ranking over the surviving profiles still completes.
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: 1,
        ast_filter: false,
        top_n: 10,
    });
    let r = lp.analyze(&report.profiles);
    assert_eq!(r.profiles_analyzed, 2);
}

#[test]
fn connection_refused_target_degrades_only_itself() {
    let hub = hub_with(&["up-0", "up-1"]);
    let server = hub.serve("127.0.0.1:0", 4).expect("bind");
    // An ephemeral port with nothing listening: bind then immediately
    // drop, so connects are refused.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        l.local_addr().expect("addr")
    };
    let mut targets = targets_for(&hub, server.addr());
    targets.push(ScrapeTarget {
        instance: "down".into(),
        addr: dead_addr,
        path: ProfileHub::profile_path("down"),
    });
    let report = Scraper::new(fast_config()).scrape_cycle(&targets);
    assert_eq!(report.stats.succeeded, 2);
    assert_eq!(report.stats.failed, 1);
    assert_eq!(report.errors[0].instance, "down");
    assert_eq!(report.errors[0].kind, ScrapeErrorKind::Connect);
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: 1,
        ast_filter: false,
        top_n: 10,
    });
    assert_eq!(lp.analyze(&report.profiles).profiles_analyzed, 2);
}

#[test]
fn mid_body_disconnect_is_truncation() {
    let hub = hub_with(&["whole", "cut"]);
    hub.inject_fault("cut", Fault::DropMidBody);
    let server = hub.serve("127.0.0.1:0", 4).expect("bind");
    let report = Scraper::new(fast_config()).scrape_cycle(&targets_for(&hub, server.addr()));
    assert_eq!(report.stats.succeeded, 1);
    assert_eq!(report.errors[0].instance, "cut");
    assert_eq!(report.errors[0].kind, ScrapeErrorKind::Truncated);
    assert_eq!(
        report.stats.retries, 1,
        "the truncated target was retried once"
    );
}

#[test]
fn corrupt_json_is_a_parse_failure_not_a_transfer_failure() {
    let hub = hub_with(&["good", "garbled"]);
    hub.inject_fault("garbled", Fault::CorruptJson);
    let server = hub.serve("127.0.0.1:0", 4).expect("bind");
    let report = Scraper::new(fast_config()).scrape_cycle(&targets_for(&hub, server.addr()));
    assert_eq!(report.stats.succeeded, 1);
    assert_eq!(report.errors[0].instance, "garbled");
    assert_eq!(report.errors[0].kind, ScrapeErrorKind::Parse);
}

#[test]
fn slow_instance_elevates_latency_but_still_succeeds() {
    let hub = hub_with(&["f0", "f1", "f2", "f3", "laggard"]);
    // Delayed, but inside the read deadline: degraded, not failed.
    hub.inject_fault("laggard", Fault::Delay(Duration::from_millis(80)));
    let server = hub.serve("127.0.0.1:0", 4).expect("bind");
    let report = Scraper::new(fast_config()).scrape_cycle(&targets_for(&hub, server.addr()));
    assert_eq!(report.stats.succeeded, 5);
    assert_eq!(report.stats.failed, 0);
    assert!(
        report.stats.latency.max_us() >= 80_000,
        "slow instance shows up in the latency tail (max {} µs)",
        report.stats.latency.max_us()
    );
    assert!(report.stats.latency.p99_us() >= report.stats.latency.p50_us());
}

/// Health counters and history survive across multiple degraded cycles,
/// and the accumulator keeps ingesting whatever arrives.
#[test]
fn daemon_accumulates_across_cycles_with_persistent_fault() {
    let mut demo = DemoFleet::build(8, 1, 9);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let targets = demo.targets(server.addr());
    let victim = targets[0].instance.clone();
    demo.hub.inject_fault(&victim, Fault::CloseBeforeResponse);

    let dir = std::env::temp_dir().join(format!("leakprofd-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let history = dir.join("history.jsonl");
    let _ = std::fs::remove_file(&history);

    let mut daemon = Daemon::new(
        DaemonConfig {
            scrape: fast_config(),
            history_path: Some(history.clone()),
            history_keep: 10,
            ..Default::default()
        },
        demo.leakprof(40, 10),
        targets,
    )
    .expect("daemon with history");

    for _ in 0..3 {
        let cycle = daemon.run_cycle();
        assert_eq!(cycle.stats.failed, 1);
        assert_eq!(cycle.errors[0].instance, victim);
        demo.advance_and_republish(1);
    }
    let health = daemon.health();
    assert_eq!(health.cycles, 3);
    assert_eq!(health.scrapes_failed, 3);
    assert_eq!(
        health.scrapes_ok as usize,
        3 * (demo.hub.instances().len() - 1)
    );
    assert!(health.success_rate() > 0.8);

    let status = daemon.status();
    assert_eq!(status.cycles, 3);
    assert!(status.profiles_ingested > 0);

    let log = collector::HistoryLog::open(&history, 10).expect("reopen");
    assert_eq!(log.load().expect("read").len(), 3);
    let _ = std::fs::remove_file(&history);
    let _ = std::fs::remove_dir(&dir);
}
