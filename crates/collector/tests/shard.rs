//! Differential end-to-end tests for sharded collection: N shard
//! daemons covering disjoint slices of one fleet must merge — via
//! `leakprofd merge` over state dirs AND via the live fleet aggregator
//! — to the byte-identical ranking a single whole-fleet daemon
//! computes, and stay correct across a shard kill + recovery.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use collector::{
    merge_state_dirs, serve_daemon_endpoints, Daemon, DaemonConfig, DemoFleet, FleetAggregator,
    FleetConfig, MergeConfig, ScrapeConfig, ShardSpec,
};
use shardmap::ShardMap;

const SHARDS: u32 = 3;
const CYCLES: usize = 3;

fn fast_scrape() -> ScrapeConfig {
    ScrapeConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(200),
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        ..ScrapeConfig::default()
    }
}

fn lp() -> leakprof::LeakProf {
    leakprof::LeakProf::new(leakprof::Config {
        threshold: 20,
        ast_filter: false,
        top_n: 10,
    })
}

fn report_json(report: &leakprof::Report) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// The headline bar: a 12-instance fleet split 3 ways; the merged
/// ranking from state dirs and from the live aggregator are both
/// byte-identical to the whole-fleet daemon's, including after one
/// shard is killed mid-cycle (no final checkpoint — recovery replays
/// its WAL) and restarted.
#[test]
fn three_shard_merge_matches_whole_fleet_byte_for_byte() {
    let root = std::env::temp_dir().join(format!("leakprofd-shard-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let demo = DemoFleet::build(12, 2, 5);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("hub bind");
    let targets = demo.targets(server.addr());
    let map = ShardMap::new(SHARDS);

    // The reference: one unsharded daemon over the whole fleet.
    let mut whole = Daemon::new(
        DaemonConfig {
            scrape: fast_scrape(),
            ..DaemonConfig::default()
        },
        lp(),
        targets.clone(),
    )
    .expect("whole-fleet daemon");
    for _ in 0..CYCLES {
        whole.run_cycle();
    }
    let whole_json = report_json(whole.last_report().expect("whole ran"));

    // Three shard daemons, each scraping only its slice into its own
    // tagged state dir, each serving /api/snapshot.
    let mut daemons = Vec::new();
    let mut endpoints = Vec::new();
    let mut dirs = Vec::new();
    let mut slice_sizes = Vec::new();
    for i in 0..SHARDS {
        let dir = root.join(format!("shard{i}"));
        let config = DaemonConfig {
            scrape: fast_scrape(),
            state_dir: Some(dir.clone()),
            snapshot_every: 2,
            shard: Some(ShardSpec {
                map: map.clone(),
                index: i,
            }),
            ..DaemonConfig::default()
        };
        let daemon = Daemon::new(config, lp(), targets.clone()).expect("shard daemon");
        slice_sizes.push(daemon.targets().len());
        let daemon = Arc::new(Mutex::new(daemon));
        let endpoint =
            serve_daemon_endpoints(Arc::clone(&daemon), "127.0.0.1:0").expect("endpoint bind");
        for _ in 0..CYCLES {
            daemon.lock().unwrap().run_cycle();
        }
        dirs.push(dir);
        endpoints.push(endpoint);
        daemons.push(daemon);
    }
    assert_eq!(
        slice_sizes.iter().sum::<usize>(),
        targets.len(),
        "slices must partition the fleet"
    );
    assert!(
        slice_sizes.iter().all(|&n| n > 0),
        "every shard owns a non-empty slice: {slice_sizes:?}"
    );

    // Path 1: the live aggregator polling /api/snapshot.
    let mut fleet = FleetAggregator::new(
        FleetConfig {
            map: Some(map.clone()),
            ..FleetConfig::new(endpoints.iter().map(|e| e.addr()).collect())
        },
        lp(),
    );
    assert_eq!(fleet.poll_once(), SHARDS as usize);
    let fleet_json = report_json(fleet.last_report().expect("fleet polled"));
    assert_eq!(
        fleet_json, whole_json,
        "live fleet merge must be byte-identical to the whole-fleet daemon"
    );
    let status = fleet.status();
    assert_eq!(status.stale_shards, 0);
    assert_eq!(status.map_version, Some(1));
    assert_eq!(
        status.profiles_ingested,
        whole.accumulator().profiles_ingested()
    );
    for row in &status.shards {
        assert_eq!(row.cycle, CYCLES as u64);
        assert_eq!(row.breaker, "closed");
        assert!(!row.stale);
        assert_eq!(row.shard.as_ref().map(|s| s.of), Some(SHARDS));
    }

    // Kill shard 1 "mid-cycle": drop it without a final checkpoint, so
    // its durable state is snapshot(cycle 2) + WAL(cycle 3) and
    // recovery must replay the WAL to reproduce the pre-kill state.
    // Shards 0 and 2 shut down cleanly.
    endpoints.remove(1).shutdown();
    drop(daemons.remove(1));
    for d in &daemons {
        let d = d.lock().unwrap();
        d.commit_snapshot().expect("checkpoint");
    }

    // Path 2: the offline merge over the three state dirs — the killed
    // shard's dir included, recovered via WAL replay.
    let merged = merge_state_dirs(&dirs, &MergeConfig::default()).expect("offline merge");
    assert_eq!(merged.cycle, CYCLES as u64);
    let merged_json = report_json(&lp().report_from_accumulator(&merged.acc));
    assert_eq!(
        merged_json, whole_json,
        "offline state-dir merge must be byte-identical to the whole-fleet daemon"
    );
    for summary in &merged.shards {
        assert_eq!(
            summary.cycle, CYCLES as u64,
            "WAL replay recovered {summary:?}"
        );
    }
    assert_eq!(
        merged.shards[1].shard.as_ref().map(|s| s.shard),
        Some(1),
        "fold order is by shard index"
    );

    // Recovery: restart the killed shard from its state dir (same
    // seat, WAL replay) at a new address, re-point the aggregator, and
    // the live merged ranking is byte-identical again.
    let restarted = Daemon::new(
        DaemonConfig {
            scrape: fast_scrape(),
            state_dir: Some(dirs[1].clone()),
            snapshot_every: 2,
            shard: Some(ShardSpec {
                map: map.clone(),
                index: 1,
            }),
            ..DaemonConfig::default()
        },
        lp(),
        targets.clone(),
    )
    .expect("restart from tagged state dir");
    assert_eq!(restarted.recovered_cycle(), CYCLES as u64);
    let restarted = Arc::new(Mutex::new(restarted));
    let endpoint = serve_daemon_endpoints(Arc::clone(&restarted), "127.0.0.1:0").expect("rebind");
    fleet.set_peer_addr(1, endpoint.addr());
    assert_eq!(fleet.poll_once(), SHARDS as usize);
    assert_eq!(
        report_json(fleet.last_report().expect("fleet repolled")),
        whole_json,
        "post-recovery live merge must still match the whole-fleet daemon"
    );
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// Failover chaos: one of three shards goes dark mid-run. The
/// aggregator's breaker opens, the slice is marked stale (its last
/// good snapshot keeps contributing, so the merged ranking still
/// matches the full fleet), and a rebalanced shard-map version
/// reassigns exactly the dead seat's instances to the survivors.
#[test]
fn shard_death_marks_slice_stale_and_rebalances_the_map() {
    let root = std::env::temp_dir().join(format!("leakprofd-shard-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let demo = DemoFleet::build(12, 2, 5);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("hub bind");
    let targets = demo.targets(server.addr());
    let map = ShardMap::new(SHARDS);

    let mut whole = Daemon::new(
        DaemonConfig {
            scrape: fast_scrape(),
            ..DaemonConfig::default()
        },
        lp(),
        targets.clone(),
    )
    .expect("whole-fleet daemon");
    for _ in 0..CYCLES {
        whole.run_cycle();
    }
    let whole_json = report_json(whole.last_report().expect("whole ran"));

    let mut daemons = Vec::new();
    let mut endpoints = Vec::new();
    for i in 0..SHARDS {
        let daemon = Daemon::new(
            DaemonConfig {
                scrape: fast_scrape(),
                shard: Some(ShardSpec {
                    map: map.clone(),
                    index: i,
                }),
                ..DaemonConfig::default()
            },
            lp(),
            targets.clone(),
        )
        .expect("shard daemon");
        let daemon = Arc::new(Mutex::new(daemon));
        let endpoint =
            serve_daemon_endpoints(Arc::clone(&daemon), "127.0.0.1:0").expect("endpoint bind");
        for _ in 0..CYCLES {
            daemon.lock().unwrap().run_cycle();
        }
        endpoints.push(endpoint);
        daemons.push(daemon);
    }

    let mut fleet = FleetAggregator::new(
        FleetConfig {
            map: Some(map.clone()),
            ..FleetConfig::new(endpoints.iter().map(|e| e.addr()).collect())
        },
        lp(),
    );
    assert_eq!(fleet.poll_once(), SHARDS as usize);
    assert_eq!(fleet.status().stale_shards, 0);

    // Kill shard 2's endpoint. Its breaker needs `failure_threshold`
    // consecutive failed polls to open; poll past that.
    endpoints.remove(2).shutdown();
    drop(daemons.remove(2));
    let mut status = fleet.status();
    for _ in 0..6 {
        fleet.poll_once();
        status = fleet.status();
        if status.stale_shards > 0 {
            break;
        }
    }
    assert_eq!(status.stale_shards, 1, "dead shard marked stale");
    let dead_row = &status.shards[2];
    assert!(dead_row.stale);
    assert_eq!(dead_row.breaker, "open");
    assert!(dead_row.consecutive_failures >= 3);
    assert!(!status.shards[0].stale);
    assert!(!status.shards[1].stale);

    // Failover: a rebalanced map version reassigns exactly the dead
    // seat's instances to the survivors; survivors' instances stay put.
    assert_eq!(status.rebalances, 1, "one rebalanced map emitted");
    let v2 = fleet.map().expect("map loaded").clone();
    assert!(v2.version > map.version);
    assert!(!v2.is_alive(2));
    for t in &targets {
        let owner = v2.owner(&t.instance).expect("survivors own everything");
        assert_ne!(owner, 2, "{} still assigned to the dead seat", t.instance);
        let old = map.owner(&t.instance).expect("v1 total");
        if old != 2 {
            assert_eq!(owner, old, "{} moved off a surviving seat", t.instance);
        }
    }

    // The dead shard's last good snapshot keeps contributing: the
    // merged ranking still equals the full-fleet ranking.
    assert_eq!(
        report_json(fleet.last_report().expect("fleet polled")),
        whole_json,
        "stale slice must keep serving its last snapshot"
    );
    let _ = std::fs::remove_dir_all(&root);
}
