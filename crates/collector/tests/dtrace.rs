//! Distributed-tracing end-to-end: one fleet poll over three shard
//! daemons plus one push client must stitch into a single Perfetto
//! timeline — one root trace id spanning the fleet lane, every shard
//! lane, and the pusher lane, with flow arrows binding each
//! cross-process hop.
//!
//! The propagation chain under test:
//!
//! 1. The fleet aggregator's poll cycle mints the root trace context
//!    and sends it as a `traceparent` header on each `/api/snapshot`
//!    poll.
//! 2. Each daemon records a SERVE span under the remote context and
//!    *adopts* it, so its next cycle parents under the fleet trace.
//! 3. A daemon's HTTP responses carry its current context back as a
//!    `traceparent` header; the push client adopts it from a push
//!    receipt, so its next push joins the same trace.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use collector::{
    serve_daemon_endpoints, Daemon, DaemonConfig, DemoFleet, FleetAggregator, FleetConfig,
    IngestConfig, PushClient, PushConfig, ScrapeConfig, ShardSpec,
};
use serde::Value;
use shardmap::ShardMap;

const SHARDS: u32 = 3;

fn fast_scrape() -> ScrapeConfig {
    ScrapeConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(200),
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        ..ScrapeConfig::default()
    }
}

fn lp() -> leakprof::LeakProf {
    leakprof::LeakProf::new(leakprof::Config {
        threshold: 20,
        ast_filter: false,
        top_n: 10,
    })
}

/// Looks up `key` on a JSON object value.
fn field<'a>(ev: &'a Value, key: &str) -> Option<&'a Value> {
    match ev {
        Value::Object(map) => map.get(key),
        _ => None,
    }
}

/// Spans (`ph:"X"`) grouped by the trace id in their args, mapped to
/// the set of process lanes each trace reaches.
fn lanes_by_trace(events: &[Value]) -> std::collections::BTreeMap<String, Vec<i64>> {
    let mut lanes: std::collections::BTreeMap<String, Vec<i64>> = Default::default();
    for ev in events {
        if field(ev, "ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let Some(trace) = field(ev, "args")
            .and_then(|a| field(a, "trace"))
            .and_then(Value::as_str)
        else {
            continue;
        };
        let pid = field(ev, "pid").and_then(Value::as_i64).expect("span pid");
        let entry = lanes.entry(trace.to_string()).or_default();
        if !entry.contains(&pid) {
            entry.push(pid);
        }
    }
    lanes
}

#[test]
fn fleet_poll_and_push_stitch_into_one_distributed_trace() {
    let demo = DemoFleet::build(12, 2, 5);
    let mut server = demo.hub.serve("127.0.0.1:0", 8).expect("hub bind");
    let targets = demo.targets(server.addr());
    let map = ShardMap::new(SHARDS);

    // Three shard daemons; shard 0 additionally runs the push-ingest
    // tier so the push client has somewhere to land.
    let mut daemons = Vec::new();
    let mut endpoints = Vec::new();
    for i in 0..SHARDS {
        let config = DaemonConfig {
            scrape: fast_scrape(),
            shard: Some(ShardSpec {
                map: map.clone(),
                index: i,
            }),
            ingest: (i == 0).then(IngestConfig::default),
            ..DaemonConfig::default()
        };
        let daemon = Arc::new(Mutex::new(
            Daemon::new(config, lp(), targets.clone()).expect("shard daemon"),
        ));
        endpoints.push(serve_daemon_endpoints(Arc::clone(&daemon), "127.0.0.1:0").expect("bind"));
        daemons.push(daemon);
    }

    // Cycle 1: each daemon traces under its own freshly minted root.
    for d in &daemons {
        d.lock().unwrap().run_cycle();
    }

    // The fleet poll mints the distributed root and hops it to every
    // shard's /api/snapshot.
    let mut fleet = FleetAggregator::new(
        FleetConfig {
            map: Some(map.clone()),
            ..FleetConfig::new(endpoints.iter().map(|e| e.addr()).collect())
        },
        lp(),
    );
    assert_eq!(fleet.poll_once(), SHARDS as usize);
    let root_trace = fleet
        .tracer()
        .current_trace_id()
        .expect("fleet cycle opened a trace");

    // Cycle 2: every daemon consumed the adopted context, so its cycle
    // root carries the fleet's trace id.
    for d in &daemons {
        d.lock().unwrap().run_cycle();
    }
    for d in &daemons {
        let d = d.lock().unwrap();
        assert_eq!(
            d.tracer().current_trace_id().as_deref(),
            Some(root_trace.as_str()),
            "daemon cycle 2 must join the fleet trace"
        );
    }

    // Push twice at shard 0: the first push's receipt carries the
    // daemon's traceparent, so the second push joins the fleet trace.
    let mut client = PushClient::new(endpoints[0].addr(), PushConfig::default());
    let pusher = obs::Tracer::new(&obs::TraceConfig::default());
    pusher.set_service("pusher", "test");
    client.set_tracer(pusher.clone());
    let profile = gosim::GoroutineProfile {
        instance: "pay-0".into(),
        captured_at: 1,
        goroutines: vec![],
    };
    client.push(&profile).expect("push 1 admitted");
    client.push(&profile).expect("push 2 admitted");
    assert_eq!(
        pusher.current_trace_id().as_deref(),
        Some(root_trace.as_str()),
        "the second push must have adopted the daemon's trace context"
    );

    // Cycle 3 drains the push SERVE spans out of shard 0's ring into a
    // retained cycle trace, so the snapshot below carries them.
    for d in &daemons {
        d.lock().unwrap().run_cycle();
    }

    // Stitch all five processes.
    let mut snapshots = vec![fleet.tracer().snapshot()];
    for d in &daemons {
        snapshots.push(d.lock().unwrap().tracer().snapshot());
    }
    snapshots.push(pusher.snapshot());
    let chrome = obs::to_chrome_stitched(&snapshots);
    let doc: Value = serde_json::from_str(&chrome).expect("stitched export parses");
    let Value::Array(events) = doc else {
        panic!("stitched export is not a JSON array of trace events");
    };

    // One root trace id spans >= 4 process lanes (fleet + 3 shards +
    // pusher = 5 here).
    let lanes = lanes_by_trace(&events);
    let root_lanes = lanes.get(&root_trace).expect("root trace present");
    assert!(
        root_lanes.len() >= 4,
        "root trace {root_trace} must span >= 4 process lanes, got {root_lanes:?}"
    );
    assert_eq!(root_lanes.len(), 5, "fleet + 3 shards + pusher");

    // Every flow finish binds to a flow start with the same hop id:
    // 3 fleet->shard poll hops + 2 pusher->shard push hops.
    let flow_ids = |ph: &str| -> Vec<String> {
        events
            .iter()
            .filter(|ev| field(ev, "ph").and_then(Value::as_str) == Some(ph))
            .map(|ev| {
                field(ev, "id")
                    .and_then(Value::as_str)
                    .expect("flow id")
                    .to_string()
            })
            .collect()
    };
    let starts = flow_ids("s");
    let finishes = flow_ids("f");
    assert_eq!(
        finishes.len(),
        5,
        "3 poll hops + 2 push hops land as flow finishes"
    );
    for id in &finishes {
        assert!(
            starts.contains(id),
            "flow finish {id} has no matching start"
        );
    }

    // Process lanes are named after each service (shard identity and
    // version included), so the Perfetto track names are meaningful.
    let process_names: Vec<&str> = events
        .iter()
        .filter(|ev| field(ev, "name").and_then(Value::as_str) == Some("process_name"))
        .map(|ev| {
            field(ev, "args")
                .and_then(|a| field(a, "name"))
                .and_then(Value::as_str)
                .expect("process name")
        })
        .collect();
    assert_eq!(process_names.len(), 5);
    assert!(process_names.iter().any(|n| n.starts_with("fleet")));
    for i in 0..SHARDS {
        let want = format!("leakprofd shard {i}/{SHARDS}");
        assert!(
            process_names.iter().any(|n| n.starts_with(&want)),
            "missing lane for {want}: {process_names:?}"
        );
    }
    assert!(process_names.iter().any(|n| n.starts_with("pusher")));

    for mut e in endpoints {
        e.shutdown();
    }
    server.shutdown();
}

/// A daemon that is never polled keeps minting its own roots, and a
/// malformed traceparent on the wire degrades to a fresh SERVE-less
/// request — never an error.
#[test]
fn unpolled_daemon_stays_on_its_own_trace() {
    let demo = DemoFleet::build(4, 1, 9);
    let mut server = demo.hub.serve("127.0.0.1:0", 2).expect("hub bind");
    let targets = demo.targets(server.addr());
    let daemon = Arc::new(Mutex::new(
        Daemon::new(
            DaemonConfig {
                scrape: fast_scrape(),
                ..DaemonConfig::default()
            },
            lp(),
            targets,
        )
        .expect("daemon"),
    ));
    let mut endpoint = serve_daemon_endpoints(Arc::clone(&daemon), "127.0.0.1:0").expect("bind");

    daemon.lock().unwrap().run_cycle();
    let first = daemon.lock().unwrap().tracer().current_trace_id().unwrap();

    // A garbage traceparent header must not perturb anything.
    collector::http_get_with(
        endpoint.addr(),
        "/api/snapshot",
        Duration::from_millis(500),
        Duration::from_millis(1000),
        Some("zz-not-a-traceparent"),
    )
    .expect("snapshot fetch succeeds despite malformed header");

    daemon.lock().unwrap().run_cycle();
    let second = daemon.lock().unwrap().tracer().current_trace_id().unwrap();
    assert_ne!(first, second, "each unadopted cycle mints a fresh root");

    endpoint.shutdown();
    server.shutdown();
}
