//! End-to-end adaptivity: drive a simulated fleet healthy → regressing
//! and assert the ISSUE's acceptance criteria:
//!
//! (a) `/health` reclassifies the injected site flat → regressing,
//! (b) the scrape interval tightens within 3 cycles of the anomaly and
//!     backs off again after the fleet stabilizes,
//! (c) `leakprofd backtest` over the persisted store reproduces the
//!     online trend classification offline, byte-identical across a
//!     kill -9 / recover of the daemon.

use std::collections::BTreeMap;

use collector::{
    backtest_store, render_verdicts_csv, AdaptiveConfig, BacktestConfig, Daemon, DaemonConfig,
    ProfileHub, ScrapeTarget,
};
use gosim::{Frame, Gid, GoStatus, GoroutineProfile, GoroutineRecord, Loc};
use leakprof::LeakProf;
use timeseries::{TrendConfig, TsStore};

const SITE_FILE: &str = "pay/handler.go";
const SITE_LINE: u32 = 42;
const INSTANCES: usize = 3;

fn blocked_profile(instance: &str, count: usize) -> GoroutineProfile {
    let rec = GoroutineRecord {
        gid: Gid(1),
        name: "pay.Process$1".into(),
        status: GoStatus::ChanSend { nil_chan: false },
        stack: vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.chansend1"),
            Frame::new("pay.Process$1", Loc::new(SITE_FILE, SITE_LINE)),
        ],
        created_by: Frame::new("pay.Process", Loc::new(SITE_FILE, 1)),
        wait_ticks: 100,
        retained_bytes: 8192,
    };
    GoroutineProfile {
        instance: instance.into(),
        captured_at: 0,
        goroutines: vec![rec; count],
    }
}

fn publish_fleet(hub: &ProfileHub, count: usize) {
    for i in 0..INSTANCES {
        hub.publish(&blocked_profile(&format!("pay-{i}"), count));
    }
}

fn trend_config() -> TrendConfig {
    // The accumulator is cumulative, so even a steady leak's RMS climbs;
    // a slightly higher slope threshold classifies that steady climb as
    // flat once the level dominates, while a step change still fires.
    TrendConfig {
        rel_slope_regress: 0.1,
        rel_slope_improve: -0.1,
        ..TrendConfig::default()
    }
}

fn site_class(daemon: &Daemon) -> Option<String> {
    daemon
        .fleet_health()
        .and_then(|h| h.sites.first())
        .map(|s| s.class.clone())
}

#[test]
fn adaptivity_end_to_end() {
    let dir = std::env::temp_dir().join(format!("leakprofd-adaptive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let hub = ProfileHub::new();
    publish_fleet(&hub, 5);
    let server = hub.serve("127.0.0.1:0", 2).unwrap();
    let targets: Vec<ScrapeTarget> = hub
        .instances()
        .into_iter()
        .map(|id| ScrapeTarget {
            path: ProfileHub::profile_path(&id),
            instance: id,
            addr: server.addr(),
        })
        .collect();

    let config = DaemonConfig {
        state_dir: Some(dir.clone()),
        trend: trend_config(),
        adaptive: AdaptiveConfig::enabled(100, 6400, 800),
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(
        config,
        LeakProf::new(leakprof::Config {
            threshold: 1,
            ast_filter: false,
            top_n: 5,
        }),
        targets,
    )
    .unwrap();

    // --- Phase 1: healthy. A steady baseline leak; by the end of the
    // phase its cumulative RMS climb is slow relative to its level, so
    // the verdict settles at flat and the interval backs off.
    for _ in 0..40 {
        publish_fleet(&hub, 5);
        daemon.run_cycle();
    }
    assert_eq!(
        site_class(&daemon).as_deref(),
        Some("flat"),
        "steady leak must classify flat by end of healthy phase: {:?}",
        daemon.fleet_health()
    );
    let healthy = daemon.adaptive_status();
    assert!(
        healthy.backed_off_total >= 1,
        "quiet fleet must back off: {healthy:?}"
    );
    let interval_before = healthy.interval_ms;
    assert!(interval_before > 100, "not pinned at min: {healthy:?}");

    // --- Phase 2: regression. The site's per-scrape blocked count
    // jumps 100x — a step-change anomaly.
    let injected_at = daemon.health().cycles;
    let tightened_before = healthy.tightened_total;
    let mut reclassified_at = None;
    let mut tightened_at = None;
    for i in 0..10u64 {
        publish_fleet(&hub, 500);
        daemon.run_cycle();
        let cycle = injected_at + i + 1;
        if reclassified_at.is_none() && site_class(&daemon).as_deref() == Some("regressing") {
            reclassified_at = Some(cycle);
        }
        if tightened_at.is_none() && daemon.adaptive_status().tightened_total > tightened_before {
            tightened_at = Some(cycle);
        }
    }
    // (a) the injected site flipped flat -> regressing.
    let reclassified_at = reclassified_at.expect("site must reclassify as regressing");
    // (b) the interval tightened within 3 cycles of the anomaly.
    let tightened_at = tightened_at.expect("interval must tighten");
    assert!(
        tightened_at <= injected_at + 3,
        "tighten at cycle {tightened_at}, anomaly at {injected_at}"
    );
    assert!(
        reclassified_at <= injected_at + 3,
        "reclassify at cycle {reclassified_at}, anomaly at {injected_at}"
    );
    let regressed = daemon.adaptive_status();
    assert!(regressed.interval_ms < interval_before);
    assert!(
        regressed.last_change_reason.contains("anomaly")
            || regressed.last_change_reason.contains("regressing")
            || regressed.last_change_reason.contains("stable"),
        "reason must be surfaced: {regressed:?}"
    );

    // --- Phase 3: stabilization. The leak stops growing; the verdict
    // returns to flat and the interval backs off again.
    let backed_off_before = regressed.backed_off_total;
    for _ in 0..40 {
        publish_fleet(&hub, 500);
        daemon.run_cycle();
    }
    assert_eq!(site_class(&daemon).as_deref(), Some("flat"));
    let stable = daemon.adaptive_status();
    assert!(
        stable.backed_off_total > backed_off_before,
        "interval must back off after stabilization: {stable:?}"
    );

    // Snapshot the online verdicts, then kill the daemon hard: no
    // clean shutdown, no final flush. The store's per-append WAL must
    // already hold everything.
    let online: BTreeMap<String, String> = daemon
        .fleet_health()
        .unwrap()
        .sites
        .iter()
        .map(|s| (s.fingerprint.clone(), s.class.clone()))
        .collect();
    let last_cycle = daemon.health().cycles;
    #[allow(clippy::drop_non_drop)]
    drop(daemon); // kill -9 equivalent for on-disk state

    // (c) offline backtest over the recovered store reproduces the
    // online classification...
    let bt_config = BacktestConfig {
        trend: trend_config(),
        ..BacktestConfig::default()
    };
    let ts = TsStore::open(dir.join("ts"), Default::default()).unwrap();
    assert_eq!(
        ts.last_t("cycle_wall_ms"),
        Some(last_cycle),
        "no lost cycles"
    );
    let report = backtest_store(&ts, &bt_config);
    let offline: BTreeMap<String, String> = report
        .sites
        .iter()
        .map(|s| (s.fingerprint.clone(), s.class.clone()))
        .collect();
    assert_eq!(
        online, offline,
        "offline backtest must match online /health"
    );
    let first_run = render_verdicts_csv(&report);
    drop(ts);

    // ...and is byte-identical across a second kill/recover round.
    let ts = TsStore::open(dir.join("ts"), Default::default()).unwrap();
    let second_run = render_verdicts_csv(&backtest_store(&ts, &bt_config));
    assert_eq!(
        first_run, second_run,
        "backtest must be deterministic across recoveries"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
