//! Chaos and crash-recovery tests for `leakprofd`: hard kills mid-run,
//! scrape faults, and instance churn, with the tentpole differential
//! guarantee — a daemon killed and restarted from snapshot + WAL
//! produces **byte-identical** reports to one that never crashed.

use std::path::{Path, PathBuf};
use std::time::Duration;

use collector::{
    run_chaos, ChaosConfig, Daemon, DaemonConfig, DemoFleet, RaceTierConfig, ScrapeConfig,
    SnapshotStore,
};
use leakprof::signature::ChanOpKind;
use leakprof::LeakProf;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("leakprofd-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn fast_config(seed: u64) -> ScrapeConfig {
    ScrapeConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(250),
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        attempt_budget: Duration::from_millis(400),
        jitter_seed: seed,
        ..ScrapeConfig::default()
    }
}

fn lp_for(demo: &DemoFleet) -> LeakProf {
    demo.leakprof(20, 10)
}

/// Drives `cycles` daemon cycles against a dedicated fleet built from
/// `seed`, killing (dropping without clean shutdown) and restarting the
/// daemon after every cycle in `kill_after`. Returns the final rendered
/// report and status.
fn drive(
    seed: u64,
    state_dir: &Path,
    cycles: u64,
    kill_after: &[u64],
) -> (String, collector::DaemonStatus) {
    let mut demo = DemoFleet::build(10, 2, seed);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let targets = demo.targets(server.addr());
    let config = DaemonConfig {
        scrape: fast_config(seed),
        state_dir: Some(state_dir.to_path_buf()),
        snapshot_every: 2,
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(config.clone(), lp_for(&demo), targets.clone()).expect("daemon");
    for cycle in 1..=cycles {
        let report = daemon.run_cycle();
        assert_eq!(
            report.stats.failed, 0,
            "no faults in the differential run (cycle {cycle})"
        );
        demo.advance_and_republish(1);
        if kill_after.contains(&cycle) {
            drop(daemon); // kill -9: no snapshot, no ledger flush
            daemon = Daemon::new(config.clone(), lp_for(&demo), targets.clone())
                .expect("daemon recovers");
            assert_eq!(
                daemon.recovered_cycle(),
                cycle,
                "recovery reaches the last WAL'd cycle"
            );
        }
    }
    let report = daemon
        .last_report()
        .expect("ran at least one cycle")
        .render();
    (report, daemon.status())
}

/// The tentpole differential test: same fleet seed, same cycle count —
/// one daemon runs straight through, the other is killed twice (once on
/// a snapshot boundary, once with WAL entries pending) — and the final
/// reports must match byte for byte.
#[test]
fn killed_and_restarted_daemon_reports_byte_identical() {
    let dir_a = temp_dir("diff-a");
    let dir_b = temp_dir("diff-b");

    let (report_a, status_a) = drive(42, &dir_a, 6, &[]);
    // Kill at cycle 3 (snapshot at 2 + one WAL entry pending) and at
    // cycle 4 (clean snapshot boundary).
    let (report_b, status_b) = drive(42, &dir_b, 6, &[3, 4]);

    assert!(
        !report_a.is_empty() && report_a.contains("suspect"),
        "differential run should produce a real report"
    );
    assert_eq!(
        report_a, report_b,
        "recovered ranking must be byte-identical"
    );
    assert_eq!(status_a.cycles, status_b.cycles);
    assert_eq!(status_a.profiles_ingested, status_b.profiles_ingested);
    assert_eq!(status_a.top.len(), status_b.top.len());
    assert_eq!(status_b.recovered_cycle, 4);

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Acknowledged-ledger state survives a hard kill: an operator ack is on
/// disk before the crash, and the restarted daemon stays quiet about
/// leaks under the acknowledged level.
#[test]
fn operator_ack_survives_hard_kill() {
    let dir = temp_dir("ack");
    let mut demo = DemoFleet::build(10, 2, 7);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let targets = demo.targets(server.addr());
    let config = DaemonConfig {
        scrape: fast_config(7),
        state_dir: Some(dir.clone()),
        snapshot_every: 2,
        ..DaemonConfig::default()
    };

    let mut daemon = Daemon::new(config.clone(), lp_for(&demo), targets.clone()).expect("daemon");
    daemon.run_cycle();
    let outcome = daemon.last_outcome().expect("cycle ran").clone();
    assert!(
        !outcome.reported.is_empty(),
        "the leaky fleet should page on first sight"
    );
    let reported_before = daemon.ledger().summary().reported_total;
    // Operator acknowledges every suspect at a very high RMS.
    let acked: Vec<String> = outcome.reported.clone();
    for fp in &acked {
        daemon.ledger_mut().acknowledge(fp, 1e9).expect("ack saves");
    }

    drop(daemon); // hard kill
    let mut daemon = Daemon::new(config, lp_for(&demo), targets).expect("daemon recovers");
    assert_eq!(
        daemon.ledger().summary().reported_total,
        reported_before,
        "no acknowledged-ledger state lost across the kill"
    );
    demo.advance_and_republish(1);
    daemon.run_cycle();
    let outcome = daemon.last_outcome().expect("cycle ran");
    // Sites that first cross the threshold now may legitimately page;
    // the acknowledged ones must stay quiet.
    let repaged: Vec<&String> = outcome
        .reported
        .iter()
        .filter(|fp| acked.contains(fp))
        .collect();
    assert!(
        repaged.is_empty(),
        "acknowledged leaks must not re-page after restart: {repaged:?}"
    );
    assert!(outcome.suppressed >= acked.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The scheduled chaos run: faults, churn, and kill/restart under a
/// deterministic plan. No panic, no lost ledger state, every cycle
/// under the wall bound.
#[test]
fn scheduled_chaos_run_holds_invariants() {
    let dir = temp_dir("sched");
    let config = ChaosConfig::quick(1234, dir.clone());
    let outcome = run_chaos(&config, |_| {}).expect("chaos run completes");
    assert_eq!(outcome.cycles_run, config.cycles);
    assert!(outcome.restarts >= 2, "plan should exercise restarts");
    assert!(outcome.faults_injected > 0, "plan should inject faults");
    assert!(
        outcome.ledger_monotonic,
        "acknowledged-ledger state lost across a restart"
    );
    assert!(
        outcome.latency_bounded,
        "cycle latency exceeded the bound: {:.1} ms > {:.0} ms",
        outcome.max_cycle_ms, outcome.cycle_bound_ms
    );
    assert_eq!(outcome.status.cycles, config.cycles);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Race findings survive a hard kill: the differential run with a race
/// tier configured — one daemon straight through, one killed and
/// restarted — must produce byte-identical reports (races included),
/// keep the race sites' ledger episodes, and answer the restart from
/// the persisted suspect cache without re-running the detector.
#[test]
fn race_findings_survive_daemon_crash_byte_identical() {
    let dir_a = temp_dir("race-a");
    let dir_b = temp_dir("race-b");

    fn drive_with_races(seed: u64, state_dir: &Path, kill_after: &[u64]) -> (String, usize, u64) {
        let src_dir = state_dir.join("src");
        std::fs::create_dir_all(&src_dir).expect("src dir");
        std::fs::write(
            src_dir.join("acct.go"),
            "package acct\n\nfunc TestUpdate() {\n\tdone := make(chan int)\n\ttotal := 0\n\tgo func() {\n\t\ttotal = total + 1\n\t\tdone <- 1\n\t}()\n\ttotal = total + 1\n\t<-done\n}\n",
        )
        .expect("racy source");

        let mut demo = DemoFleet::build(10, 2, seed);
        let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
        let targets = demo.targets(server.addr());
        let config = DaemonConfig {
            scrape: fast_config(seed),
            state_dir: Some(state_dir.to_path_buf()),
            snapshot_every: 2,
            race_tier: Some(RaceTierConfig::in_state_dir(src_dir, state_dir)),
            ..DaemonConfig::default()
        };
        let mut daemon =
            Daemon::new(config.clone(), lp_for(&demo), targets.clone()).expect("daemon");
        for cycle in 1..=4u64 {
            daemon.run_cycle();
            demo.advance_and_republish(1);
            if kill_after.contains(&cycle) {
                drop(daemon); // kill -9: no snapshot, no ledger flush
                daemon = Daemon::new(config.clone(), lp_for(&demo), targets.clone())
                    .expect("daemon recovers");
            }
        }
        let report = daemon.last_report().expect("ran cycles");
        let races = report
            .suspects
            .iter()
            .filter(|s| s.stats.op.kind == ChanOpKind::Race)
            .count();
        let misses = daemon
            .race_tier()
            .expect("tier configured")
            .stats()
            .cache_misses;
        (report.render(), races, misses)
    }

    let (report_a, races_a, _) = drive_with_races(42, &dir_a, &[]);
    let (report_b, races_b, misses_b) = drive_with_races(42, &dir_b, &[2, 3]);

    assert!(races_a > 0, "the racy tree must rank race suspects");
    assert_eq!(races_a, races_b, "race suspects survive the kills");
    assert_eq!(
        report_a, report_b,
        "recovered ranking (races included) must be byte-identical"
    );
    assert_eq!(
        misses_b, 0,
        "the restarted daemon must answer from the persisted race cache"
    );

    // The race sites' ledger episodes also survived: a fresh daemon on
    // the crashed state dir still tracks them as active.
    let races_src = dir_b.join("src");
    let config = DaemonConfig {
        scrape: fast_config(42),
        state_dir: Some(dir_b.clone()),
        race_tier: Some(RaceTierConfig::in_state_dir(races_src, &dir_b)),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::new(config, LeakProf::default(), vec![]).expect("daemon reopens");
    assert!(
        daemon.ledger().summary().active >= races_a,
        "race episodes must stay open across the crash"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// A crash between snapshot-rename and WAL-truncate (stale WAL entries
/// at or below the snapshot cycle) must not double-ingest on recovery.
#[test]
fn stale_wal_entries_are_not_double_ingested() {
    let dir = temp_dir("stale-wal");
    let mut demo = DemoFleet::build(8, 2, 9);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let targets = demo.targets(server.addr());
    let config = DaemonConfig {
        scrape: fast_config(9),
        state_dir: Some(dir.clone()),
        snapshot_every: 2,
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(config.clone(), lp_for(&demo), targets.clone()).expect("daemon");
    for _ in 0..2 {
        daemon.run_cycle();
        demo.advance_and_republish(1);
    }
    let ingested = daemon.status().profiles_ingested;
    drop(daemon);

    // Re-create the worst-case torn state: the WAL still holds entries
    // the snapshot already covers (as if truncate never happened).
    let store = SnapshotStore::open(&dir).expect("store");
    let recovered = store.recover().expect("recover");
    let snap = recovered.snapshot.expect("snapshot committed at cycle 2");
    assert_eq!(snap.cycle, 2);
    store
        .append_wal(&collector::WalEntry {
            cycle: 1,
            profiles: Vec::new(),
            stats: Default::default(),
        })
        .expect("stale append");

    let daemon = Daemon::new(config, lp_for(&demo), targets).expect("daemon recovers");
    assert_eq!(
        daemon.status().profiles_ingested,
        ingested,
        "stale WAL entries must be filtered by cycle, not replayed"
    );
    assert_eq!(daemon.recovered_cycle(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
