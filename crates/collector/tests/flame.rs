//! End-to-end flame tier: shard-merged flamegraphs must be
//! byte-identical to a whole-fleet daemon's, and the differential view
//! must isolate an injected regression's stack subtree.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use collector::{
    build_flame, live_weight, merge_state_dirs, serve_daemon_endpoints, write_merged, Daemon,
    DaemonConfig, DemoFleet, FlameGraph, MergeConfig, ShardSpec,
};
use leakprof::LeakProf;
use shardmap::ShardMap;

fn lp() -> LeakProf {
    LeakProf::new(leakprof::Config {
        threshold: 1,
        ast_filter: false,
        top_n: 10,
    })
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let body = collector::http_get(
        addr,
        path,
        Duration::from_millis(2000),
        Duration::from_millis(5000),
    )
    .unwrap_or_else(|e| panic!("GET {path}: {e}"));
    String::from_utf8(body).expect("utf-8 body")
}

/// The tentpole differential: three shard daemons' state dirs merged
/// offline fold to the exact same folded-stack bytes as one unsharded
/// daemon scraping the whole fleet — and as that daemon's live
/// `/flame.txt` — because the flame trie is a pure function of the
/// accumulator and `FleetAccumulator::merge` is exact.
#[test]
fn merged_shard_flames_are_byte_identical_to_the_whole_fleet() {
    let root = std::env::temp_dir().join(format!("leakprofd-flame-merge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let demo = DemoFleet::build(10, 2, 7);
    let server = demo.hub.serve("127.0.0.1:0", 4).unwrap();
    let targets = demo.targets(server.addr());
    let map = ShardMap::new(3);
    let mut dirs: Vec<PathBuf> = Vec::new();
    for i in 0..3 {
        let dir = root.join(format!("shard{i}"));
        let config = DaemonConfig {
            state_dir: Some(dir.clone()),
            snapshot_every: 2,
            shard: Some(ShardSpec {
                map: map.clone(),
                index: i,
            }),
            ..DaemonConfig::default()
        };
        let mut d = Daemon::new(config, lp(), targets.clone()).unwrap();
        for _ in 0..3 {
            d.run_cycle();
        }
        d.commit_snapshot().unwrap();
        d.flush_telemetry().unwrap();
        dirs.push(dir);
    }
    let mut whole = Daemon::new(DaemonConfig::default(), lp(), targets).unwrap();
    for _ in 0..3 {
        whole.run_cycle();
    }
    let whole_folded = build_flame(&whole.accumulator().snapshot(), live_weight).to_folded();
    assert!(!whole_folded.is_empty(), "demo fleet has blocked stacks");

    let config = MergeConfig::default();
    let mut merged = merge_state_dirs(&dirs, &config).unwrap();
    let merged_folded = build_flame(&merged.acc.snapshot(), live_weight).to_folded();
    assert_eq!(
        merged_folded, whole_folded,
        "3-shard merged flame must be byte-identical to the whole-fleet daemon's"
    );

    // write_merged persists the same bytes as flame.txt.
    let out = root.join("merged");
    write_merged(&out, &mut merged, &config).unwrap();
    assert_eq!(
        std::fs::read_to_string(out.join("flame.txt")).unwrap(),
        whole_folded
    );

    // The whole daemon's live /flame.txt serves those bytes too, and
    // /flame renders them as a self-contained SVG document.
    let daemon = Arc::new(Mutex::new(whole));
    let endpoint = serve_daemon_endpoints(daemon, "127.0.0.1:0").unwrap();
    assert_eq!(get(endpoint.addr(), "/flame.txt"), whole_folded);
    let html = get(endpoint.addr(), "/flame");
    assert!(html.contains("<svg"), "flame page embeds an SVG");
    assert!(
        FlameGraph::from_folded(&whole_folded).unwrap().total() > 0,
        "folded output round-trips"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// Injects a regression mid-run and checks the `?from=&to=` view over
/// the step isolates the leaky subtrees within 3 cycles: every folded
/// line in the differential lands on a ground-truth leak site, a flat
/// window diffs to nothing, and the `/flame` HTML colors the regressing
/// subtree from the `/health` verdicts.
#[test]
fn differential_flame_isolates_the_injected_regression() {
    let mut demo = DemoFleet::build(12, 1, 11);
    let server = demo.hub.serve("127.0.0.1:0", 4).unwrap();
    let targets = demo.targets(server.addr());
    let daemon = Arc::new(Mutex::new(
        Daemon::new(DaemonConfig::default(), lp(), targets).unwrap(),
    ));

    // Two baseline cycles over the same published profiles (flat), then
    // the regression: the fleet advances a day before each of the next
    // three cycles, so leak sites grow every cycle from cycle 3 on.
    for _ in 0..2 {
        daemon.lock().unwrap().run_cycle();
    }
    for _ in 0..3 {
        demo.advance_and_republish(1);
        daemon.lock().unwrap().run_cycle();
    }

    let endpoint = serve_daemon_endpoints(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
    let addr = endpoint.addr();

    // A flat window diffs to an empty flame.
    let flat_text = get(addr, "/flame.txt?from=1&to=2");
    let flat = FlameGraph::from_folded(&flat_text).unwrap();
    assert_eq!(flat.total(), 0, "no growth before the injected step");

    // The step window isolates the leak sites: growth appears, and
    // every grown stack blames a ground-truth leak location.
    let diff_text = get(addr, "/flame.txt?from=2&to=5");
    let diff = FlameGraph::from_folded(&diff_text).unwrap();
    assert!(diff.total() > 0, "regression growth shows up: {diff_text}");
    let leak_files: Vec<&str> = demo
        .leak_sites
        .iter()
        .map(|(file, _)| file.as_str())
        .collect();
    for line in diff_text.lines() {
        assert!(
            leak_files.iter().any(|f| line.contains(f)),
            "differential stack {line:?} is not a known leak site {leak_files:?}"
        );
    }
    assert!(
        !diff_text.contains("ok/"),
        "the healthy service never grows: {diff_text}"
    );

    // Live flame still shows everything the differential filtered out.
    let live = FlameGraph::from_folded(&get(addr, "/flame.txt")).unwrap();
    assert!(live.total() >= diff.total());

    // After 5 cycles of telemetry (3 of them growing), /health flags
    // the leak sites and the HTML flame colors their subtrees.
    let html = get(addr, "/flame?from=2&to=5");
    assert!(html.contains("<svg"));
    assert!(
        html.contains("data-health=\"regressing\""),
        "regressing subtree must be colored in the flame"
    );
}
