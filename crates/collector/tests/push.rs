//! Push-mode ingestion end-to-end: push-only and mixed push+pull
//! cycles land in one ranking (newest profile per instance wins), the
//! daemon never blocks a cycle under overload, and the tentpole
//! robustness differential — after a shed burst (including a kill -9
//! mid-burst) the converged ranking is **byte-identical** to a
//! never-overloaded daemon fed the same final profiles.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use collector::{
    http_post, serve_daemon_endpoints_with, Daemon, DaemonConfig, DemoFleet, IngestConfig,
    ProfileHub, PushClient, PushConfig, ScrapeConfig,
};
use gosim::GoroutineProfile;
use leakprof::LeakProf;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("leakprofd-push-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Analyzer with criterion-2 sources indexed, as the chaos suite does.
fn lp_for(demo: &DemoFleet) -> LeakProf {
    demo.leakprof(20, 10)
}

fn fast_scrape(seed: u64) -> ScrapeConfig {
    ScrapeConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(250),
        jitter_seed: seed,
        ..ScrapeConfig::default()
    }
}

/// Fetches every instance's current profile off the fleet hub — what a
/// pusher embedded in each instance would deliver.
fn fleet_profiles(demo: &DemoFleet, addr: std::net::SocketAddr) -> Vec<GoroutineProfile> {
    let mut out = Vec::new();
    for id in demo.hub.instances() {
        let body = collector::http_get(
            addr,
            &ProfileHub::profile_path(&id),
            Duration::from_millis(500),
            Duration::from_millis(1000),
        )
        .expect("profile fetch");
        out.push(serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("profile JSON"));
    }
    out
}

/// A push-only daemon (no scrape targets) fed the fleet's profiles over
/// real HTTP ranks byte-identically to a pull daemon scraping the same
/// fleet: the two tiers land in one analysis path.
#[test]
fn push_only_ranking_matches_pull_ranking_byte_for_byte() {
    let demo = DemoFleet::build(8, 2, 11);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let targets = demo.targets(server.addr());

    // Pull daemon: one ordinary scrape cycle.
    let mut pull = Daemon::new(
        DaemonConfig {
            scrape: fast_scrape(11),
            ..DaemonConfig::default()
        },
        lp_for(&demo),
        targets,
    )
    .expect("pull daemon");
    let report = pull.run_cycle();
    assert_eq!(report.stats.failed, 0);
    let pull_render = pull.last_report().expect("report").render();

    // Push daemon: zero targets, profiles arrive via POST /api/push
    // through the real HTTP stack and the PushClient retry loop.
    let push = Daemon::new(
        DaemonConfig {
            ingest: Some(IngestConfig::default()),
            ..DaemonConfig::default()
        },
        lp_for(&demo),
        vec![],
    )
    .expect("push daemon");
    let tier = Arc::clone(push.ingest_tier().expect("tier configured"));
    let push = Arc::new(Mutex::new(push));
    let endpoint = serve_daemon_endpoints_with(Arc::clone(&push), "127.0.0.1:0", 2).expect("bind");

    let mut client = PushClient::new(endpoint.addr(), PushConfig::default());
    for profile in fleet_profiles(&demo, server.addr()) {
        let receipt = client.push(&profile).expect("push admitted");
        assert_eq!(receipt.attempts, 1, "uncontended pushes admit first try");
    }
    assert!(
        tier.quiesce(Duration::from_secs(5)),
        "absorbers drain the queue"
    );
    push.lock().unwrap().run_cycle();

    let d = push.lock().unwrap();
    assert_eq!(
        d.last_report().expect("report").render(),
        pull_render,
        "push and pull tiers must produce one identical ranking"
    );
    let summary = d.status().ingest.expect("ingest summary in status");
    assert_eq!(summary.push_total, 8);
    assert_eq!(summary.admitted_total, 8);
    assert_eq!(summary.shed_total, 0);
    assert_eq!(summary.drained_total, 8);
}

/// The same instance reachable via both tiers contributes exactly once
/// per cycle, and the newest capture wins: a stale push loses to the
/// scrape, a fresher push beats it.
#[test]
fn mixed_push_and_pull_dedupes_to_newest_per_instance() {
    let demo = DemoFleet::build(4, 2, 13);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let targets = demo.targets(server.addr());
    let profiles = fleet_profiles(&demo, server.addr());
    let pulled_goroutines: u64 = profiles.iter().map(|p| p.goroutines.len() as u64).sum();
    let last = profiles.last().expect("nonempty fleet");

    let mut daemon = Daemon::new(
        DaemonConfig {
            scrape: fast_scrape(13),
            ingest: Some(IngestConfig::default()),
            ..DaemonConfig::default()
        },
        lp_for(&demo),
        targets,
    )
    .expect("daemon");
    let tier = Arc::clone(daemon.ingest_tier().expect("tier"));

    // A stale push for the first instance: empty profile, older capture
    // — must lose to the scraped one.
    let stale = GoroutineProfile {
        instance: profiles[0].instance.clone(),
        captured_at: 0,
        goroutines: vec![],
    };
    // A fresher push for the last instance: empty profile, newer
    // capture — must beat the scraped one.
    let fresh = GoroutineProfile {
        instance: last.instance.clone(),
        captured_at: last.captured_at + 1_000,
        goroutines: vec![],
    };
    for p in [&stale, &fresh] {
        let resp = tier.handle_push(serde_json::to_string(p).unwrap().as_bytes());
        assert_eq!(resp.status, 200);
    }
    assert!(tier.quiesce(Duration::from_secs(5)));
    daemon.run_cycle();

    let report = daemon.last_report().expect("report");
    assert_eq!(
        report.profiles_analyzed, 4,
        "each instance contributes exactly once per cycle"
    );
    assert_eq!(
        report.goroutines_seen,
        pulled_goroutines - last.goroutines.len() as u64,
        "the fresher (empty) push replaced the last instance's scrape; \
         the stale push changed nothing"
    );
}

/// Overload never blocks the cycle loop: with absorbers frozen and the
/// queue at the watermark, pushes shed with 429 while `run_cycle`
/// still completes promptly.
#[test]
fn overloaded_daemon_never_blocks_a_cycle() {
    let demo = DemoFleet::build(6, 2, 17);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let profiles = fleet_profiles(&demo, server.addr());

    let mut daemon = Daemon::new(
        DaemonConfig {
            ingest: Some(IngestConfig {
                queue_capacity: 2,
                ..IngestConfig::default()
            }),
            ..DaemonConfig::default()
        },
        lp_for(&demo),
        vec![],
    )
    .expect("daemon");
    let tier = Arc::clone(daemon.ingest_tier().expect("tier"));
    tier.pause_absorbers(true);
    for p in &profiles {
        tier.handle_push(serde_json::to_string(p).unwrap().as_bytes());
    }
    let summary = tier.summary();
    assert!(summary.shed_total > 0, "burst past the watermark must shed");
    assert_eq!(summary.queue_depth, 2, "queue pinned at capacity");

    let started = std::time::Instant::now();
    daemon.run_cycle();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "a full queue must not stall the cycle"
    );
    tier.pause_absorbers(false);
}

/// The tentpole differential: a daemon that shed a burst and was then
/// killed -9 mid-burst converges — once the pushers re-deliver their
/// final profiles — to a ranking byte-identical to a daemon that never
/// saw overload.
#[test]
fn shed_burst_and_kill_converge_byte_identical_to_unloaded_run() {
    let demo = DemoFleet::build(10, 2, 19);
    let server = demo.hub.serve("127.0.0.1:0", 4).expect("bind");
    let finals = fleet_profiles(&demo, server.addr());

    // Reference: never overloaded, fed exactly the final profiles.
    let mut reference = Daemon::new(
        DaemonConfig {
            ingest: Some(IngestConfig::default()),
            ..DaemonConfig::default()
        },
        lp_for(&demo),
        vec![],
    )
    .expect("reference daemon");
    let tier = Arc::clone(reference.ingest_tier().expect("tier"));
    for p in &finals {
        assert_eq!(
            tier.handle_push(serde_json::to_string(p).unwrap().as_bytes())
                .status,
            200
        );
    }
    assert!(tier.quiesce(Duration::from_secs(5)));
    reference.run_cycle();
    let reference_render = reference.last_report().expect("report").render();

    // Victim: tiny queue, frozen absorbers, a burst of stale profiles
    // that mostly sheds — then kill -9 before anything is durable.
    let dir = temp_dir("killburst");
    let config = DaemonConfig {
        state_dir: Some(dir.clone()),
        ingest: Some(IngestConfig {
            queue_capacity: 3,
            ..IngestConfig::default()
        }),
        ..DaemonConfig::default()
    };
    let victim = Daemon::new(config.clone(), lp_for(&demo), vec![]).expect("victim daemon");
    let tier = Arc::clone(victim.ingest_tier().expect("tier"));
    tier.pause_absorbers(true);
    for p in &finals {
        let mut stale = p.clone();
        stale.captured_at = stale.captured_at.saturating_sub(1_000);
        tier.handle_push(serde_json::to_string(&stale).unwrap().as_bytes());
        tier.handle_push(serde_json::to_string(p).unwrap().as_bytes());
    }
    let mid_burst = tier.summary();
    assert!(mid_burst.shed_total > 0, "the burst must shed");
    drop(victim); // kill -9: queued and coalesced pushes are pre-WAL, gone

    // Restart: clean recovery (nothing was durable), pushers re-deliver
    // their final profiles over real HTTP with Retry-After-honoring
    // backoff — small queue, so some pushes shed and retry.
    let recovered = Daemon::new(config, lp_for(&demo), vec![]).expect("daemon recovers");
    assert_eq!(recovered.recovered_cycle(), 0, "no cycle survived the kill");
    let tier = Arc::clone(recovered.ingest_tier().expect("tier"));
    let recovered = Arc::new(Mutex::new(recovered));
    let endpoint =
        serve_daemon_endpoints_with(Arc::clone(&recovered), "127.0.0.1:0", 2).expect("bind");
    let mut client = PushClient::new(
        endpoint.addr(),
        PushConfig {
            backoff_base: Duration::from_millis(10),
            ..PushConfig::default()
        },
    );
    for p in &finals {
        client
            .push(p)
            .expect("re-push admitted within retry budget");
    }
    assert!(tier.quiesce(Duration::from_secs(5)));
    recovered.lock().unwrap().run_cycle();

    let d = recovered.lock().unwrap();
    assert_eq!(
        d.last_report().expect("report").render(),
        reference_render,
        "post-burst converged ranking must be byte-identical to the unloaded run"
    );
    let summary = d.status().ingest.expect("summary");
    assert_eq!(summary.admitted_total, finals.len() as u64);
    drop(d);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/api/push` over the wire: permanent rejections come back as HTTP
/// statuses (not connection drops), and a daemon without the tier says
/// 404 rather than pretending to ingest.
#[test]
fn push_route_rejects_cleanly_over_http() {
    let lp = || {
        LeakProf::new(leakprof::Config {
            threshold: 20,
            ast_filter: false,
            top_n: 10,
        })
    };
    // Push enabled: garbage is a 400, and the response body says why.
    let daemon = Daemon::new(
        DaemonConfig {
            ingest: Some(IngestConfig::default()),
            ..DaemonConfig::default()
        },
        lp(),
        vec![],
    )
    .expect("daemon");
    let daemon = Arc::new(Mutex::new(daemon));
    let endpoint =
        serve_daemon_endpoints_with(Arc::clone(&daemon), "127.0.0.1:0", 2).expect("bind");
    let meta = http_post(
        endpoint.addr(),
        "/api/push",
        "application/json",
        b"not json",
        Duration::from_millis(500),
        Duration::from_millis(1000),
    )
    .expect("response comes back");
    assert_eq!(meta.status, 400);
    assert!(String::from_utf8_lossy(&meta.body).contains("unparseable"));

    // Push disabled: the route 404s with a hint.
    let plain = Daemon::new(DaemonConfig::default(), lp(), vec![]).expect("daemon");
    let plain = Arc::new(Mutex::new(plain));
    let endpoint = serve_daemon_endpoints_with(Arc::clone(&plain), "127.0.0.1:0", 2).expect("bind");
    let meta = http_post(
        endpoint.addr(),
        "/api/push",
        "application/json",
        b"{}",
        Duration::from_millis(500),
        Duration::from_millis(1000),
    )
    .expect("response comes back");
    assert_eq!(meta.status, 404);
    assert!(String::from_utf8_lossy(&meta.body).contains("serve --push"));
    assert!(plain.lock().unwrap().status().ingest.is_none());
}
