//! # leakprof — production goroutine-profile analysis (paper Section V)
//!
//! LeakProf finds goroutine leaks in *running services* by analyzing
//! goroutine profiles (the simulator's [`gosim::GoroutineProfile`],
//! mirroring pprof):
//!
//! 1. **Signature detection** ([`signature`]): goroutines blocked on
//!    channel operations are recognized by the `runtime.gopark` /
//!    `runtime.chansend1|chanrecv1|selectgo` stack pattern (Fig 4), and
//!    grouped by the source location of the blocking operation.
//! 2. **Criterion 1 — threshold** ([`analyze`]): only sites where some
//!    single profile shows at least `threshold` blocked goroutines are
//!    suspicious (the paper uses 10 000).
//! 3. **Criterion 2 — transient-op filter** ([`filter`]): a small
//!    AST-level static analysis drops `select`s that only wait on
//!    `time.Tick`/`time.After`/`ctx.Done()`.
//! 4. **RMS ranking and routing** ([`analyze`], [`report`]): sites are
//!    ranked by root-mean-square of per-instance blocked counts —
//!    chosen because it surfaces single-instance spikes — and the top N
//!    are routed to code owners.
//!
//! ## Example
//!
//! ```
//! use gosim::Runtime;
//! use leakprof::{LeakProf, Config};
//!
//! // A leaky service instance: 64 handler goroutines stuck sending.
//! let src = r#"
//! package pay
//!
//! func Serve(n int) {
//!     ch := make(chan int)
//!     for i := 0; i < n; i++ {
//!         go func() {
//!             ch <- i
//!         }()
//!     }
//!     first := <-ch
//!     _ = first
//! }
//! "#;
//! let prog = minigo::compile(src, "pay/serve.go").unwrap();
//! let mut rt = Runtime::with_seed(0);
//! prog.spawn_func(&mut rt, "pay.Serve", vec![64i64.into()]);
//! rt.run_until_blocked(100_000);
//!
//! let profile = rt.goroutine_profile("pay-host-0");
//! let mut lp = LeakProf::new(Config { threshold: 50, ..Config::default() });
//! lp.index_source(src, "pay/serve.go").unwrap();
//! let report = lp.analyze(&[profile]);
//! assert_eq!(report.suspects.len(), 1);
//! assert_eq!(report.suspects[0].stats.total, 63); // n-1 leaked senders
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod filter;
pub mod history;
pub mod report;
pub mod series;
pub mod signature;

pub use analyze::{
    aggregate, aggregate_parallel, analyze_profile, fold_profiles, rms, AccumulatorSnapshot,
    Config, FleetAccumulator, ProfileSites, SiteSnapshot, SiteStats, SNAPSHOT_VERSION,
};
pub use filter::{is_transient, SourceIndex, VerdictSet};
pub use history::{Issue, IssueStatus, SweepDelta, SweepStore};
pub use report::{OwnerDb, Report, Suspect};
pub use series::{op_fingerprint, site_fingerprint};
pub use signature::{blocked_op, BlockedOp, ChanOpKind};

use gosim::GoroutineProfile;

/// The LeakProf service: configuration + source index + ownership, with
/// a one-call [`LeakProf::analyze`] entry point for a daily sweep.
#[derive(Debug, Default)]
pub struct LeakProf {
    config: Config,
    index: SourceIndex,
    owners: OwnerDb,
}

impl LeakProf {
    /// Creates a LeakProf instance with the given configuration.
    pub fn new(config: Config) -> Self {
        LeakProf {
            config,
            index: SourceIndex::new(),
            owners: OwnerDb::new(),
        }
    }

    /// Adds source code to the AST index used by the criterion-2 filter.
    ///
    /// # Errors
    ///
    /// Returns parse diagnostics for malformed source.
    pub fn index_source(&mut self, src: &str, path: &str) -> Result<(), Vec<minigo::Diag>> {
        self.index.insert_source(src, path)
    }

    /// Adds a pre-parsed file to the AST index.
    pub fn index_file(&mut self, file: minigo::ast::File) {
        self.index.insert(file);
    }

    /// Installs precomputed criterion-2 verdicts (see [`VerdictSet`]);
    /// covered files then answer filter queries without AST resolution.
    pub fn install_verdicts(&mut self, verdicts: VerdictSet) {
        self.index.install_verdicts(verdicts);
    }

    /// Turns the criterion-2 AST filter on or off after construction.
    pub fn set_ast_filter(&mut self, on: bool) {
        self.config.ast_filter = on;
    }

    /// Registers a code owner for a path prefix.
    pub fn add_owner(&mut self, prefix: &str, owner: &str) {
        self.owners.insert(prefix, owner);
    }

    /// Analyzes a set of profiles (one per service instance) and returns
    /// the ranked, routed report.
    pub fn analyze(&self, profiles: &[GoroutineProfile]) -> Report {
        let stats = aggregate(profiles, &self.config, &self.index);
        self.build_report(stats, profiles)
    }

    /// Multi-threaded variant of [`LeakProf::analyze`] for large sweeps.
    pub fn analyze_parallel(&self, profiles: &[GoroutineProfile], threads: usize) -> Report {
        let stats = aggregate_parallel(profiles, &self.config, &self.index, threads);
        self.build_report(stats, profiles)
    }

    /// Builds the ranked, routed report from a streaming accumulator.
    ///
    /// For the same profiles in the same order, this matches what
    /// [`LeakProf::analyze`] returns — the collection daemon uses it to
    /// report after every scrape cycle without re-analyzing history.
    pub fn report_from_accumulator(&self, acc: &FleetAccumulator) -> Report {
        let stats = acc.ranked(&self.config, &self.index);
        Report {
            suspects: report::route(stats, &self.owners),
            profiles_analyzed: acc.profiles_ingested(),
            goroutines_seen: acc.goroutines_seen(),
        }
    }

    fn build_report(&self, stats: Vec<SiteStats>, profiles: &[GoroutineProfile]) -> Report {
        Report {
            suspects: report::route(stats, &self.owners),
            profiles_analyzed: profiles.len(),
            goroutines_seen: profiles.iter().map(|p| p.len() as u64).sum(),
        }
    }
}
