//! Telemetry series-id derivation.
//!
//! Every time-series the daemon records is keyed by a stable string id
//! derived here, so the online recorder, the `/api/series` endpoint,
//! the offline backtest, and the report ledger all agree on what a
//! "site" is. Site series reuse the ledger's fingerprint scheme — the
//! rendered blocking operation + source location (e.g.
//! `send at pay/handler.go:10`) — which is already the deduplication
//! key for paging, so a `/health` verdict, a ledger episode, and a
//! stored series line up one-to-one.

use crate::analyze::SiteStats;
use crate::signature::BlockedOp;

/// The fingerprint a site is identified by everywhere: the rendered
/// blocking operation + source site. This is the same string the
/// report ledger deduplicates on.
pub fn site_fingerprint(stats: &SiteStats) -> String {
    op_fingerprint(&stats.op)
}

/// [`site_fingerprint`] from the blocking operation alone — what the
/// flame tier uses, since accumulator snapshots carry [`BlockedOp`]s
/// rather than ranked [`SiteStats`].
pub fn op_fingerprint(op: &BlockedOp) -> String {
    op.to_string()
}

/// Series id of a site's fleet-wide RMS impact.
pub fn site_rms_id(fingerprint: &str) -> String {
    format!("site_rms:{fingerprint}")
}

/// Series id of a site's total blocked-goroutine count.
pub fn site_total_id(fingerprint: &str) -> String {
    format!("site_total:{fingerprint}")
}

/// Series id of a site's **raw** cumulative blocked count: the sum of
/// the accumulator's per-instance counts with no occurrence weighting
/// (unlike `site_total`, which weighs each instance by how many
/// profiles it contributed). Because every cycle re-ingests the site's
/// current blocked population, the first difference of this series is
/// exactly that population — the quantity differential flamegraphs
/// subtract.
pub fn site_blocked_id(fingerprint: &str) -> String {
    format!("site_blocked:{fingerprint}")
}

/// Series id of one instance's total blocked-goroutine count.
pub fn instance_blocked_id(instance: &str) -> String {
    format!("instance_blocked:{instance}")
}

/// Series id of one pipeline stage's p50 latency (µs).
pub fn stage_p50_id(stage: &str) -> String {
    format!("stage_p50_us:{stage}")
}

/// Series id of the adaptive scrape interval (ms).
pub const INTERVAL_MS_ID: &str = "interval_ms";

/// Series id of the scrape-cycle wall time (ms).
pub const CYCLE_WALL_MS_ID: &str = "cycle_wall_ms";

/// The fingerprint inside a `site_rms:`/`site_total:`/`site_blocked:`
/// series id, if the id is a site series.
pub fn fingerprint_of(series_id: &str) -> Option<&str> {
    series_id
        .strip_prefix("site_rms:")
        .or_else(|| series_id.strip_prefix("site_total:"))
        .or_else(|| series_id.strip_prefix("site_blocked:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ids_roundtrip_the_fingerprint() {
        let fp = "send at pay/handler.go:10";
        assert_eq!(fingerprint_of(&site_rms_id(fp)), Some(fp));
        assert_eq!(fingerprint_of(&site_total_id(fp)), Some(fp));
        assert_eq!(fingerprint_of(&site_blocked_id(fp)), Some(fp));
        assert_eq!(fingerprint_of(INTERVAL_MS_ID), None);
        assert_eq!(fingerprint_of(&instance_blocked_id("pay-0")), None);
    }
}
