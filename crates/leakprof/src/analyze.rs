//! Fleet-wide profile analysis: thresholding, aggregation, and RMS
//! impact ranking (paper Section V-A).

use std::collections::HashMap;

use gosim::{GoroutineProfile, GoroutineRecord};
use serde::{Deserialize, Serialize};

use crate::filter::{is_transient, SourceIndex};
use crate::signature::{blocked_op, BlockedOp};

/// Analysis configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// Criterion 1: minimum blocked goroutines at one source location in
    /// a single profile for the site to be marked suspicious. The paper
    /// uses 10 000 in production; simulations usually scale it down.
    pub threshold: u64,
    /// Criterion 2: run the AST transient-operation filter.
    pub ast_filter: bool,
    /// Report only the top-N sites by RMS impact.
    pub top_n: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threshold: 10_000,
            ast_filter: true,
            top_n: 10,
        }
    }
}

/// Per-site aggregate across the whole profile set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteStats {
    /// The blocking operation (kind + source location).
    pub op: BlockedOp,
    /// Blocked-goroutine count per analyzed profile (instance name,
    /// count); instances with zero blocked goroutines at this site are
    /// included so that RMS reflects fleet-wide impact.
    pub per_instance: Vec<(String, u64)>,
    /// Total blocked goroutines across all profiles.
    pub total: u64,
    /// The largest single-instance count.
    pub max_instance: u64,
    /// Number of profiles in which the site exceeded the threshold.
    pub instances_over_threshold: usize,
    /// Root-mean-square of per-instance counts — the paper's impact
    /// metric, chosen because it highlights single-instance spikes.
    pub rms: f64,
    /// A representative blocked goroutine (from the most-affected
    /// instance), carrying the full stack for the report.
    pub representative: GoroutineRecord,
}

impl SiteStats {
    /// Mean per-instance count, provided for the RMS-vs-mean ablation.
    pub fn mean(&self) -> f64 {
        if self.per_instance.is_empty() {
            return 0.0;
        }
        self.total as f64 / self.per_instance.len() as f64
    }
}

/// Root-mean-square of a count vector.
pub fn rms(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (sum_sq / counts.len() as f64).sqrt()
}

/// Representative election as a join: the candidate with the larger
/// electing count wins; on equal counts the record that serializes
/// smaller wins. The tie-break makes election a commutative,
/// associative, idempotent fold over per-profile candidates, so any
/// shard partition of the fleet — merged in any order — elects the
/// same representative as one accumulator over everything. (Count
/// comparison alone would leave ties to ingestion/merge order, and a
/// sharded merge would diverge from the whole-fleet run byte-wise.)
fn rep_wins(count: u64, rep: &GoroutineRecord, incumbent: &(u64, GoroutineRecord)) -> bool {
    match count.cmp(&incumbent.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => {
            // Structurally equal records serialize identically, so the
            // strict `<` below is false — skip the serialization. This
            // is the common case when one site looks the same across a
            // homogeneous fleet, and it keeps tie-breaks off the
            // cycle's hot path.
            if *rep == incumbent.1 {
                return false;
            }
            serde_json::to_string(rep).unwrap_or_default()
                < serde_json::to_string(&incumbent.1).unwrap_or_default()
        }
    }
}

/// One profile's analysis: per blocking site, the blocked-goroutine
/// count and a representative goroutine. The unit of work that can be
/// computed away from the accumulator — off-thread, or in the push
/// tier's absorbers — and folded in later via
/// [`FleetAccumulator::merge_profile_sites`].
pub type ProfileSites = HashMap<BlockedOp, (u64, GoroutineRecord)>;

/// Analyzes one profile: groups channel-blocked goroutines by blocking
/// site and returns per-site counts plus a representative goroutine.
pub fn analyze_profile(profile: &GoroutineProfile) -> ProfileSites {
    let mut sites: ProfileSites = HashMap::new();
    for g in &profile.goroutines {
        if let Some(op) = blocked_op(g) {
            sites
                .entry(op)
                .and_modify(|(c, _)| *c += 1)
                .or_insert_with(|| (1, g.clone()));
        }
    }
    sites
}

/// Aggregates many profiles into ranked site statistics.
///
/// Implements the paper's pipeline: per-profile grouping, criterion-1
/// thresholding, optional criterion-2 AST filtering, then fleet-wide RMS
/// ranking. `index` supplies source ASTs for the filter; pass an empty
/// index to skip resolution (all sites kept).
pub fn aggregate(
    profiles: &[GoroutineProfile],
    config: &Config,
    index: &SourceIndex,
) -> Vec<SiteStats> {
    let mut acc = FleetAccumulator::new();
    for p in profiles {
        acc.ingest(p);
    }
    acc.ranked(config, index)
}

/// Aggregates profiles using worker threads, mirroring the paper's
/// analysis box that chews through ~200K profiles in under a minute.
/// Per-profile grouping fans out across `threads`; the final aggregation
/// is sequential.
pub fn aggregate_parallel(
    profiles: &[GoroutineProfile],
    config: &Config,
    index: &SourceIndex,
    threads: usize,
) -> Vec<SiteStats> {
    if threads <= 1 || profiles.len() < 2 {
        return aggregate(profiles, config, index);
    }
    // Parallel phase: per-profile site maps.
    let chunk = profiles.len().div_ceil(threads);
    type SiteMap = HashMap<BlockedOp, (u64, GoroutineRecord)>;
    let maps: Vec<Vec<(String, SiteMap)>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for part in profiles.chunks(chunk) {
            handles.push(s.spawn(move || {
                part.iter()
                    .map(|p| (p.instance.clone(), analyze_profile(p)))
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis worker panicked"))
            .collect()
    });

    // Sequential merge, then reuse the streaming accumulator's ranking
    // logic by replaying the per-profile site maps in profile order.
    let mut acc = FleetAccumulator::new();
    for (p, group) in profiles.iter().zip(maps.iter().flatten()) {
        let (instance, sites) = group;
        debug_assert_eq!(&p.instance, instance);
        acc.merge_profile_sites(instance, sites, p.len() as u64);
    }
    acc.ranked(config, index)
}

/// Builds a [`FleetAccumulator`] over `profiles` using up to `threads`
/// worker threads, **exactly** equivalent to ingesting the profiles
/// sequentially in slice order: the slice is split into contiguous
/// chunks, each chunk folded into its own accumulator off-thread, and
/// the per-chunk accumulators [`FleetAccumulator::merge`]d back in
/// chunk order. Counts are sums and representative election is an
/// order-independent join, so the resulting snapshot is byte-identical
/// to the sequential fold — this is what lets the daemon's push tier
/// absorb a 10K-instance cycle on worker shards and still land in the
/// same ranking as a pull-only daemon.
pub fn fold_profiles(profiles: &[GoroutineProfile], threads: usize) -> FleetAccumulator {
    let mut acc = FleetAccumulator::new();
    if threads <= 1 || profiles.len() < 2 {
        for p in profiles {
            acc.ingest(p);
        }
        return acc;
    }
    let chunk = profiles.len().div_ceil(threads);
    let parts: Vec<FleetAccumulator> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for part in profiles.chunks(chunk) {
            handles.push(s.spawn(move || {
                let mut shard = FleetAccumulator::new();
                for p in part {
                    shard.ingest(p);
                }
                shard
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("fold worker panicked"))
            .collect()
    });
    for part in &parts {
        acc.merge(part);
    }
    acc
}

/// Incremental fleet-wide aggregation for streaming collection.
///
/// Holds the same per-site accumulators [`aggregate`] builds, but accepts
/// profiles one at a time so a collection daemon can ingest each scrape
/// as it lands — per-cycle cost is O(goroutines in the new profiles),
/// not O(all profiles ever seen). [`FleetAccumulator::ranked`] can be
/// called at any point (it does not consume the accumulator) and yields
/// exactly what [`aggregate`] would return for the same profiles in the
/// same ingestion order.
#[derive(Debug, Default, Clone)]
pub struct FleetAccumulator {
    /// site -> per-instance blocked counts.
    acc: HashMap<BlockedOp, HashMap<String, u64>>,
    /// site -> (best single-profile count, representative goroutine).
    reps: HashMap<BlockedOp, (u64, GoroutineRecord)>,
    /// Instance name of every ingested profile, in ingestion order.
    instances: Vec<String>,
    /// Derived index over `instances`: how many ingested profiles bore
    /// each name. Kept in lockstep so [`FleetAccumulator::ranked`] can
    /// weigh a name once per occurrence without rescanning the
    /// ever-growing `instances` list on every ranking.
    occ: HashMap<String, u64>,
    /// Total goroutines inspected (blocked or not).
    goroutines_seen: u64,
}

/// Current [`AccumulatorSnapshot`] format version. Bump when the layout
/// changes; [`FleetAccumulator::from_snapshot`] rejects other versions so
/// a daemon never silently recovers from an incompatible file.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One site's accumulated state, as persisted in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSnapshot {
    /// The blocking operation (the grouping key).
    pub op: BlockedOp,
    /// Per-instance blocked counts, sorted by instance name.
    pub per_instance: Vec<(String, u64)>,
    /// The single-profile count that elected the representative.
    pub rep_count: u64,
    /// The representative goroutine carried into reports.
    pub representative: GoroutineRecord,
}

/// A versioned, serialized [`FleetAccumulator`]: everything needed to
/// resume streaming analysis after a daemon restart, or to merge the
/// state of several collector shards into one fleet-wide accumulator.
///
/// The layout is fully deterministic (sites sorted by op, per-instance
/// vectors sorted by name), so serializing the same accumulator twice
/// yields byte-identical JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccumulatorSnapshot {
    /// Format version; see [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// Per-site accumulated state, sorted by op.
    pub sites: Vec<SiteSnapshot>,
    /// Instance name of every ingested profile, in ingestion order
    /// (repeats preserved — ranking depends on it).
    pub instances: Vec<String>,
    /// Total goroutines inspected.
    pub goroutines_seen: u64,
}

impl FleetAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes the accumulator into a versioned, deterministic
    /// snapshot. [`FleetAccumulator::from_snapshot`] restores a state
    /// whose [`FleetAccumulator::ranked`] output is identical.
    pub fn snapshot(&self) -> AccumulatorSnapshot {
        let mut sites: Vec<SiteSnapshot> = self
            .acc
            .iter()
            .map(|(op, by_instance)| {
                let mut per_instance: Vec<(String, u64)> =
                    by_instance.iter().map(|(k, v)| (k.clone(), *v)).collect();
                per_instance.sort();
                let (rep_count, representative) =
                    self.reps.get(op).cloned().expect("every site has a rep");
                SiteSnapshot {
                    op: op.clone(),
                    per_instance,
                    rep_count,
                    representative,
                }
            })
            .collect();
        sites.sort_by(|a, b| a.op.cmp(&b.op));
        AccumulatorSnapshot {
            version: SNAPSHOT_VERSION,
            sites,
            instances: self.instances.clone(),
            goroutines_seen: self.goroutines_seen,
        }
    }

    /// Restores an accumulator from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot's version is not
    /// [`SNAPSHOT_VERSION`].
    pub fn from_snapshot(snap: &AccumulatorSnapshot) -> Result<FleetAccumulator, String> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(format!(
                "unsupported accumulator snapshot version {} (expected {})",
                snap.version, SNAPSHOT_VERSION
            ));
        }
        let mut acc = FleetAccumulator::new();
        for site in &snap.sites {
            acc.acc
                .insert(site.op.clone(), site.per_instance.iter().cloned().collect());
            acc.reps.insert(
                site.op.clone(),
                (site.rep_count, site.representative.clone()),
            );
        }
        acc.instances = snap.instances.clone();
        for name in &snap.instances {
            match acc.occ.get_mut(name) {
                Some(n) => *n += 1,
                None => {
                    acc.occ.insert(name.clone(), 1);
                }
            }
        }
        acc.goroutines_seen = snap.goroutines_seen;
        Ok(acc)
    }

    /// Merges another accumulator into this one, as the sharded-collection
    /// merge tier does with per-shard state: per-instance counts add,
    /// representatives are re-elected under [`rep_wins`] (count, then a
    /// deterministic content tie-break), and the other shard's profiles
    /// append in its ingestion order. Because counts are a sum and
    /// election is a semilattice join, the *ranking* of the merged
    /// accumulator is independent of how the fleet was partitioned into
    /// shards and of the order shards are merged in.
    pub fn merge(&mut self, other: &FleetAccumulator) {
        for (op, by_instance) in &other.acc {
            let mine = self.acc.entry(op.clone()).or_default();
            for (instance, count) in by_instance {
                *mine.entry(instance.clone()).or_insert(0) += count;
            }
        }
        for (op, (count, rep)) in &other.reps {
            let entry = self
                .reps
                .entry(op.clone())
                .or_insert_with(|| (*count, rep.clone()));
            if rep_wins(*count, rep, entry) {
                *entry = (*count, rep.clone());
            }
        }
        for (instance, n) in &other.occ {
            match self.occ.get_mut(instance) {
                Some(mine) => *mine += n,
                None => {
                    self.occ.insert(instance.clone(), *n);
                }
            }
        }
        self.instances.extend(other.instances.iter().cloned());
        self.goroutines_seen += other.goroutines_seen;
    }

    /// Ingests one profile, updating per-site counts and representatives.
    pub fn ingest(&mut self, profile: &GoroutineProfile) {
        let sites = analyze_profile(profile);
        self.merge_profile_sites(&profile.instance, &sites, profile.len() as u64);
    }

    /// Merges an already-analyzed profile — the [`analyze_profile`]
    /// output for a profile of `goroutines` total goroutines — exactly
    /// as [`FleetAccumulator::ingest`] would have: `ingest` is
    /// literally `analyze_profile` + this call. [`aggregate_parallel`]
    /// uses it to run the per-profile analysis off-thread, and the
    /// collector's push tier uses it to absorb that analysis into its
    /// shard workers as profiles arrive, leaving the daemon's cycle
    /// only the cheap count merges.
    pub fn merge_profile_sites(&mut self, instance: &str, sites: &ProfileSites, goroutines: u64) {
        for (op, (count, rep)) in sites {
            // The steady state — site and instance already known — is
            // the allocation-free arm of each match; only first sight
            // of a site or an instance clones the key.
            match self.acc.get_mut(op) {
                Some(by_instance) => match by_instance.get_mut(instance) {
                    Some(c) => *c += count,
                    None => {
                        by_instance.insert(instance.to_string(), *count);
                    }
                },
                None => {
                    let mut by_instance = HashMap::new();
                    by_instance.insert(instance.to_string(), *count);
                    self.acc.insert(op.clone(), by_instance);
                }
            }
            match self.reps.get_mut(op) {
                Some(entry) => {
                    if rep_wins(*count, rep, entry) {
                        *entry = (*count, rep.clone());
                    }
                }
                None => {
                    self.reps.insert(op.clone(), (*count, rep.clone()));
                }
            }
        }
        match self.occ.get_mut(instance) {
            Some(n) => *n += 1,
            None => {
                self.occ.insert(instance.to_string(), 1);
            }
        }
        self.instances.push(instance.to_string());
        self.goroutines_seen += goroutines;
    }

    /// Number of profiles ingested so far.
    pub fn profiles_ingested(&self) -> usize {
        self.instances.len()
    }

    /// Total goroutines inspected across all ingested profiles.
    pub fn goroutines_seen(&self) -> u64 {
        self.goroutines_seen
    }

    /// Sum of the raw per-instance cumulative counts for `op`, with no
    /// occurrence weighting (contrast [`FleetAccumulator::ranked`],
    /// which weighs each instance's count by how many profiles it
    /// contributed). Every cycle re-ingests each site's current blocked
    /// population, so across cycles this sum's first difference is that
    /// population — the series differential flamegraphs subtract.
    pub fn raw_site_total(&self, op: &BlockedOp) -> u64 {
        self.acc.get(op).map_or(0, |m| m.values().sum())
    }

    /// Ranks the accumulated sites: criterion-1 thresholding, optional
    /// criterion-2 AST filtering, then fleet-wide RMS ordering. Does not
    /// consume the accumulator, so a daemon can re-rank every cycle.
    pub fn ranked(&self, config: &Config, index: &SourceIndex) -> Vec<SiteStats> {
        let mut out = Vec::new();
        // Distinct instance names, sorted once (on the first suspect
        // site) and shared by every suspect site. A name ingested k
        // times weighs its cumulative count k-fold — the same totals
        // as walking the full `instances` list and summing duplicates,
        // without rescanning that ever-growing list per site per
        // ranking.
        let mut names: Option<Vec<&String>> = None;
        for (op, by_instance) in &self.acc {
            let over = by_instance
                .values()
                .filter(|&&c| c >= config.threshold)
                .count();
            if over == 0 {
                continue;
            }
            if config.ast_filter && is_transient(index, op) {
                continue;
            }
            let names = names.get_or_insert_with(|| {
                let mut names: Vec<&String> = self.occ.keys().collect();
                names.sort();
                names
            });
            let per_instance: Vec<(String, u64)> = names
                .iter()
                .map(|&name| {
                    let count = by_instance.get(name).copied().unwrap_or(0);
                    (name.clone(), self.occ[name] * count)
                })
                .collect();
            let counts: Vec<u64> = per_instance.iter().map(|(_, c)| *c).collect();
            let total: u64 = counts.iter().sum();
            let max_instance = counts.iter().copied().max().unwrap_or(0);
            out.push(SiteStats {
                rms: rms(&counts),
                representative: self
                    .reps
                    .get(op)
                    .map(|(_, r)| r.clone())
                    .expect("site has a rep"),
                op: op.clone(),
                per_instance,
                total,
                max_instance,
                instances_over_threshold: over,
            });
        }
        out.sort_by(|a, b| {
            b.rms
                .partial_cmp(&a.rms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.op.cmp(&b.op))
        });
        out.truncate(config.top_n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::ChanOpKind;
    use gosim::{Frame, Gid, GoStatus, Loc};

    fn blocked_rec(gid: u64, file: &str, line: u32, kind: ChanOpKind) -> GoroutineRecord {
        let discriminator = match kind {
            ChanOpKind::Send => "runtime.chansend1",
            ChanOpKind::Recv => "runtime.chanrecv1",
            ChanOpKind::Select => "runtime.selectgo",
            ChanOpKind::Race => "runtime.racecheck",
        };
        GoroutineRecord {
            gid: Gid(gid),
            name: "pkg.f$1".into(),
            status: GoStatus::ChanSend { nil_chan: false },
            stack: vec![
                Frame::runtime("runtime.gopark"),
                Frame::runtime(discriminator),
                Frame::new("pkg.f$1", Loc::new(file, line)),
            ],
            created_by: Frame::new("pkg.f", Loc::new(file, 1)),
            wait_ticks: 100,
            retained_bytes: 8192,
        }
    }

    fn profile(instance: &str, recs: Vec<GoroutineRecord>) -> GoroutineProfile {
        GoroutineProfile {
            instance: instance.into(),
            captured_at: 0,
            goroutines: recs,
        }
    }

    #[test]
    fn threshold_suppresses_small_sites() {
        let p = profile(
            "i0",
            (0..5)
                .map(|i| blocked_rec(i, "a.go", 10, ChanOpKind::Send))
                .collect(),
        );
        let cfg = Config {
            threshold: 10,
            ast_filter: false,
            top_n: 10,
        };
        assert!(aggregate(std::slice::from_ref(&p), &cfg, &SourceIndex::new()).is_empty());
        let cfg2 = Config {
            threshold: 5,
            ..cfg
        };
        assert_eq!(aggregate(&[p], &cfg2, &SourceIndex::new()).len(), 1);
    }

    #[test]
    fn rms_highlights_single_instance_spikes() {
        // Site A: 100 blocked on one instance out of ten.
        // Site B: 10 blocked on each of ten instances.
        // Same total; RMS must rank the spike (A) higher, mean ranks them
        // equal — the paper's stated reason for choosing RMS.
        let mut profiles = Vec::new();
        for i in 0..10 {
            let mut recs = Vec::new();
            if i == 0 {
                for g in 0..100 {
                    recs.push(blocked_rec(g, "spike.go", 5, ChanOpKind::Send));
                }
            }
            for g in 0..10 {
                recs.push(blocked_rec(1000 + g, "flat.go", 7, ChanOpKind::Recv));
            }
            profiles.push(profile(&format!("i{i}"), recs));
        }
        let cfg = Config {
            threshold: 10,
            ast_filter: false,
            top_n: 10,
        };
        let stats = aggregate(&profiles, &cfg, &SourceIndex::new());
        assert_eq!(stats.len(), 2);
        assert_eq!(
            &*stats[0].op.loc.file, "spike.go",
            "spike ranks first by RMS"
        );
        assert!(stats[0].rms > stats[1].rms);
        assert!(
            (stats[0].mean() - stats[1].mean()).abs() < 1e-9,
            "means are equal"
        );
    }

    #[test]
    fn per_instance_includes_zeroes() {
        let p1 = profile(
            "a",
            (0..20)
                .map(|i| blocked_rec(i, "x.go", 3, ChanOpKind::Send))
                .collect(),
        );
        let p2 = profile("b", vec![]);
        let cfg = Config {
            threshold: 10,
            ast_filter: false,
            top_n: 10,
        };
        let stats = aggregate(&[p1, p2], &cfg, &SourceIndex::new());
        assert_eq!(stats[0].per_instance.len(), 2);
        assert_eq!(stats[0].total, 20);
        assert_eq!(stats[0].max_instance, 20);
        let expected = rms(&[20, 0]);
        assert!((stats[0].rms - expected).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut profiles = Vec::new();
        for i in 0..32 {
            let recs = (0..(i % 7 + 12))
                .map(|g| {
                    blocked_rec(
                        g,
                        if i % 2 == 0 { "even.go" } else { "odd.go" },
                        4,
                        ChanOpKind::Select,
                    )
                })
                .collect();
            profiles.push(profile(&format!("i{i}"), recs));
        }
        let cfg = Config {
            threshold: 12,
            ast_filter: false,
            top_n: 10,
        };
        let seq = aggregate(&profiles, &cfg, &SourceIndex::new());
        let par = aggregate_parallel(&profiles, &cfg, &SourceIndex::new(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.total, b.total);
            assert!((a.rms - b.rms).abs() < 1e-9);
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_ranking_bytes() {
        let mut acc = FleetAccumulator::new();
        for i in 0..6 {
            let recs = (0..(20 + i * 3))
                .map(|g| blocked_rec(g, "hot.go", 9, ChanOpKind::Send))
                .chain((0..7).map(|g| blocked_rec(900 + g, "cold.go", 2, ChanOpKind::Recv)))
                .collect();
            acc.ingest(&profile(&format!("i{i}"), recs));
        }
        let snap = acc.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        let restored = FleetAccumulator::from_snapshot(&snap).unwrap();
        let cfg = Config {
            threshold: 5,
            ast_filter: false,
            top_n: 10,
        };
        let a = acc.ranked(&cfg, &SourceIndex::new());
        let b = restored.ranked(&cfg, &SourceIndex::new());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "snapshot round-trip changed the ranking"
        );
        assert_eq!(restored.profiles_ingested(), acc.profiles_ingested());
        assert_eq!(restored.goroutines_seen(), acc.goroutines_seen());
        // Determinism: serializing the same state twice is byte-identical.
        assert_eq!(
            serde_json::to_string(&snap).unwrap(),
            serde_json::to_string(&restored.snapshot()).unwrap()
        );
    }

    #[test]
    fn snapshot_rejects_unknown_versions() {
        let mut snap = FleetAccumulator::new().snapshot();
        snap.version = SNAPSHOT_VERSION + 1;
        assert!(FleetAccumulator::from_snapshot(&snap).is_err());
    }

    #[test]
    fn merge_matches_single_accumulator_over_same_profiles() {
        let profiles: Vec<GoroutineProfile> = (0..8)
            .map(|i| {
                let recs = (0..(10 + i))
                    .map(|g| blocked_rec(g, "m.go", 4, ChanOpKind::Select))
                    .collect();
                profile(&format!("shard-i{i}"), recs)
            })
            .collect();
        // One accumulator over everything...
        let mut whole = FleetAccumulator::new();
        for p in &profiles {
            whole.ingest(p);
        }
        // ...vs two shards merged (same overall ingestion order).
        let (left, right) = profiles.split_at(5);
        let mut a = FleetAccumulator::new();
        for p in left {
            a.ingest(p);
        }
        let mut b = FleetAccumulator::new();
        for p in right {
            b.ingest(p);
        }
        a.merge(&b);
        let cfg = Config {
            threshold: 10,
            ast_filter: false,
            top_n: 10,
        };
        assert_eq!(
            serde_json::to_string(&whole.ranked(&cfg, &SourceIndex::new())).unwrap(),
            serde_json::to_string(&a.ranked(&cfg, &SourceIndex::new())).unwrap(),
            "merged shards diverged from a single accumulator"
        );
        assert_eq!(a.profiles_ingested(), whole.profiles_ingested());
        assert_eq!(a.goroutines_seen(), whole.goroutines_seen());
    }

    #[test]
    fn fold_profiles_is_byte_identical_to_sequential_ingest() {
        let profiles: Vec<GoroutineProfile> = (0..37)
            .map(|i| {
                let recs = (0..(5 + i % 11))
                    .map(|g| blocked_rec(g, "fold.go", 3 + (i % 4) as u32, ChanOpKind::Send))
                    .chain(
                        (0..(i % 3)).map(|g| blocked_rec(500 + g, "alt.go", 8, ChanOpKind::Recv)),
                    )
                    .collect();
                profile(&format!("pushed-{i:03}"), recs)
            })
            .collect();
        let sequential = fold_profiles(&profiles, 1);
        for threads in [2, 3, 4, 8, 64] {
            let folded = fold_profiles(&profiles, threads);
            assert_eq!(
                serde_json::to_string(&sequential.snapshot()).unwrap(),
                serde_json::to_string(&folded.snapshot()).unwrap(),
                "parallel fold with {threads} threads diverged from sequential ingest"
            );
        }
    }

    #[test]
    fn rms_of_empty_and_single() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[4]) - 4.0).abs() < 1e-12);
        assert!((rms(&[3, 4]) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
