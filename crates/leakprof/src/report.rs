//! Reporting: ownership routing and rendered alerts (paper Section V-A,
//! "Reporting potential defects").
//!
//! Each suspect carries the offending operation and location, the number
//! of goroutines it blocks, the representative stack from the
//! most-affected instance, and the owner the alert is routed to.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::analyze::SiteStats;

/// Maps source paths to owning teams, longest-prefix wins — a stand-in
/// for the paper's code-ownership service.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OwnerDb {
    prefixes: Vec<(String, String)>,
}

impl OwnerDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an owner for a path prefix.
    pub fn insert(&mut self, prefix: impl Into<String>, owner: impl Into<String>) {
        self.prefixes.push((prefix.into(), owner.into()));
        self.prefixes
            .sort_by_key(|(prefix, _)| std::cmp::Reverse(prefix.len()));
    }

    /// Resolves the owner of a file path (longest matching prefix).
    pub fn owner_of(&self, path: &str) -> Option<&str> {
        self.prefixes
            .iter()
            .find(|(prefix, _)| path.starts_with(prefix.as_str()))
            .map(|(_, owner)| owner.as_str())
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True when no owners are registered.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

/// One routed leak alert.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Suspect {
    /// Aggregated site statistics.
    pub stats: SiteStats,
    /// Resolved owner, if any.
    pub owner: Option<String>,
}

impl Suspect {
    /// Renders the alert body the way service owners would see it.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let headline = match self.stats.op.kind {
            crate::signature::ChanOpKind::Race => "DATA RACE",
            _ => "POTENTIAL GOROUTINE LEAK",
        };
        let _ = writeln!(out, "{headline}: {}", self.stats.op);
        let noun = match self.stats.op.kind {
            crate::signature::ChanOpKind::Race => "racing accesses",
            _ => "blocked goroutines",
        };
        let _ = writeln!(
            out,
            "  {noun}: total={} max-instance={} rms={:.1}",
            self.stats.total, self.stats.max_instance, self.stats.rms
        );
        let _ = writeln!(
            out,
            "  instances over threshold: {} of {}",
            self.stats.instances_over_threshold,
            self.stats.per_instance.len()
        );
        if let Some(owner) = &self.owner {
            let _ = writeln!(out, "  routed to: {owner}");
        }
        let _ = writeln!(out, "  representative goroutine:");
        for line in self.stats.representative.render().lines() {
            let _ = writeln!(out, "    {line}");
        }
        out
    }
}

impl fmt::Display for Suspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (total {}, rms {:.1})",
            self.stats.op, self.stats.total, self.stats.rms
        )
    }
}

/// A full daily LeakProf report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Suspects ordered by perceived impact (RMS), most impactful first.
    pub suspects: Vec<Suspect>,
    /// Profiles analyzed.
    pub profiles_analyzed: usize,
    /// Total goroutines inspected.
    pub goroutines_seen: u64,
}

impl Report {
    /// Renders the whole report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "=== LeakProf report: {} suspect(s) from {} profiles ({} goroutines)\n",
            self.suspects.len(),
            self.profiles_analyzed,
            self.goroutines_seen
        );
        for (i, s) in self.suspects.iter().enumerate() {
            let _ = writeln!(out, "\n#{} {}", i + 1, s.render());
        }
        out
    }
}

/// Routes ranked sites to owners.
pub fn route(stats: Vec<SiteStats>, owners: &OwnerDb) -> Vec<Suspect> {
    stats
        .into_iter()
        .map(|s| {
            let owner = owners.owner_of(&s.op.loc.file).map(str::to_owned);
            Suspect { stats: s, owner }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut db = OwnerDb::new();
        db.insert("payments/", "team-payments");
        db.insert("payments/fraud/", "team-fraud");
        assert_eq!(db.owner_of("payments/fraud/detect.go"), Some("team-fraud"));
        assert_eq!(db.owner_of("payments/cost.go"), Some("team-payments"));
        assert_eq!(db.owner_of("rides/dispatch.go"), None);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
    }
}
