//! Criterion 2: AST-level filtering of trivially-transient operations
//! (paper Section V-A).
//!
//! Some blocking sites can be shown to unblock eventually: a `select`
//! whose arms all listen on `time.After`/`time.Tick`/`ctx.Done()`
//! channels, or a bare receive from a timer channel. LeakProf runs a
//! small static analysis over the source AST to drop such sites before
//! alerting.

use std::collections::HashMap;

use gosim::Loc;
use minigo::ast::{walk_stmts, File, RecvSrc, SelCase, Stmt};

use crate::signature::{BlockedOp, ChanOpKind};

/// An index of parsed source files, keyed by path, used to resolve
/// blocking locations back to syntax.
#[derive(Debug, Default)]
pub struct SourceIndex {
    files: HashMap<String, File>,
}

impl SourceIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parsed file.
    pub fn insert(&mut self, file: File) {
        self.files.insert(file.path.clone(), file);
    }

    /// Parses and adds a source file.
    ///
    /// # Errors
    ///
    /// Returns parser diagnostics on malformed source.
    pub fn insert_source(&mut self, src: &str, path: &str) -> Result<(), Vec<minigo::Diag>> {
        self.insert(minigo::parse_file(src, path)?);
        Ok(())
    }

    /// Looks up a file by path.
    pub fn file(&self, path: &str) -> Option<&File> {
        self.files.get(path)
    }

    /// Number of indexed files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are indexed.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Finds the statement at a location, if any.
    pub fn stmt_at(&self, loc: &Loc) -> Option<&Stmt> {
        let file = self.files.get(&*loc.file)?;
        let mut found = None;
        for f in &file.funcs {
            walk_stmts(&f.body, &mut |s| {
                if s.line() == loc.line && found.is_none() {
                    found = Some(s);
                }
            });
        }
        found
    }
}

fn src_is_transient(src: &RecvSrc) -> bool {
    matches!(
        src,
        RecvSrc::TimeAfter(_) | RecvSrc::TimeTick(_) | RecvSrc::CtxDone(_)
    )
}

/// Returns true when the blocking operation is trivially transient and
/// should be filtered from reports:
///
/// * a `select` all of whose arms receive from timer/`ctx.Done` channels
///   (a `default` arm also makes the statement non-blocking);
/// * a bare receive from `time.After`/`time.Tick`.
///
/// Unknown locations (no AST available) are conservatively kept.
pub fn is_transient(index: &SourceIndex, op: &BlockedOp) -> bool {
    let Some(stmt) = index.stmt_at(&op.loc) else {
        return false;
    };
    match (op.kind, stmt) {
        (ChanOpKind::Select, Stmt::Select { cases, default, .. }) => {
            if default.is_some() {
                return true; // non-blocking select can never leak
            }
            !cases.is_empty()
                && cases.iter().all(|c| match c {
                    SelCase::Recv { src, .. } => src_is_transient(src),
                    SelCase::Send { .. } => false,
                })
        }
        (ChanOpKind::Recv, Stmt::Recv { src, .. }) => src_is_transient(src),
        // `for v := range time.Tick(d)` is not expressible in the subset;
        // every other shape is kept.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str, path: &str) -> SourceIndex {
        let mut ix = SourceIndex::new();
        ix.insert_source(src, path).expect("test source parses");
        ix
    }

    #[test]
    fn transient_select_on_tick_and_done() {
        let src = r#"
package p

func Loop(ctx context.Context) {
	for {
		select {
		case <-time.Tick(100):
			sim.Work(1)
		case <-ctx.Done():
			return
		}
	}
}
"#;
        let ix = index_of(src, "p/loop.go");
        let op = BlockedOp {
            kind: ChanOpKind::Select,
            loc: Loc::new("p/loop.go", 6),
        };
        assert!(is_transient(&ix, &op));
    }

    #[test]
    fn select_with_real_channel_arm_is_kept() {
        let src = r#"
package p

func Wait(ch chan int, ctx context.Context) {
	select {
	case v := <-ch:
		_ = v
	case <-ctx.Done():
		return
	}
}
"#;
        let ix = index_of(src, "p/wait.go");
        let op = BlockedOp {
            kind: ChanOpKind::Select,
            loc: Loc::new("p/wait.go", 5),
        };
        assert!(
            !is_transient(&ix, &op),
            "a real channel arm can block forever"
        );
    }

    #[test]
    fn bare_timer_recv_is_transient() {
        let src = r#"
package p

func Tickle() {
	for {
		<-time.After(50)
		sim.Work(1)
	}
}
"#;
        let ix = index_of(src, "p/tickle.go");
        let op = BlockedOp {
            kind: ChanOpKind::Recv,
            loc: Loc::new("p/tickle.go", 6),
        };
        assert!(is_transient(&ix, &op));
    }

    #[test]
    fn plain_channel_recv_is_kept() {
        let src = r#"
package p

func Drain(ch chan int) {
	<-ch
}
"#;
        let ix = index_of(src, "p/drain.go");
        let op = BlockedOp {
            kind: ChanOpKind::Recv,
            loc: Loc::new("p/drain.go", 5),
        };
        assert!(!is_transient(&ix, &op));
    }

    #[test]
    fn unknown_location_is_kept() {
        let ix = SourceIndex::new();
        let op = BlockedOp {
            kind: ChanOpKind::Recv,
            loc: Loc::new("nowhere.go", 1),
        };
        assert!(!is_transient(&ix, &op));
        assert!(ix.is_empty());
    }
}
