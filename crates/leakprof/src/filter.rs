//! Criterion 2: AST-level filtering of trivially-transient operations
//! (paper Section V-A).
//!
//! Some blocking sites can be shown to unblock eventually: a `select`
//! whose arms all listen on `time.After`/`time.Tick`/`ctx.Done()`
//! channels, or a bare receive from a timer channel. LeakProf runs a
//! small static analysis over the source AST to drop such sites before
//! alerting.
//!
//! The analysis has two equivalent evaluation paths. The direct path
//! resolves each blocked location against a parsed AST
//! ([`SourceIndex::stmt_at`]) at ranking time. The precomputed path
//! ([`VerdictSet`]) extracts, once per file, the full set of transient
//! sites — so an online consumer (the collection daemon) can cache
//! verdicts keyed by source-content fingerprint and answer filter
//! queries without re-parsing anything. By construction the two paths
//! return identical answers for identical sources.

use std::collections::{BTreeSet, HashMap};

use gosim::Loc;
use minigo::ast::{walk_stmts, File, RecvSrc, SelCase, Stmt};
use serde::{Deserialize, Serialize};

use crate::signature::{BlockedOp, ChanOpKind};

/// Precomputed criterion-2 verdicts: for every *covered* file, the set
/// of `(line, op kind)` sites whose blocking operation is trivially
/// transient. Covered files answer filter queries without an AST;
/// uncovered files fall back to [`SourceIndex`] resolution.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictSet {
    covered: BTreeSet<String>,
    transient: BTreeSet<(String, u32, ChanOpKind)>,
}

impl VerdictSet {
    /// Creates an empty verdict set (covers nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the transient sites of one parsed file, mirroring
    /// [`is_transient`]'s AST path exactly: for the first statement on
    /// each line (the one [`SourceIndex::stmt_at`] resolves), a
    /// transient verdict is recorded under the op kind that statement
    /// can block as.
    pub fn compute_file(file: &File) -> Vec<(u32, ChanOpKind)> {
        let mut seen_lines = BTreeSet::new();
        let mut out = Vec::new();
        for f in &file.funcs {
            walk_stmts(&f.body, &mut |s| {
                if !seen_lines.insert(s.line()) {
                    return;
                }
                match s {
                    Stmt::Select { cases, default, .. } => {
                        let transient = default.is_some()
                            || (!cases.is_empty()
                                && cases.iter().all(|c| match c {
                                    SelCase::Recv { src, .. } => src_is_transient(src),
                                    SelCase::Send { .. } => false,
                                }));
                        if transient {
                            out.push((s.line(), ChanOpKind::Select));
                        }
                    }
                    Stmt::Recv { src, .. } if src_is_transient(src) => {
                        out.push((s.line(), ChanOpKind::Recv));
                    }
                    _ => {}
                }
            });
        }
        out
    }

    /// Marks `path` as covered with the given transient sites (typically
    /// the output of [`VerdictSet::compute_file`], possibly replayed
    /// from a cache).
    pub fn insert_file(&mut self, path: &str, transient: &[(u32, ChanOpKind)]) {
        self.covered.insert(path.to_string());
        for (line, kind) in transient {
            self.transient.insert((path.to_string(), *line, *kind));
        }
    }

    /// Convenience: compute and insert in one step.
    pub fn add_file(&mut self, file: &File) {
        let t = Self::compute_file(file);
        self.insert_file(&file.path, &t);
    }

    /// True when verdicts for `path` are available.
    pub fn covers(&self, path: &str) -> bool {
        self.covered.contains(path)
    }

    /// The verdict for a blocked op: `Some(true)` = transient (filter),
    /// `Some(false)` = keep, `None` = file not covered (caller must fall
    /// back to AST resolution).
    pub fn lookup(&self, op: &BlockedOp) -> Option<bool> {
        if !self.covers(&op.loc.file) {
            return None;
        }
        Some(
            self.transient
                .contains(&(op.loc.file.to_string(), op.loc.line, op.kind)),
        )
    }

    /// Number of covered files.
    pub fn files(&self) -> usize {
        self.covered.len()
    }

    /// True when no files are covered.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }
}

/// An index of parsed source files, keyed by path, used to resolve
/// blocking locations back to syntax. Optionally carries a
/// [`VerdictSet`] answering filter queries for covered files without
/// touching (or even having) the ASTs.
#[derive(Debug, Default)]
pub struct SourceIndex {
    files: HashMap<String, File>,
    verdicts: Option<VerdictSet>,
}

impl SourceIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parsed file.
    pub fn insert(&mut self, file: File) {
        self.files.insert(file.path.clone(), file);
    }

    /// Parses and adds a source file.
    ///
    /// # Errors
    ///
    /// Returns parser diagnostics on malformed source.
    pub fn insert_source(&mut self, src: &str, path: &str) -> Result<(), Vec<minigo::Diag>> {
        self.insert(minigo::parse_file(src, path)?);
        Ok(())
    }

    /// Looks up a file by path.
    pub fn file(&self, path: &str) -> Option<&File> {
        self.files.get(path)
    }

    /// Number of indexed files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are indexed.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Installs (replaces) the precomputed verdicts consulted before any
    /// AST resolution.
    pub fn install_verdicts(&mut self, verdicts: VerdictSet) {
        self.verdicts = Some(verdicts);
    }

    /// The installed verdict set, if any.
    pub fn verdicts(&self) -> Option<&VerdictSet> {
        self.verdicts.as_ref()
    }

    /// Finds the statement at a location, if any.
    pub fn stmt_at(&self, loc: &Loc) -> Option<&Stmt> {
        let file = self.files.get(&*loc.file)?;
        let mut found = None;
        for f in &file.funcs {
            walk_stmts(&f.body, &mut |s| {
                if s.line() == loc.line && found.is_none() {
                    found = Some(s);
                }
            });
        }
        found
    }
}

fn src_is_transient(src: &RecvSrc) -> bool {
    matches!(
        src,
        RecvSrc::TimeAfter(_) | RecvSrc::TimeTick(_) | RecvSrc::CtxDone(_)
    )
}

/// Returns true when the blocking operation is trivially transient and
/// should be filtered from reports:
///
/// * a `select` all of whose arms receive from timer/`ctx.Done` channels
///   (a `default` arm also makes the statement non-blocking);
/// * a bare receive from `time.After`/`time.Tick`.
///
/// Unknown locations (no AST available) are conservatively kept.
///
/// When the index carries a [`VerdictSet`] covering the op's file, the
/// precomputed verdict is returned directly — no AST walk happens.
pub fn is_transient(index: &SourceIndex, op: &BlockedOp) -> bool {
    if let Some(t) = index.verdicts.as_ref().and_then(|v| v.lookup(op)) {
        return t;
    }
    let Some(stmt) = index.stmt_at(&op.loc) else {
        return false;
    };
    match (op.kind, stmt) {
        (ChanOpKind::Select, Stmt::Select { cases, default, .. }) => {
            if default.is_some() {
                return true; // non-blocking select can never leak
            }
            !cases.is_empty()
                && cases.iter().all(|c| match c {
                    SelCase::Recv { src, .. } => src_is_transient(src),
                    SelCase::Send { .. } => false,
                })
        }
        (ChanOpKind::Recv, Stmt::Recv { src, .. }) => src_is_transient(src),
        // `for v := range time.Tick(d)` is not expressible in the subset;
        // every other shape is kept.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str, path: &str) -> SourceIndex {
        let mut ix = SourceIndex::new();
        ix.insert_source(src, path).expect("test source parses");
        ix
    }

    #[test]
    fn transient_select_on_tick_and_done() {
        let src = r#"
package p

func Loop(ctx context.Context) {
	for {
		select {
		case <-time.Tick(100):
			sim.Work(1)
		case <-ctx.Done():
			return
		}
	}
}
"#;
        let ix = index_of(src, "p/loop.go");
        let op = BlockedOp {
            kind: ChanOpKind::Select,
            loc: Loc::new("p/loop.go", 6),
        };
        assert!(is_transient(&ix, &op));
    }

    #[test]
    fn select_with_real_channel_arm_is_kept() {
        let src = r#"
package p

func Wait(ch chan int, ctx context.Context) {
	select {
	case v := <-ch:
		_ = v
	case <-ctx.Done():
		return
	}
}
"#;
        let ix = index_of(src, "p/wait.go");
        let op = BlockedOp {
            kind: ChanOpKind::Select,
            loc: Loc::new("p/wait.go", 5),
        };
        assert!(
            !is_transient(&ix, &op),
            "a real channel arm can block forever"
        );
    }

    #[test]
    fn bare_timer_recv_is_transient() {
        let src = r#"
package p

func Tickle() {
	for {
		<-time.After(50)
		sim.Work(1)
	}
}
"#;
        let ix = index_of(src, "p/tickle.go");
        let op = BlockedOp {
            kind: ChanOpKind::Recv,
            loc: Loc::new("p/tickle.go", 6),
        };
        assert!(is_transient(&ix, &op));
    }

    #[test]
    fn plain_channel_recv_is_kept() {
        let src = r#"
package p

func Drain(ch chan int) {
	<-ch
}
"#;
        let ix = index_of(src, "p/drain.go");
        let op = BlockedOp {
            kind: ChanOpKind::Recv,
            loc: Loc::new("p/drain.go", 5),
        };
        assert!(!is_transient(&ix, &op));
    }

    #[test]
    fn unknown_location_is_kept() {
        let ix = SourceIndex::new();
        let op = BlockedOp {
            kind: ChanOpKind::Recv,
            loc: Loc::new("nowhere.go", 1),
        };
        assert!(!is_transient(&ix, &op));
        assert!(ix.is_empty());
    }

    const EQUIV_SOURCES: [&str; 4] = [
        "package p\n\nfunc Loop(ctx context.Context) {\n\tfor {\n\t\tselect {\n\t\tcase <-time.Tick(100):\n\t\t\tsim.Work(1)\n\t\tcase <-ctx.Done():\n\t\t\treturn\n\t\t}\n\t}\n}\n",
        "package p\n\nfunc Wait(ch chan int, ctx context.Context) {\n\tselect {\n\tcase v := <-ch:\n\t\t_ = v\n\tcase <-ctx.Done():\n\t\treturn\n\t}\n}\n",
        "package p\n\nfunc Tickle() {\n\tfor {\n\t\t<-time.After(50)\n\t\tsim.Work(1)\n\t}\n}\n",
        "package p\n\nfunc Drain(ch chan int) {\n\t<-ch\n\tselect {\n\tcase <-ch:\n\t\tsim.Work(1)\n\tdefault:\n\t\tsim.Work(2)\n\t}\n}\n",
    ];

    #[test]
    fn verdict_path_matches_ast_path_on_every_line_and_kind() {
        for (i, src) in EQUIV_SOURCES.iter().enumerate() {
            let path = format!("p/equiv_{i}.go");
            let ast_ix = index_of(src, &path);
            // Verdict-only index: no ASTs at all, just precomputed
            // verdicts — the daemon's warm-cache configuration.
            let mut vs = VerdictSet::new();
            vs.add_file(&minigo::parse_file(src, &path).unwrap());
            let mut verdict_ix = SourceIndex::new();
            verdict_ix.install_verdicts(vs);
            let nlines = src.lines().count() as u32;
            for line in 1..=nlines {
                for kind in [ChanOpKind::Send, ChanOpKind::Recv, ChanOpKind::Select] {
                    let op = BlockedOp {
                        kind,
                        loc: Loc::new(path.as_str(), line),
                    };
                    assert_eq!(
                        is_transient(&ast_ix, &op),
                        is_transient(&verdict_ix, &op),
                        "paths disagree at {path}:{line} {kind:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn verdicts_roundtrip_through_json() {
        let src = EQUIV_SOURCES[0];
        let mut vs = VerdictSet::new();
        vs.add_file(&minigo::parse_file(src, "p/e.go").unwrap());
        let json = serde_json::to_string(&vs).unwrap();
        let back: VerdictSet = serde_json::from_str(&json).unwrap();
        assert_eq!(vs, back);
        assert!(back.covers("p/e.go"));
        assert!(!back.covers("p/other.go"));
        assert_eq!(back.files(), 1);
    }
}
