//! Blocked-stack signature detection (paper Section V-A, Fig 4).
//!
//! A goroutine blocked on a channel operation always has
//! `runtime.gopark` at the top of its stack, with the discriminating
//! runtime frames right underneath:
//!
//! * `runtime.chansend` / `runtime.chansend1` — blocked send;
//! * `runtime.chanrecv` / `runtime.chanrecv1` — blocked receive;
//! * `runtime.selectgo` — blocked `select`.
//!
//! The first non-runtime frame below those carries the source location of
//! the blocking operation, which is LeakProf's grouping key. Detection
//! works purely on serialized profiles — it never touches runtime
//! internals — exactly like the paper's tool, which consumes pprof dumps
//! fetched over the network.

use std::fmt;

use gosim::{GoroutineRecord, Loc};
use serde::{Deserialize, Serialize};

/// The kind of channel operation a goroutine is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChanOpKind {
    /// Blocked sending.
    Send,
    /// Blocked receiving.
    Recv,
    /// Blocked in a `select`.
    Select,
    /// Not a blocking operation: a data race detected by the
    /// happens-before engine (`racecheck` crate). Races ride the same
    /// fingerprint → ranking → ledger pipeline as leaks; the location is
    /// the racing access site.
    Race,
}

impl fmt::Display for ChanOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanOpKind::Send => write!(f, "chan send"),
            ChanOpKind::Recv => write!(f, "chan receive"),
            ChanOpKind::Select => write!(f, "select"),
            ChanOpKind::Race => write!(f, "data race"),
        }
    }
}

/// A blocking channel operation: the grouping key for LeakProf.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockedOp {
    /// Operation kind.
    pub kind: ChanOpKind,
    /// Source location of the operation (first user frame).
    pub loc: Loc,
}

impl fmt::Display for BlockedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.loc)
    }
}

/// Recognizes a goroutine blocked on a channel operation from its stack
/// signature. Returns `None` for goroutines that are running or parked
/// for non-channel reasons (I/O, syscalls, semaphores, timers).
pub fn blocked_op(rec: &GoroutineRecord) -> Option<BlockedOp> {
    let mut frames = rec.stack.iter();
    let top = frames.next()?;
    if top.func != "runtime.gopark" {
        return None;
    }
    // Scan the runtime frames below gopark for the channel discriminator.
    let mut kind = None;
    let mut user_frame = None;
    for f in frames {
        if f.is_runtime() {
            if kind.is_none() {
                kind = match f.func.as_str() {
                    "runtime.chansend" | "runtime.chansend1" => Some(ChanOpKind::Send),
                    "runtime.chanrecv" | "runtime.chanrecv1" => Some(ChanOpKind::Recv),
                    "runtime.selectgo" => Some(ChanOpKind::Select),
                    // gopark for a non-channel reason (timers, semaphores,
                    // netpoll): not a channel block.
                    _ => return None,
                };
            }
            continue;
        }
        user_frame = Some(f);
        break;
    }
    Some(BlockedOp {
        kind: kind?,
        loc: user_frame?.loc.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::{Frame, Gid, GoStatus};

    fn rec(frames: Vec<Frame>) -> GoroutineRecord {
        GoroutineRecord {
            gid: Gid(1),
            name: "f".into(),
            status: GoStatus::ChanSend { nil_chan: false },
            stack: frames,
            created_by: Frame::new("main", Loc::unknown()),
            wait_ticks: 0,
            retained_bytes: 0,
        }
    }

    #[test]
    fn detects_send_signature() {
        let r = rec(vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.chansend"),
            Frame::runtime("runtime.chansend1"),
            Frame::new(
                "transactions.ComputeCost$1",
                Loc::new("transactions/cost.go", 8),
            ),
            Frame::new(
                "transactions.ComputeCost",
                Loc::new("transactions/cost.go", 6),
            ),
        ]);
        let op = blocked_op(&r).unwrap();
        assert_eq!(op.kind, ChanOpKind::Send);
        assert_eq!(op.loc, Loc::new("transactions/cost.go", 8));
    }

    #[test]
    fn detects_recv_and_select() {
        let recv = rec(vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.chanrecv"),
            Frame::runtime("runtime.chanrecv1"),
            Frame::new("p.f", Loc::new("p/f.go", 3)),
        ]);
        assert_eq!(blocked_op(&recv).unwrap().kind, ChanOpKind::Recv);

        let sel = rec(vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.selectgo"),
            Frame::new("p.g", Loc::new("p/g.go", 9)),
        ]);
        assert_eq!(blocked_op(&sel).unwrap().kind, ChanOpKind::Select);
    }

    #[test]
    fn rejects_non_channel_parks() {
        // semacquire under gopark: blocked, but not on a channel.
        let sem = rec(vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.semacquire1"),
            Frame::new("p.h", Loc::new("p/h.go", 2)),
        ]);
        assert!(blocked_op(&sem).is_none());
        // running goroutine: no gopark on top.
        let run = rec(vec![Frame::new("p.h", Loc::new("p/h.go", 2))]);
        assert!(blocked_op(&run).is_none());
    }

    #[test]
    fn requires_a_user_frame() {
        let only_runtime = rec(vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.chanrecv"),
        ]);
        assert!(blocked_op(&only_runtime).is_none());
    }
}
