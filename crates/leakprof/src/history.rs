//! Sweep history and report lifecycle.
//!
//! LeakProf runs daily; most leaks persist across sweeps and must not be
//! re-alerted, while a disappearing suspect usually means a fix shipped.
//! The paper tracks exactly this lifecycle: 33 suspects reported over a
//! year, 24 acknowledged by owners, 21 fixed. [`SweepStore`] provides
//! that bookkeeping: it dedupes suspects across sweeps, surfaces what is
//! *new* each day, notices when a suspect vanishes, and records owner
//! triage decisions.

use serde::{Deserialize, Serialize};

use crate::report::Report;
use crate::signature::BlockedOp;

/// Triage state of one suspected leak site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueStatus {
    /// Surfaced by a sweep, not yet triaged.
    Reported,
    /// An owner confirmed it is a real defect.
    Acknowledged,
    /// A fix shipped (set manually, or inferred when the site vanishes
    /// after being acknowledged).
    Fixed,
    /// Triaged as not-a-leak (e.g. expected congestion).
    Rejected,
}

/// One tracked issue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Issue {
    /// The blocking operation.
    pub op: BlockedOp,
    /// Current status.
    pub status: IssueStatus,
    /// Sweep index when first seen.
    pub first_seen: u64,
    /// Sweep index when last seen.
    pub last_seen: u64,
    /// Peak RMS observed across sweeps.
    pub peak_rms: f64,
    /// Routed owner, if any.
    pub owner: Option<String>,
}

/// What a sweep changed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepDelta {
    /// Sites never seen before (alert the owners about these).
    pub new: Vec<BlockedOp>,
    /// Sites seen before that are still present.
    pub ongoing: Vec<BlockedOp>,
    /// Previously-present sites that vanished this sweep — fix deployed,
    /// instance recycled, or traffic shifted.
    pub vanished: Vec<BlockedOp>,
}

/// Persistent sweep bookkeeping.
///
/// Issues are stored as a list (JSON object keys must be strings, and a
/// handful of tracked issues makes linear lookup cheap anyway).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepStore {
    issues: Vec<Issue>,
    sweeps: u64,
}

impl SweepStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sweep's report and returns the delta. Vanished
    /// acknowledged issues transition to [`IssueStatus::Fixed`]
    /// automatically (the fix shipped).
    pub fn record_sweep(&mut self, report: &Report) -> SweepDelta {
        self.sweeps += 1;
        let day = self.sweeps;
        let mut delta = SweepDelta::default();
        for s in &report.suspects {
            let op = s.stats.op.clone();
            match self.issues.iter_mut().find(|i| i.op == op) {
                None => {
                    self.issues.push(Issue {
                        op: op.clone(),
                        status: IssueStatus::Reported,
                        first_seen: day,
                        last_seen: day,
                        peak_rms: s.stats.rms,
                        owner: s.owner.clone(),
                    });
                    delta.new.push(op);
                }
                Some(issue) => {
                    issue.last_seen = day;
                    issue.peak_rms = issue.peak_rms.max(s.stats.rms);
                    if issue.owner.is_none() {
                        issue.owner = s.owner.clone();
                    }
                    delta.ongoing.push(op);
                }
            }
        }
        for issue in self.issues.iter_mut() {
            if issue.last_seen != day
                && issue.last_seen == day - 1
                && !matches!(issue.status, IssueStatus::Fixed | IssueStatus::Rejected)
            {
                delta.vanished.push(issue.op.clone());
                if issue.status == IssueStatus::Acknowledged {
                    issue.status = IssueStatus::Fixed;
                }
            }
        }
        delta
    }

    /// Marks an issue acknowledged by its owner.
    pub fn acknowledge(&mut self, op: &BlockedOp) -> bool {
        self.set_status(op, IssueStatus::Acknowledged)
    }

    /// Marks an issue fixed.
    pub fn fix(&mut self, op: &BlockedOp) -> bool {
        self.set_status(op, IssueStatus::Fixed)
    }

    /// Marks an issue rejected (triaged as benign).
    pub fn reject(&mut self, op: &BlockedOp) -> bool {
        self.set_status(op, IssueStatus::Rejected)
    }

    fn set_status(&mut self, op: &BlockedOp, status: IssueStatus) -> bool {
        match self.issues.iter_mut().find(|i| i.op == *op) {
            Some(i) => {
                i.status = status;
                true
            }
            None => false,
        }
    }

    /// Looks up a tracked issue.
    pub fn issue(&self, op: &BlockedOp) -> Option<&Issue> {
        self.issues.iter().find(|i| i.op == *op)
    }

    /// Iterates all tracked issues.
    pub fn issues(&self) -> impl Iterator<Item = &Issue> {
        self.issues.iter()
    }

    /// Number of sweeps recorded.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Lifecycle summary: (reported, acknowledged, fixed, rejected) — the
    /// paper's 33 / 24 / 21 line.
    pub fn lifecycle(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for i in self.issues.iter() {
            counts.0 += 1;
            match i.status {
                IssueStatus::Acknowledged => counts.1 += 1,
                IssueStatus::Fixed => {
                    counts.1 += 1; // fixed implies acknowledged
                    counts.2 += 1;
                }
                IssueStatus::Rejected => counts.3 += 1,
                IssueStatus::Reported => {}
            }
        }
        counts
    }

    /// Serializes to JSON (for `--store` persistence in tooling).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("store serializes")
    }

    /// Loads from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::SiteStats;
    use crate::report::Suspect;
    use crate::signature::ChanOpKind;
    use gosim::{Frame, Gid, GoStatus, GoroutineRecord, Loc};

    fn suspect(file: &str, line: u32, rms: f64) -> Suspect {
        let op = BlockedOp {
            kind: ChanOpKind::Send,
            loc: Loc::new(file, line),
        };
        Suspect {
            stats: SiteStats {
                op: op.clone(),
                per_instance: vec![("i0".into(), 100)],
                total: 100,
                max_instance: 100,
                instances_over_threshold: 1,
                rms,
                representative: GoroutineRecord {
                    gid: Gid(1),
                    name: "f".into(),
                    status: GoStatus::ChanSend { nil_chan: false },
                    stack: vec![],
                    created_by: Frame::new("f", Loc::new(file, 1)),
                    wait_ticks: 5,
                    retained_bytes: 100,
                },
            },
            owner: Some("team-x".into()),
        }
    }

    fn report(suspects: Vec<Suspect>) -> Report {
        Report {
            suspects,
            profiles_analyzed: 1,
            goroutines_seen: 10,
        }
    }

    #[test]
    fn first_sweep_reports_new_later_sweeps_dedupe() {
        let mut store = SweepStore::new();
        let d1 = store.record_sweep(&report(vec![suspect("a.go", 5, 10.0)]));
        assert_eq!(d1.new.len(), 1);
        assert!(d1.ongoing.is_empty());
        let d2 = store.record_sweep(&report(vec![suspect("a.go", 5, 12.0)]));
        assert!(d2.new.is_empty());
        assert_eq!(d2.ongoing.len(), 1);
        let issue = store.issues().next().unwrap();
        assert_eq!(issue.first_seen, 1);
        assert_eq!(issue.last_seen, 2);
        assert!((issue.peak_rms - 12.0).abs() < 1e-9, "peak rms tracked");
    }

    #[test]
    fn acknowledged_issue_vanishing_becomes_fixed() {
        let mut store = SweepStore::new();
        store.record_sweep(&report(vec![suspect("a.go", 5, 10.0)]));
        let op = store.issues().next().unwrap().op.clone();
        assert!(store.acknowledge(&op));
        // The fix ships: the site disappears from the next sweep.
        let d = store.record_sweep(&report(vec![]));
        assert_eq!(d.vanished.len(), 1);
        assert_eq!(store.issue(&op).unwrap().status, IssueStatus::Fixed);
    }

    #[test]
    fn lifecycle_counts_match_paper_semantics() {
        let mut store = SweepStore::new();
        store.record_sweep(&report(vec![
            suspect("a.go", 1, 1.0),
            suspect("b.go", 2, 2.0),
            suspect("c.go", 3, 3.0),
        ]));
        let ops: Vec<BlockedOp> = store.issues().map(|i| i.op.clone()).collect();
        store.acknowledge(&ops[0]);
        store.fix(&ops[1]);
        store.reject(&ops[2]);
        let (reported, acked, fixed, rejected) = store.lifecycle();
        assert_eq!((reported, acked, fixed, rejected), (3, 2, 1, 1));
    }

    #[test]
    fn json_roundtrip() {
        let mut store = SweepStore::new();
        store.record_sweep(&report(vec![suspect("a.go", 5, 10.0)]));
        let js = store.to_json();
        let back = SweepStore::from_json(&js).unwrap();
        assert_eq!(back.sweeps(), 1);
        assert_eq!(back.issues().count(), 1);
        assert!(SweepStore::from_json("not json").is_err());
    }

    #[test]
    fn unknown_ops_cannot_be_triaged() {
        let mut store = SweepStore::new();
        let ghost = BlockedOp {
            kind: ChanOpKind::Recv,
            loc: Loc::new("x.go", 9),
        };
        assert!(!store.acknowledge(&ghost));
        assert!(!store.fix(&ghost));
        assert!(!store.reject(&ghost));
    }
}
