//! Property tests for the shard-merge algebra: over arbitrary fleets
//! and arbitrary partitions into shards, merging per-shard
//! `FleetAccumulator`s yields a ranking byte-identical to one
//! accumulator over the whole fleet — and merge is commutative and
//! associative, so the merge tier may fold shard states in any order.

use gosim::{Frame, Gid, GoStatus, GoroutineProfile, GoroutineRecord, Loc};
use leakprof::{Config, FleetAccumulator, SiteStats};
use proptest::prelude::*;

/// A small pool of blocking sites; low cardinality maximizes count
/// collisions so the representative tie-break is actually exercised.
const SITES: [(&str, u32); 4] = [("a.go", 10), ("a.go", 20), ("b.go", 5), ("c.go", 33)];

fn blocked_rec(gid: u64, file: &str, line: u32, wait: u64) -> GoroutineRecord {
    GoroutineRecord {
        gid: Gid(gid),
        name: "pkg.f$1".into(),
        status: GoStatus::ChanSend { nil_chan: false },
        stack: vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.chansend1"),
            Frame::new("pkg.f$1", Loc::new(file, line)),
        ],
        created_by: Frame::new("pkg.f", Loc::new(file, 1)),
        wait_ticks: wait,
        retained_bytes: 4096,
    }
}

/// One generated fleet: per instance, a count for each site in the
/// pool. Counts repeat across instances on purpose (0..12) so
/// representative elections tie constantly.
fn fleet() -> impl Strategy<Value = Vec<GoroutineProfile>> {
    proptest::collection::vec(proptest::collection::vec(0u64..12, SITES.len()), 1..14).prop_map(
        |per_instance| {
            per_instance
                .into_iter()
                .enumerate()
                .map(|(i, counts)| {
                    let mut recs = Vec::new();
                    for (site, &count) in counts.iter().enumerate() {
                        let (file, line) = SITES[site];
                        for g in 0..count {
                            // wait_ticks varies per instance so tied
                            // candidates differ in content and the
                            // deterministic tie-break decides.
                            recs.push(blocked_rec(
                                (site as u64) << 32 | g,
                                file,
                                line,
                                100 + i as u64,
                            ));
                        }
                    }
                    GoroutineProfile {
                        instance: format!("inst-{i}"),
                        captured_at: 7,
                        goroutines: recs,
                    }
                })
                .collect()
        },
    )
}

fn cfg() -> Config {
    Config {
        threshold: 4,
        ast_filter: false,
        top_n: 10,
    }
}

fn acc_of(profiles: &[&GoroutineProfile]) -> FleetAccumulator {
    let mut acc = FleetAccumulator::new();
    for p in profiles {
        acc.ingest(p);
    }
    acc
}

fn ranking_json(acc: &FleetAccumulator) -> String {
    let ranked: Vec<SiteStats> = acc.ranked(&cfg(), &leakprof::SourceIndex::new());
    serde_json::to_string(&ranked).expect("ranking serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any shard split produces the identical ranking: partition the
    /// fleet arbitrarily into up to 4 shards, merge the per-shard
    /// accumulators forward and in reverse, and both match one
    /// accumulator over the whole fleet byte-for-byte.
    #[test]
    fn any_partition_merges_to_the_whole_fleet_ranking(
        profiles in fleet(),
        assign in proptest::collection::vec(0usize..4, 64),
    ) {
        let whole = acc_of(&profiles.iter().collect::<Vec<_>>());
        let mut shards: Vec<Vec<&GoroutineProfile>> = vec![Vec::new(); 4];
        for (i, p) in profiles.iter().enumerate() {
            shards[assign[i % assign.len()]].push(p);
        }
        let accs: Vec<FleetAccumulator> =
            shards.iter().map(|s| acc_of(s)).collect();

        let mut forward = FleetAccumulator::new();
        for a in &accs {
            forward.merge(a);
        }
        let mut backward = FleetAccumulator::new();
        for a in accs.iter().rev() {
            backward.merge(a);
        }
        let expect = ranking_json(&whole);
        prop_assert_eq!(&ranking_json(&forward), &expect, "forward merge diverged");
        prop_assert_eq!(&ranking_json(&backward), &expect, "reverse merge diverged");
        prop_assert_eq!(forward.profiles_ingested(), whole.profiles_ingested());
        prop_assert_eq!(forward.goroutines_seen(), whole.goroutines_seen());
    }

    /// Commutativity and associativity of the merge itself: a∪b == b∪a
    /// and (a∪b)∪c == a∪(b∪c), compared on rankings.
    #[test]
    fn merge_is_commutative_and_associative(
        profiles in fleet(),
        cut1 in 0usize..14,
        cut2 in 0usize..14,
    ) {
        let c1 = cut1.min(profiles.len());
        let c2 = cut2.min(profiles.len()).max(c1);
        let a = acc_of(&profiles[..c1].iter().collect::<Vec<_>>());
        let b = acc_of(&profiles[c1..c2].iter().collect::<Vec<_>>());
        let c = acc_of(&profiles[c2..].iter().collect::<Vec<_>>());

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ranking_json(&ab), ranking_json(&ba), "merge is not commutative");

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ranking_json(&ab_c), ranking_json(&a_bc), "merge is not associative");
    }
}
