//! Property tests for the analysis pipeline's algebra.

use gosim::{Frame, Gid, GoStatus, GoroutineProfile, GoroutineRecord, Loc};
use leakprof::{aggregate, rms, Config, SourceIndex};
use proptest::prelude::*;

fn blocked(gid: u64, file: &str, line: u32) -> GoroutineRecord {
    GoroutineRecord {
        gid: Gid(gid),
        name: "f$1".into(),
        status: GoStatus::ChanSend { nil_chan: false },
        stack: vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.chansend1"),
            Frame::new("f$1", Loc::new(file, line)),
        ],
        created_by: Frame::new("f", Loc::new(file, 1)),
        wait_ticks: 1,
        retained_bytes: 64,
    }
}

fn profiles_from(counts: &[Vec<u32>]) -> Vec<GoroutineProfile> {
    // counts[i][s] = blocked goroutines at site s in instance i.
    counts
        .iter()
        .enumerate()
        .map(|(i, sites)| {
            let mut gs = Vec::new();
            let mut gid = 0;
            for (s, &n) in sites.iter().enumerate() {
                for _ in 0..n {
                    gs.push(blocked(gid, &format!("site{s}.go"), 10));
                    gid += 1;
                }
            }
            GoroutineProfile {
                instance: format!("i{i}"),
                captured_at: 0,
                goroutines: gs,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RMS is bounded by the mean from below and the max from above.
    #[test]
    fn rms_between_mean_and_max(counts in proptest::collection::vec(0u64..10_000, 1..50)) {
        let r = rms(&counts);
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let max = *counts.iter().max().expect("non-empty") as f64;
        prop_assert!(r >= mean - 1e-9, "rms {r} < mean {mean}");
        prop_assert!(r <= max + 1e-9, "rms {r} > max {max}");
    }

    /// Site totals equal the number of blocked goroutines injected, and
    /// per-instance vectors cover every profile exactly once.
    #[test]
    fn aggregate_conserves_counts(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..60, 3), 1..8)
    ) {
        let profiles = profiles_from(&counts);
        let cfg = Config { threshold: 1, ast_filter: false, top_n: 10 };
        let stats = aggregate(&profiles, &cfg, &SourceIndex::new());
        for s in &stats {
            let site: usize = s.op.loc.file
                .strip_prefix("site").unwrap()
                .strip_suffix(".go").unwrap()
                .parse().unwrap();
            let expected: u64 = counts.iter().map(|inst| inst[site] as u64).sum();
            prop_assert_eq!(s.total, expected);
            prop_assert_eq!(s.per_instance.len(), profiles.len());
            let vector_sum: u64 = s.per_instance.iter().map(|(_, c)| *c).sum();
            prop_assert_eq!(vector_sum, expected);
        }
    }

    /// Raising the threshold never surfaces a site that a lower
    /// threshold hid: suspects(T2) ⊆ suspects(T1) for T1 <= T2.
    #[test]
    fn threshold_is_monotone(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..80, 3), 1..8),
        t1 in 1u64..40,
        extra in 0u64..40,
    ) {
        let t2 = t1 + extra;
        let profiles = profiles_from(&counts);
        let get = |t: u64| {
            let cfg = Config { threshold: t, ast_filter: false, top_n: 10 };
            aggregate(&profiles, &cfg, &SourceIndex::new())
                .into_iter()
                .map(|s| s.op)
                .collect::<std::collections::BTreeSet<_>>()
        };
        let low = get(t1);
        let high = get(t2);
        prop_assert!(high.is_subset(&low), "t1={t1} t2={t2}");
    }

    /// The snapshot format round-trips exactly: serialize → JSON →
    /// deserialize → `ranked()` is byte-identical to the source
    /// accumulator's, for any ingestion history and any threshold.
    #[test]
    fn snapshot_roundtrip_is_ranking_exact(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..120, 4), 1..10),
        threshold in 1u64..60,
    ) {
        let profiles = profiles_from(&counts);
        let mut acc = leakprof::FleetAccumulator::new();
        for p in &profiles {
            acc.ingest(p);
        }
        // Through the full persistence path: snapshot → JSON text →
        // parsed snapshot → restored accumulator.
        let json = serde_json::to_string(&acc.snapshot()).unwrap();
        let snap: leakprof::AccumulatorSnapshot = serde_json::from_str(&json).unwrap();
        let restored = leakprof::FleetAccumulator::from_snapshot(&snap).unwrap();

        let cfg = Config { threshold, ast_filter: false, top_n: 10 };
        let want = aggregate(&profiles, &cfg, &SourceIndex::new());
        let got = restored.ranked(&cfg, &SourceIndex::new());
        prop_assert_eq!(
            serde_json::to_string(&want).unwrap(),
            serde_json::to_string(&got).unwrap()
        );
        prop_assert_eq!(restored.profiles_ingested(), profiles.len());
    }

    /// Ranking is sorted by RMS, descending.
    #[test]
    fn ranking_is_sorted(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u32..100, 4), 2..6)
    ) {
        let profiles = profiles_from(&counts);
        let cfg = Config { threshold: 1, ast_filter: false, top_n: 10 };
        let stats = aggregate(&profiles, &cfg, &SourceIndex::new());
        for w in stats.windows(2) {
            prop_assert!(w[0].rms >= w[1].rms - 1e-12);
        }
    }
}
