//! # racecheck — happens-before data-race detection for the leak lab
//!
//! `racecheck` closes the gap between the paper's leak detectors and the
//! *other* dominant concurrency defect class of the enterprise-Go study
//! line: data races. It consumes the shared-variable access stream the
//! [`gosim`] runtime records when its happens-before engine is enabled
//! ([`gosim::Runtime::enable_hb`]) and applies a FastTrack-style
//! vector-clock analysis: each variable tracks the *epoch* of its last
//! write plus a read vector, and any pair of accesses to the same
//! variable from different goroutines that is unordered by
//! happens-before — with at least one write — is a race.
//!
//! Findings carry **both** access stacks, the variable name, and a
//! description of the synchronization gap, and they convert into the
//! exact [`leakprof::SiteStats`] shape leaks use, so races flow through
//! the same fingerprint → RMS ranking → ledger → `/health` pipeline as
//! goroutine leaks, fleet-wide.
//!
//! ```
//! let src = r#"
//! package acct
//!
//! func Update() {
//!     done := make(chan bool)
//!     total := 0
//!     go func() {
//!         total = total + 1
//!         done <- true
//!     }()
//!     total = total + 1
//!     <-done
//! }
//! "#;
//! let report = racecheck::check_sources(
//!     &[(src.to_string(), "acct/update.go".to_string())],
//!     "acct.Update",
//!     &racecheck::RunConfig::default(),
//! )
//! .expect("compiles");
//! assert!(!report.findings.is_empty());
//! assert!(report.findings.iter().all(|f| f.var == "total"));
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use gosim::{AccessEvent, Frame, Gid, GoStatus, GoroutineRecord, Loc, Runtime, VClock, Val};
use leakprof::analyze::SiteStats;
use leakprof::signature::{BlockedOp, ChanOpKind};
use minigo::Diag;
use serde::{Deserialize, Serialize};

/// One detected data race: two accesses to the same variable, unordered
/// by happens-before, at least one of them a write.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaceFinding {
    /// The racing variable.
    pub var: String,
    /// The earlier access (in the observed schedule), with its full
    /// stack and vector clock.
    pub first: AccessEvent,
    /// The later access that completed the race, with its full stack
    /// and vector clock.
    pub second: AccessEvent,
    /// Human-readable description of the synchronization gap: which
    /// happens-before edge is missing and why the clocks are
    /// incomparable.
    pub gap: String,
}

impl RaceFinding {
    /// The site a race is fingerprinted by: the location of the write
    /// (preferring the later access when both are writes). Mirrors how
    /// leaks are keyed by their blocking operation's location.
    pub fn site(&self) -> &Loc {
        if self.second.is_write {
            &self.second.loc
        } else {
            &self.first.loc
        }
    }

    /// Renders the finding the way `go run -race` reports races: both
    /// stacks, leaf first.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "DATA RACE on `{}`:", self.var);
        for (label, ev) in [("previous", &self.first), ("current", &self.second)] {
            let _ = writeln!(
                out,
                "  {} {} by goroutine {} at {}:",
                label,
                if ev.is_write { "write" } else { "read" },
                ev.gid.0,
                ev.loc
            );
            for f in &ev.stack {
                let _ = writeln!(out, "    {} ({})", f.func, f.loc);
            }
        }
        let _ = writeln!(out, "  gap: {}", self.gap);
        out
    }
}

impl fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on `{}`: {} at {} / {} at {}",
            self.var,
            access_word(&self.first),
            self.first.loc,
            access_word(&self.second),
            self.second.loc
        )
    }
}

fn access_word(ev: &AccessEvent) -> &'static str {
    if ev.is_write {
        "write"
    } else {
        "read"
    }
}

fn fmt_clock(c: &VClock) -> String {
    let parts: Vec<String> = c.iter().map(|(g, v)| format!("g{}:{v}", g.0)).collect();
    format!("{{{}}}", parts.join(" "))
}

fn gap_text(prev: &AccessEvent, cur: &AccessEvent) -> String {
    format!(
        "no happens-before edge orders the {} by goroutine {} at {} (clock {}) \
         and the {} by goroutine {} at {} (clock {}); the clocks are incomparable, \
         so no channel, mutex, WaitGroup, or spawn edge connects the two accesses",
        access_word(prev),
        prev.gid.0,
        prev.loc,
        fmt_clock(&prev.clock),
        access_word(cur),
        cur.gid.0,
        cur.loc,
        fmt_clock(&cur.clock),
    )
}

/// Per-variable FastTrack state: the last write as an epoch
/// `(gid, component)` plus the event for reporting, and the last read
/// per goroutine since that write.
#[derive(Default)]
struct VarState {
    last_write: Option<(Gid, u64, AccessEvent)>,
    reads: BTreeMap<Gid, (u64, AccessEvent)>,
}

/// True when the prior access at epoch `(g, c)` does **not**
/// happen-before the current access with clock `cur`: the race
/// condition for cross-goroutine pairs.
fn unordered(g: Gid, c: u64, cur: &AccessEvent) -> bool {
    g != cur.gid && c > cur.clock.get(g)
}

/// Runs the FastTrack-style detector over an access stream (in observed
/// execution order, as returned by
/// [`gosim::Runtime::take_access_events`]). Findings are deduplicated by
/// `(variable, first site, second site, kinds)` so a race inside a loop
/// reports once.
pub fn detect(events: &[AccessEvent]) -> Vec<RaceFinding> {
    let mut vars: HashMap<String, VarState> = HashMap::new();
    let mut seen: HashSet<(String, String, String, bool, bool)> = HashSet::new();
    let mut findings = Vec::new();
    let mut report = |prev: &AccessEvent, cur: &AccessEvent, var: &str| {
        // The pair is the same race whichever access the schedule
        // happened to order first, so the key is direction-insensitive.
        let mut a = (prev.loc.to_string(), prev.is_write);
        let mut b = (cur.loc.to_string(), cur.is_write);
        if b < a {
            std::mem::swap(&mut a, &mut b);
        }
        let key = (var.to_string(), a.0, b.0, a.1, b.1);
        if seen.insert(key) {
            findings.push(RaceFinding {
                var: var.to_string(),
                gap: gap_text(prev, cur),
                first: prev.clone(),
                second: cur.clone(),
            });
        }
    };
    for ev in events {
        let st = vars.entry(ev.var.clone()).or_default();
        // Write-write and write-read races against the last write.
        if let Some((wg, wc, wev)) = &st.last_write {
            if unordered(*wg, *wc, ev) {
                report(wev, ev, &ev.var);
            }
        }
        if ev.is_write {
            // Read-write races against every read since the last write.
            for (rg, (rc, rev)) in &st.reads {
                if unordered(*rg, *rc, ev) {
                    report(rev, ev, &ev.var);
                }
            }
            st.last_write = Some((ev.gid, ev.clock.get(ev.gid), ev.clone()));
            st.reads.clear();
        } else {
            st.reads.insert(ev.gid, (ev.clock.get(ev.gid), ev.clone()));
        }
    }
    findings
}

/// A full race-detection report for one program run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaceReport {
    /// All deduplicated findings, in detection order.
    pub findings: Vec<RaceFinding>,
    /// Findings grouped per write site in the [`SiteStats`] shape the
    /// leak pipeline ranks and persists.
    pub suspects: Vec<SiteStats>,
    /// Number of access events analyzed.
    pub events_analyzed: usize,
}

impl RaceReport {
    /// True when no race was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "=== racecheck: {} race(s) from {} access events\n",
            self.findings.len(),
            self.events_analyzed
        );
        for f in &self.findings {
            let _ = writeln!(out);
            out.push_str(&f.render());
        }
        out
    }
}

/// Converts findings into ranked [`SiteStats`] — the exact shape leak
/// suspects use — keyed by `data race at <write site>`. The
/// representative record's [`blocking_frame`] is the racing access, so
/// fingerprinting, ledger persistence, and `/health` trends treat races
/// like any other suspect.
///
/// [`blocking_frame`]: GoroutineRecord::blocking_frame
pub fn suspects_from_findings(instance: &str, findings: &[RaceFinding]) -> Vec<SiteStats> {
    let labelled: Vec<(String, &RaceFinding)> =
        findings.iter().map(|f| (instance.to_string(), f)).collect();
    suspects_from_labelled(&labelled)
}

/// Like [`suspects_from_findings`], with a per-finding instance label
/// (e.g. the entry point the race surfaced under), so `per_instance`
/// reflects which runs hit which site — the multi-instance shape the
/// fleet RMS ranking expects.
fn suspects_from_labelled(labelled: &[(String, &RaceFinding)]) -> Vec<SiteStats> {
    let mut by_site: BTreeMap<Loc, (BTreeMap<String, u64>, GoroutineRecord)> = BTreeMap::new();
    for (instance, f) in labelled {
        let site = f.site().clone();
        let rep_ev = if f.second.is_write {
            &f.second
        } else {
            &f.first
        };
        let slot = by_site
            .entry(site)
            .or_insert_with(|| (BTreeMap::new(), race_record(rep_ev)));
        *slot.0.entry(instance.clone()).or_insert(0) += 1;
    }
    let mut out: Vec<SiteStats> = by_site
        .into_iter()
        .map(|(loc, (per_instance, representative))| {
            let counts: Vec<u64> = per_instance.values().copied().collect();
            let total: u64 = counts.iter().sum();
            let max_instance = counts.iter().copied().max().unwrap_or(0);
            let rms = leakprof::analyze::rms(&counts);
            SiteStats {
                op: BlockedOp {
                    kind: ChanOpKind::Race,
                    loc,
                },
                instances_over_threshold: per_instance.len(),
                per_instance: per_instance.into_iter().collect(),
                total,
                max_instance,
                rms,
                representative,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.rms
            .partial_cmp(&a.rms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.op.cmp(&b.op))
    });
    out
}

/// Builds a pprof-style record for a racing access so race suspects
/// render and fingerprint exactly like leak suspects. The leaf user
/// frame carries the access location.
fn race_record(ev: &AccessEvent) -> GoroutineRecord {
    let mut stack = vec![Frame::runtime("runtime.racecheck")];
    match ev.stack.first() {
        Some(top) => {
            stack.push(Frame::new(top.func.clone(), ev.loc.clone()));
            stack.extend(ev.stack.iter().skip(1).cloned());
        }
        None => stack.push(Frame::new("unknown", ev.loc.clone())),
    }
    GoroutineRecord {
        gid: ev.gid,
        name: ev
            .stack
            .first()
            .map(|f| f.func.clone())
            .unwrap_or_else(|| "unknown".into()),
        status: GoStatus::Running,
        stack,
        created_by: Frame::new("runtime.racecheck", Loc::unknown()),
        wait_ticks: 0,
        retained_bytes: 0,
    }
}

/// Knobs for the single-schedule race run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Scheduler seed (determinism: same seed, same schedule, same
    /// report).
    pub seed: u64,
    /// Virtual ticks to advance.
    pub ticks: u64,
    /// Scheduler-slice budget.
    pub max_slices: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 13,
            ticks: 5_000,
            max_slices: 30_000,
        }
    }
}

/// Compiles sources with race instrumentation, runs `entry` under the
/// happens-before engine, and returns the race report. `instance` for
/// the suspect stats is the entry name.
///
/// # Errors
///
/// Returns compile diagnostics; an unknown entry yields an empty report.
pub fn check_sources(
    sources: &[(String, String)],
    entry: &str,
    cfg: &RunConfig,
) -> Result<RaceReport, Vec<Diag>> {
    let prog = minigo::compile_many_race(sources)?;
    let mut rt = Runtime::with_seed(cfg.seed);
    rt.enable_hb();
    prog.spawn_func(&mut rt, entry, Vec::<Val>::new());
    rt.advance(cfg.ticks, cfg.max_slices);
    let events = rt.take_access_events();
    let findings = detect(&events);
    let suspects = suspects_from_findings(entry, &findings);
    Ok(RaceReport {
        findings,
        suspects,
        events_analyzed: events.len(),
    })
}

/// Compiles sources once (race mode) and runs *every* listed zero-arg
/// entry, each in a fresh deterministic runtime. Findings are merged
/// with cross-entry deduplication; `per_instance` in the suspects
/// records which entries hit which site. Unknown entries are skipped.
///
/// # Errors
///
/// Returns compile diagnostics.
pub fn check_entries(
    sources: &[(String, String)],
    entries: &[String],
    cfg: &RunConfig,
) -> Result<RaceReport, Vec<Diag>> {
    let prog = minigo::compile_many_race(sources)?;
    let mut events_total = 0usize;
    let mut merged: Vec<RaceFinding> = Vec::new();
    let mut labelled: Vec<(String, RaceFinding)> = Vec::new();
    let mut seen: HashSet<(String, String, String, bool, bool)> = HashSet::new();
    for entry in entries {
        let mut rt = Runtime::with_seed(cfg.seed);
        rt.enable_hb();
        if prog.spawn_func(&mut rt, entry, Vec::<Val>::new()).is_none() {
            continue;
        }
        rt.advance(cfg.ticks, cfg.max_slices);
        let events = rt.take_access_events();
        events_total += events.len();
        for f in detect(&events) {
            let mut a = (f.first.loc.to_string(), f.first.is_write);
            let mut b = (f.second.loc.to_string(), f.second.is_write);
            if b < a {
                std::mem::swap(&mut a, &mut b);
            }
            if seen.insert((f.var.clone(), a.0, b.0, a.1, b.1)) {
                merged.push(f.clone());
            }
            labelled.push((entry.clone(), f));
        }
    }
    let refs: Vec<(String, &RaceFinding)> = labelled
        .iter()
        .map(|(instance, f)| (instance.clone(), f))
        .collect();
    Ok(RaceReport {
        suspects: suspects_from_labelled(&refs),
        findings: merged,
        events_analyzed: events_total,
    })
}

/// Discovers runnable entry points in parsed sources: zero-parameter
/// functions, preferring `Test*`-named ones when any exist (the corpus
/// convention), qualified as `pkg.Func` (`main` stays bare). Returns
/// entries in deterministic (sorted) order.
///
/// # Errors
///
/// Returns parse diagnostics.
pub fn discover_entries(sources: &[(String, String)]) -> Result<Vec<String>, Vec<Diag>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (src, path) in sources {
        match minigo::parse_file(src, path) {
            Ok(file) => {
                for f in &file.funcs {
                    if !f.params.is_empty() {
                        continue;
                    }
                    let name = if f.name == "main" {
                        "main".to_string()
                    } else {
                        format!("{}.{}", file.package, f.name)
                    };
                    entries.push((f.name.starts_with("Test"), name));
                }
            }
            Err(mut e) => errors.append(&mut e),
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    let any_tests = entries.iter().any(|(is_test, _)| *is_test);
    let mut out: Vec<String> = entries
        .into_iter()
        .filter(|(is_test, _)| !any_tests || *is_test)
        .map(|(_, name)| name)
        .collect();
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(gid: u64, var: &str, line: u32, is_write: bool, clock: &[(u64, u64)]) -> AccessEvent {
        let mut c = VClock::new();
        for &(g, v) in clock {
            for _ in 0..v {
                c.tick(Gid(g));
            }
        }
        AccessEvent {
            gid: Gid(gid),
            var: var.into(),
            loc: Loc::new("t.go", line),
            is_write,
            clock: c,
            stack: vec![Frame::new("t.f", Loc::new("t.go", line))],
        }
    }

    #[test]
    fn concurrent_writes_race() {
        let events = vec![
            ev(1, "x", 3, true, &[(1, 1)]),
            ev(2, "x", 7, true, &[(2, 1)]),
        ];
        let f = detect(&events);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].var, "x");
        assert!(f[0].first.is_write && f[0].second.is_write);
        assert!(!f[0].gap.is_empty());
    }

    #[test]
    fn ordered_accesses_do_not_race() {
        // Writer at epoch g1:1; reader's clock includes g1:2 ≥ 1.
        let events = vec![
            ev(1, "x", 3, true, &[(1, 1)]),
            ev(2, "x", 7, false, &[(1, 2), (2, 1)]),
        ];
        assert!(detect(&events).is_empty());
    }

    #[test]
    fn read_write_race_reports_both_stacks() {
        let events = vec![
            ev(1, "x", 3, false, &[(1, 1)]),
            ev(2, "x", 7, true, &[(2, 1)]),
        ];
        let f = detect(&events);
        assert_eq!(f.len(), 1);
        assert!(!f[0].first.stack.is_empty());
        assert!(!f[0].second.stack.is_empty());
    }

    #[test]
    fn same_goroutine_never_races() {
        let events = vec![
            ev(1, "x", 3, true, &[(1, 1)]),
            ev(1, "x", 4, true, &[(1, 2)]),
        ];
        assert!(detect(&events).is_empty());
    }

    #[test]
    fn loop_races_dedup_to_one_finding() {
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(ev(1, "x", 3, true, &[(1, i + 1)]));
            events.push(ev(2, "x", 7, true, &[(2, i + 1)]));
        }
        assert_eq!(detect(&events).len(), 1);
    }

    #[test]
    fn suspects_keyed_by_write_site() {
        let events = vec![
            ev(1, "x", 3, false, &[(1, 1)]),
            ev(2, "x", 7, true, &[(2, 1)]),
        ];
        let f = detect(&events);
        let sus = suspects_from_findings("test", &f);
        assert_eq!(sus.len(), 1);
        assert_eq!(sus[0].op.kind, ChanOpKind::Race);
        assert_eq!(sus[0].op.loc, Loc::new("t.go", 7));
        let rep = sus[0].representative.blocking_frame().expect("user frame");
        assert_eq!(rep.loc, Loc::new("t.go", 7));
    }
}
