//! Precision/recall gate over the labelled race corpus.
//!
//! Recall: every labelled truth site must be localized — a finding on
//! the truth variable whose write site falls on a declared line, in the
//! declared file. Precision: racy programs must report only truth
//! variables, and the race-free control slice must report **zero**
//! findings. Every finding must carry both access stacks.

use corpus::races::{render_control, render_racy, RaceControl, RacePattern};
use leakprof::signature::ChanOpKind;
use racecheck::{check_sources, RunConfig};

#[test]
fn every_truth_site_is_localized() {
    for (i, pattern) in RacePattern::all().into_iter().enumerate() {
        let r = render_racy(pattern, "gt", i);
        let report = check_sources(&r.sources(), &r.entry(), &RunConfig::default())
            .unwrap_or_else(|e| panic!("{pattern:?} does not compile: {e:?}"));
        for t in &r.truth {
            let hit = report.findings.iter().any(|f| {
                f.var == t.var
                    && f.site().file.as_ref() == t.file
                    && t.write_lines.contains(&f.site().line)
            });
            assert!(
                hit,
                "{pattern:?}: truth var `{}` not localized at {:?} in {}\nreport:\n{}",
                t.var,
                t.write_lines,
                t.file,
                report.render()
            );
        }
    }
}

#[test]
fn racy_programs_report_only_truth_variables() {
    for (i, pattern) in RacePattern::all().into_iter().enumerate() {
        let r = render_racy(pattern, "pr", i);
        let report = check_sources(&r.sources(), &r.entry(), &RunConfig::default())
            .unwrap_or_else(|e| panic!("{pattern:?} does not compile: {e:?}"));
        let truth_vars: Vec<&str> = r.truth.iter().map(|t| t.var.as_str()).collect();
        for f in &report.findings {
            assert!(
                truth_vars.contains(&f.var.as_str()),
                "{pattern:?}: false positive on `{}` (truth: {truth_vars:?})\n{}",
                f.var,
                f.render()
            );
        }
    }
}

#[test]
fn control_slice_is_race_free() {
    for (i, control) in RaceControl::all().into_iter().enumerate() {
        let r = render_control(control, "cf", i);
        let report = check_sources(&r.sources(), &r.entry(), &RunConfig::default())
            .unwrap_or_else(|e| panic!("{control:?} does not compile: {e:?}"));
        assert!(
            report.is_clean(),
            "{control:?}: false positive(s):\n{}",
            report.render()
        );
        assert!(
            report.events_analyzed > 0,
            "{control:?} emitted no accesses"
        );
    }
}

#[test]
fn every_finding_carries_both_stacks_and_the_gap() {
    for (i, pattern) in RacePattern::all().into_iter().enumerate() {
        let r = render_racy(pattern, "st", i);
        let report = check_sources(&r.sources(), &r.entry(), &RunConfig::default()).unwrap();
        assert!(!report.findings.is_empty(), "{pattern:?} found nothing");
        for f in &report.findings {
            assert!(
                !f.first.stack.is_empty() && !f.second.stack.is_empty(),
                "{pattern:?}: finding without both stacks: {f}"
            );
            assert!(
                f.first.is_write || f.second.is_write,
                "{pattern:?}: race without a write: {f}"
            );
            assert!(!f.gap.is_empty(), "{pattern:?}: empty gap description");
            assert_ne!(
                f.first.gid, f.second.gid,
                "{pattern:?}: race within one goroutine: {f}"
            );
        }
    }
}

#[test]
fn suspects_ride_the_leak_pipeline_shape() {
    let r = render_racy(RacePattern::UnprotectedCounter, "sp", 0);
    let report = check_sources(&r.sources(), &r.entry(), &RunConfig::default()).unwrap();
    assert!(!report.suspects.is_empty());
    for s in &report.suspects {
        assert_eq!(s.op.kind, ChanOpKind::Race);
        assert_eq!(s.op.to_string(), format!("data race at {}", s.op.loc));
        let rep = s
            .representative
            .blocking_frame()
            .expect("representative has a user frame");
        assert_eq!(rep.loc, s.op.loc, "representative anchors the race site");
        assert!(s.rms > 0.0);
    }
    // Ranked like leaks: rms descending.
    for w in report.suspects.windows(2) {
        assert!(w[0].rms >= w[1].rms);
    }
}

#[test]
fn detection_is_deterministic_per_seed() {
    let r = render_racy(RacePattern::DoubleCheckedInit, "dt", 0);
    let a = check_sources(&r.sources(), &r.entry(), &RunConfig::default()).unwrap();
    let b = check_sources(&r.sources(), &r.entry(), &RunConfig::default()).unwrap();
    assert_eq!(
        serde_json::to_string(&a.findings).unwrap(),
        serde_json::to_string(&b.findings).unwrap()
    );
}
