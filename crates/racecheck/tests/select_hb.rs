//! Regression: `select` synchronization accounting.
//!
//! Only the *chosen* arm's channel transfer contributes a
//! happens-before edge. A non-taken arm — even one whose channel
//! carries a pending send from the writer — must NOT order the writer's
//! accesses before the select body, and per-message clocks mean a
//! buffered value enqueued by the writer but never dequeued creates no
//! edge either.

use racecheck::{check_sources, RunConfig};

/// The writer publishes `x = 1` and then sends on `slow`, whose buffer
/// already holds a value the *parent* enqueued. Whichever arm the
/// seeded select picks, the dequeued message is the parent's own (FIFO
/// per-message clocks), so no edge orders the writer's store before the
/// arm body's read of `x`: the race must be reported under every seed.
fn program() -> Vec<(String, String)> {
    let src = "package p\n\nfunc Sel() {\n\tx := 0\n\tfast := make(chan int, 1)\n\tslow := make(chan int, 2)\n\tfast <- 1\n\tslow <- 9\n\tgo func() {\n\t\tx = 1\n\t\tslow <- 1\n\t}()\n\tsim.Work(8)\n\tselect {\n\tcase <-fast:\n\t\tsim.Work(x)\n\tcase <-slow:\n\t\tsim.Work(x)\n\t}\n}\n";
    vec![(src.to_string(), "p/sel.go".to_string())]
}

#[test]
fn non_taken_select_arm_creates_no_hb_edge() {
    for seed in 0..16 {
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        let report = check_sources(&program(), "p.Sel", &cfg).expect("compiles");
        let hit = report.findings.iter().any(|f| {
            f.var == "x" && f.first.is_write != f.second.is_write && (f.site().line == 10)
        });
        assert!(
            hit,
            "seed {seed}: write x (p/sel.go:10) vs select-arm read must race \
             (a non-taken arm or an undequeued buffered send is not synchronization)\n{}",
            report.render()
        );
    }
}

/// The mirror control: when the *taken* arm really is the writer's
/// channel (unbuffered rendezvous), the edge exists and there is no
/// race — the chosen arm's synchronization still counts.
#[test]
fn taken_select_arm_does_synchronize() {
    let src = "package p\n\nfunc Ok() {\n\tx := 0\n\tch := make(chan int)\n\tgo func() {\n\t\tx = 1\n\t\tch <- 1\n\t}()\n\tselect {\n\tcase <-ch:\n\t\tsim.Work(x)\n\t}\n}\n";
    let sources = vec![(src.to_string(), "p/ok.go".to_string())];
    for seed in 0..16 {
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        let report = check_sources(&sources, "p.Ok", &cfg).expect("compiles");
        assert!(
            report.is_clean(),
            "seed {seed}: rendezvous through the chosen arm orders the write\n{}",
            report.render()
        );
    }
}
