//! # leakcore — the end-to-end dynamic-analysis methodology (paper Fig 3)
//!
//! Glue that assembles the workspace's pieces into the paper's two
//! pipelines:
//!
//! * **CI gate** ([`ci`]): every PR's unit tests run on [`gosim`]
//!   runtimes instrumented with [`goleak`]; PRs introducing unsuppressed
//!   goroutine leaks are blocked. A trial run seeds the suppression list
//!   with legacy leaks, enabling incremental rollout.
//! * **Production monitor** ([`evaluate::evaluate_leakprof`] and the
//!   `fleet` crate): daily profile sweeps feed [`leakprof`], which
//!   thresholds, filters, ranks by RMS, and routes reports to owners.
//!   [`monitor`] runs the same sweep the way production does — over real
//!   loopback TCP through the `collector` crate's `leakprofd` scraper.
//!
//! Plus the experiment harnesses:
//!
//! * [`backtest`] reproduces Fig 5 (weekly leak inflow collapsing when
//!   the gate deploys);
//! * [`evaluate`] reproduces Table III (measured precision/recall and
//!   offline cost of the three static baselines vs the dynamic tools).
//!
//! The paper's Fig 3, in ASCII:
//!
//! ```text
//!              developer PR
//!                   │
//!         ┌─────────▼─────────┐   fail: new leak      ┌────────────┐
//!         │ CI: run unit tests │──────────────────────▶ PR blocked  │
//!         │  + goleak verify   │   (unless suppressed) └────────────┘
//!         └─────────┬─────────┘
//!                   │ pass
//!         ┌─────────▼─────────┐        daily sweep    ┌────────────┐
//!         │ deploy to          │  profiles  ┌────────┐ │  owner      │
//!         │ production fleet   │───────────▶│LeakProf│▶│  report     │
//!         └───────────────────┘            └────────┘ └────────────┘
//! ```
#![warn(missing_docs)]

pub mod backtest;
pub mod ci;
pub mod evaluate;
pub mod monitor;

pub use backtest::{run as run_backtest, BacktestConfig, BacktestResult};
pub use ci::{CiConfig, CiGate, PrResult, TestOutcome};
pub use evaluate::{
    evaluate_goleak, evaluate_leakprof, evaluate_leakprof_with_threshold, evaluate_static,
    render_table3, ToolEval,
};
pub use monitor::{monitor_via_collector, MonitorConfig, MonitorOutcome};
