//! The Table III harness: measured precision/recall and offline cost of
//! every tool — three static baselines, GOLEAK, and LEAKPROF — against
//! corpus/fleet ground truth. Nothing here is assumed: each tool really
//! runs and its reports are matched against injected leak locations.

use std::collections::BTreeSet;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use staticlint::findings::Analyzer;

use crate::ci::{CiConfig, CiGate};
use corpus::Corpus;

/// One row of the Table III reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToolEval {
    /// Tool name.
    pub tool: String,
    /// Total reports (alerts) produced.
    pub reports: usize,
    /// Reports matching a ground-truth leak location.
    pub true_positives: usize,
    /// Distinct ground-truth sites found.
    pub truth_found: usize,
    /// Ground-truth sites in scope for the tool.
    pub truth_total: usize,
    /// Offline analysis wall time in milliseconds.
    pub offline_ms: f64,
    /// Whether the tool is CI/CD-deployable per the paper's criteria
    /// (seconds-fast, high precision).
    pub deployable: bool,
}

impl ToolEval {
    /// Precision = TP / reports.
    pub fn precision(&self) -> f64 {
        if self.reports == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.reports as f64
        }
    }

    /// Recall = truth sites found / truth sites in scope.
    pub fn recall(&self) -> f64 {
        if self.truth_total == 0 {
            1.0
        } else {
            self.truth_found as f64 / self.truth_total as f64
        }
    }
}

/// Renders the Table III-style comparison.
pub fn render_table3(rows: &[ToolEval]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} | {:>7} | {:>9} | {:>7} | {:>12} | Deployable in CI/CD",
        "Tool", "Reports", "Precision", "Recall", "Offline (ms)"
    );
    let _ = writeln!(out, "{}", "-".repeat(80));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} | {:>7} | {:>8.1}% | {:>6.1}% | {:>12.1} | {}",
            r.tool,
            r.reports,
            100.0 * r.precision(),
            100.0 * r.recall(),
            r.offline_ms,
            if r.deployable { "Yes" } else { "No" }
        );
    }
    out
}

/// Evaluates a static analyzer against corpus ground truth.
///
/// Only channel leaks count toward a static tool's recall denominator —
/// the tools do not model timers/semaphores/IO, matching the paper's
/// scoping of partial deadlocks.
pub fn evaluate_static(repo: &Corpus, analyzer: &dyn Analyzer) -> ToolEval {
    let truth: BTreeSet<(String, u32)> = repo
        .truth
        .iter()
        .filter(|t| t.pattern.is_channel_leak())
        .map(|t| (t.file.clone(), t.line))
        .collect();

    let started = Instant::now();
    let mut reports = 0usize;
    let mut tp = 0usize;
    let mut found: BTreeSet<(String, u32)> = BTreeSet::new();
    for pkg in &repo.packages {
        let files = pkg.parse();
        for f in analyzer.analyze_files(&files) {
            reports += 1;
            let key = (f.loc.file.to_string(), f.loc.line);
            if truth.contains(&key) {
                tp += 1;
                found.insert(key);
            }
        }
    }
    let offline_ms = started.elapsed().as_secs_f64() * 1e3;
    ToolEval {
        tool: analyzer.name().to_string(),
        reports,
        true_positives: tp,
        truth_found: found.len(),
        truth_total: truth.len(),
        offline_ms,
        deployable: false, // static baselines: too slow / too noisy (paper)
    }
}

/// Evaluates the GOLEAK gate: runs every package's tests and matches the
/// reported blocking locations against ground truth (all leak kinds are
/// in scope — goleak sees every lingering goroutine).
pub fn evaluate_goleak(repo: &Corpus) -> ToolEval {
    let truth: BTreeSet<(String, u32)> = repo
        .truth
        .iter()
        .map(|t| (t.file.clone(), t.line))
        .collect();
    let gate = CiGate::new(CiConfig::default());

    let started = Instant::now();
    let mut report_sites: BTreeSet<(String, u32)> = BTreeSet::new();
    for pkg in &repo.packages {
        for outcome in gate.run_package(pkg) {
            for leak in outcome.verdict.all_leaks() {
                if let Some(frame) = &leak.blocking_frame {
                    report_sites.insert((frame.loc.file.to_string(), frame.loc.line));
                }
            }
        }
    }
    let offline_ms = started.elapsed().as_secs_f64() * 1e3;
    let tp = report_sites.iter().filter(|k| truth.contains(*k)).count();
    ToolEval {
        tool: "goleak".to_string(),
        reports: report_sites.len(),
        true_positives: tp,
        truth_found: tp,
        truth_total: truth.len(),
        offline_ms,
        deployable: true,
    }
}

/// [`evaluate_leakprof`] with the default scaled threshold (40).
pub fn evaluate_leakprof(seed: u64, days: u32) -> (ToolEval, leakprof::Report) {
    evaluate_leakprof_with_threshold(seed, days, 40)
}

/// Builds a small production fleet with known leaky services plus a
/// benign-but-congested service, sweeps profiles, runs LeakProf at the
/// given criterion-1 threshold, and scores the suspects. Returns the
/// evaluation row and the rendered report (for inspection).
pub fn evaluate_leakprof_with_threshold(
    seed: u64,
    days: u32,
    threshold: u64,
) -> (ToolEval, leakprof::Report) {
    use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};

    let mut f = Fleet::new(FleetConfig {
        seed,
        ticks_per_day: 48,
        ..FleetConfig::default()
    });

    // Three genuinely leaky services (ground truth: their leak lines).
    let mut truth: BTreeSet<(String, u32)> = BTreeSet::new();
    for (i, (leaky, fixed, arg)) in [
        (
            handlers::timeout_leak("pay", 4_000),
            handlers::timeout_fixed("pay", 4_000),
            HandlerArg::NilCtx,
        ),
        (
            handlers::premature_return_leak("geo", 4_000),
            handlers::premature_return_fixed("geo", 4_000),
            HandlerArg::True,
        ),
        (
            handlers::contract_leak("msg", 4_000),
            handlers::contract_fixed("msg", 4_000),
            HandlerArg::False,
        ),
    ]
    .into_iter()
    .enumerate()
    {
        truth.insert((leaky.path.clone(), leaky.leak_line.expect("leaky handler")));
        let mut spec = default_service(&format!("svc{i}"), 3, leaky, fixed);
        spec.arg = arg;
        // Leak magnitudes differ by an order of magnitude across services
        // so threshold sweeps degrade gradually, as in the paper's tuning.
        spec.leak_activation = [0.45, 0.08, 0.75][i % 3];
        f.add_service(spec);
    }

    // A healthy service (no blocked goroutines at quiescence).
    let mut healthy = default_service(
        "ok",
        3,
        handlers::timeout_fixed("ok", 4_000),
        handlers::timeout_fixed("ok", 4_000),
    );
    healthy.fix_day = Some(0);
    f.add_service(healthy);

    // A congested-but-correct service: senders wait a long time for
    // their delayed consumers, producing a large transient population of
    // blocked goroutines — the classic LeakProf false positive.
    let congested = fleet::Handler {
        source: "package queue\n\nfunc Handle(x bool) {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\tgo func() {\n\t\ttime.Sleep(2000)\n\t\t<-ch\n\t}()\n}\n"
            .to_string(),
        path: "queue/handler.go".to_string(),
        func: "queue.Handle".to_string(),
        leak_line: None,
    };
    let mut qspec = default_service("queue", 3, congested.clone(), congested);
    qspec.arg = HandlerArg::True;
    qspec.leak_activation = 0.9;
    f.add_service(qspec);

    f.run_days(days);
    let profiles = f.collect_profiles();

    let mut lp = leakprof::LeakProf::new(leakprof::Config {
        threshold, // the paper's 10K, scaled by the fleet's sampling
        ast_filter: true,
        top_n: 10,
    });
    for (src, path) in f.handler_sources() {
        lp.index_source(&src, &path).expect("handler sources parse");
    }
    let started = Instant::now();
    let report = lp.analyze(&profiles);
    let offline_ms = started.elapsed().as_secs_f64() * 1e3;

    let reports = report.suspects.len();
    let tp = report
        .suspects
        .iter()
        .filter(|s| truth.contains(&(s.stats.op.loc.file.to_string(), s.stats.op.loc.line)))
        .count();
    (
        ToolEval {
            tool: "leakprof".to_string(),
            reports,
            true_positives: tp,
            truth_found: tp,
            truth_total: truth.len(),
            offline_ms,
            deployable: false, // production monitor, not a CI gate
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;
    use staticlint::{AbsInt, ModelCheck, PathCheck};

    fn eval_corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            packages: 160,
            leak_rate: 0.45,
            seed: 0xEE,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn goleak_precision_is_near_perfect_and_beats_static_tools() {
        let repo = eval_corpus();
        let gl = evaluate_goleak(&repo);
        let pc = evaluate_static(&repo, &PathCheck::new());
        let ai = evaluate_static(&repo, &AbsInt::new());
        assert!(
            gl.precision() > 0.95,
            "goleak precision {:.2}",
            gl.precision()
        );
        assert!(
            gl.precision() > pc.precision() && gl.precision() > ai.precision(),
            "dynamic ≫ static precision: goleak {:.2}, pathcheck {:.2}, absint {:.2}",
            gl.precision(),
            pc.precision(),
            ai.precision()
        );
        assert!(
            gl.recall() > 0.8,
            "goleak finds most injected leaks: {:.2}",
            gl.recall()
        );
    }

    #[test]
    fn static_tools_produce_reports_with_imperfect_precision() {
        let repo = eval_corpus();
        for row in [
            evaluate_static(&repo, &PathCheck::new()),
            evaluate_static(&repo, &AbsInt::new()),
            evaluate_static(&repo, &ModelCheck::new()),
        ] {
            assert!(row.reports > 0, "{} produced no reports", row.tool);
            assert!(
                row.recall() > 0.15,
                "{} recall {:.2}",
                row.tool,
                row.recall()
            );
            assert!(
                row.precision() > 0.2,
                "{} precision {:.2}",
                row.tool,
                row.precision()
            );
        }
    }

    #[test]
    fn leakprof_finds_leaky_services_with_some_false_positives() {
        let (row, report) = evaluate_leakprof(3, 2);
        assert!(
            row.true_positives >= 2,
            "finds most leaky services\n{}",
            report.render()
        );
        assert!(
            row.reports > row.true_positives,
            "congested service should produce a false positive\n{}",
            report.render()
        );
        assert!(row.precision() >= 0.5);
    }

    #[test]
    fn table3_renders_all_rows() {
        let rows = vec![ToolEval {
            tool: "x".into(),
            reports: 10,
            true_positives: 5,
            truth_found: 5,
            truth_total: 8,
            offline_ms: 12.0,
            deployable: true,
        }];
        let t = render_table3(&rows);
        assert!(t.contains("50.0%"));
        assert!(t.contains("62.5%"));
        assert!(t.contains("Yes"));
    }
}
