//! The CI gate: GOLEAK-instrumented test execution (paper Fig 3, left).
//!
//! Every package's tests are compiled and executed on a fresh
//! [`gosim::Runtime`]; at the end of each test the goleak verifier runs,
//! exactly as the paper's instrumented `TestMain` does. A PR is blocked
//! when any of its tests leaves unsuppressed lingering goroutines.

use goleak::{verify_test_main, LeakReport, Options, SuppressionList, Verdict};
use gosim::{Runtime, SchedConfig};
use serde::{Deserialize, Serialize};

/// The outcome of one test function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestOutcome {
    /// Package name.
    pub package: String,
    /// Test function (unqualified).
    pub test: String,
    /// Goleak verdict.
    pub verdict: Verdict,
}

/// Aggregate result of gating one PR (a set of packages).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrResult {
    /// Per-test outcomes.
    pub outcomes: Vec<TestOutcome>,
}

impl PrResult {
    /// The PR lands only when every test passes the goleak check.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.verdict.passed())
    }

    /// All unsuppressed leaks across the PR.
    pub fn new_leaks(&self) -> impl Iterator<Item = &LeakReport> {
        self.outcomes
            .iter()
            .flat_map(|o| o.verdict.new_leaks.iter())
    }

    /// All leaks (suppressed + new).
    pub fn all_leaks(&self) -> impl Iterator<Item = &LeakReport> {
        self.outcomes.iter().flat_map(|o| o.verdict.all_leaks())
    }
}

/// Test-execution settings for the gate.
#[derive(Debug, Clone)]
pub struct CiConfig {
    /// Scheduler seed base (each test perturbs it).
    pub seed: u64,
    /// Virtual ticks granted to each test before verification (lets
    /// timer-driven code run).
    pub test_ticks: u64,
    /// Scheduler slice budget per test.
    pub slice_budget: u64,
    /// Goleak options.
    pub goleak: Options,
}

impl Default for CiConfig {
    fn default() -> Self {
        CiConfig {
            seed: 1,
            test_ticks: 500,
            slice_budget: 50_000,
            goleak: Options {
                settle_budget: 50_000,
                ..Options::default()
            },
        }
    }
}

/// The goleak-instrumented CI gate.
#[derive(Debug, Clone, Default)]
pub struct CiGate {
    /// Suppression list shared across runs (the paper's legacy-leak
    /// rollout mechanism).
    pub suppressions: SuppressionList,
    /// Execution settings.
    pub config: CiConfig,
}

impl CiGate {
    /// Creates a gate with an empty suppression list.
    pub fn new(config: CiConfig) -> CiGate {
        CiGate {
            suppressions: SuppressionList::new(),
            config,
        }
    }

    /// Runs all tests of one package under goleak.
    pub fn run_package(&self, pkg: &corpus::Package) -> Vec<TestOutcome> {
        let prog = pkg.compile();
        let mut outcomes = Vec::with_capacity(pkg.test_funcs.len());
        for (i, test) in pkg.test_funcs.iter().enumerate() {
            let qualified = format!("{}.{test}", pkg.name);
            let mut rt = Runtime::new(SchedConfig {
                seed: self.config.seed ^ (i as u64).wrapping_mul(0x9E3779B9),
                ..SchedConfig::default()
            });
            prog.spawn_func(&mut rt, &qualified, vec![])
                .unwrap_or_else(|| panic!("test function {qualified} missing"));
            rt.run_until_blocked(self.config.slice_budget);
            rt.advance(self.config.test_ticks, self.config.slice_budget);
            let verdict = verify_test_main(&mut rt, &self.config.goleak, &self.suppressions);
            outcomes.push(TestOutcome {
                package: pkg.name.clone(),
                test: test.clone(),
                verdict,
            });
        }
        outcomes
    }

    /// Gates a PR consisting of several packages.
    pub fn check_pr(&self, packages: &[&corpus::Package]) -> PrResult {
        PrResult {
            outcomes: packages.iter().flat_map(|p| self.run_package(p)).collect(),
        }
    }

    /// The paper's offline trial run: execute everything, collect every
    /// leaking goroutine's function into the suppression list so that
    /// only *new* leaks block future PRs. Returns the number of
    /// pre-existing leaking goroutine functions found.
    pub fn trial_run(&mut self, repo: &corpus::Corpus) -> usize {
        let mut found = SuppressionList::new();
        for pkg in &repo.packages {
            for outcome in self.run_package(pkg) {
                for leak in outcome.verdict.all_leaks() {
                    found.insert(leak.goroutine.clone());
                }
            }
        }
        let n = found.len();
        self.suppressions = found;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig};

    fn small_corpus(leak_rate: f64, seed: u64) -> Corpus {
        Corpus::generate(CorpusConfig {
            packages: 120,
            leak_rate,
            seed,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn clean_corpus_passes_the_gate() {
        let repo = small_corpus(0.0, 21);
        let gate = CiGate::new(CiConfig::default());
        for pkg in repo.packages.iter().take(40) {
            for outcome in gate.run_package(pkg) {
                assert!(
                    outcome.verdict.passed(),
                    "clean package {} failed: {}",
                    pkg.name,
                    outcome.verdict.render()
                );
            }
        }
    }

    #[test]
    fn leaky_packages_are_blocked_and_suppression_unblocks_them() {
        let repo = small_corpus(0.5, 33);
        let mut gate = CiGate::new(CiConfig::default());
        let leaky: Vec<&corpus::Package> = repo.leaky_packages().collect();
        assert!(!leaky.is_empty(), "corpus has leaky packages");
        let pr = gate.check_pr(&leaky[..1.min(leaky.len())]);
        assert!(!pr.passed(), "leaky PR must be blocked");

        // Trial run builds the suppression list; afterwards the same
        // legacy leaks no longer block.
        let n = gate.trial_run(&repo);
        assert!(n > 0);
        let pr2 = gate.check_pr(&leaky[..1.min(leaky.len())]);
        assert!(pr2.passed(), "suppressed legacy leaks must not block");
        assert!(pr2
            .outcomes
            .iter()
            .any(|o| !o.verdict.suppressed.is_empty()));
    }

    #[test]
    fn goleak_reports_match_ground_truth_locations() {
        // Dynamic detection has ~100% precision: every reported blocked
        // goroutine corresponds to an injected leak site (or is a
        // legitimately-detected runaway of the same scenario).
        let repo = small_corpus(0.6, 44);
        let truth = repo.truth_locs();
        let gate = CiGate::new(CiConfig::default());
        let mut checked = 0;
        for pkg in repo.leaky_packages().take(12) {
            for outcome in gate.run_package(pkg) {
                for leak in outcome.verdict.all_leaks() {
                    if let Some(frame) = &leak.blocking_frame {
                        if frame.loc.is_unknown() || frame.loc.file.starts_with('<') {
                            continue;
                        }
                        checked += 1;
                        assert!(
                            truth.contains(&(frame.loc.file.to_string(), frame.loc.line)),
                            "goleak report at {} not in ground truth",
                            frame.loc
                        );
                    }
                }
            }
        }
        assert!(checked > 0, "some channel-blocked leaks were verified");
    }
}
