//! The Fig 5 backtest: weekly inflow of new goroutine leaks before and
//! after the GOLEAK gate deploys.
//!
//! The paper retrofits GOLEAK over 21 weeks of history and observes a
//! median of five new partial deadlocks landing per week (plus a
//! 47-leak migration spike in week 21), collapsing to ~1/week once the
//! gate blocks leaky PRs (stragglers land via suppression-list
//! additions). This module *simulates the development process* with real
//! machinery: each week is a batch of generated PRs whose tests really
//! run under the gate; a leak "lands" only if the gate is inactive, or
//! the author force-lands it by adding a suppression.

use gosim::rng::SplitMix64;
use serde::{Deserialize, Serialize};

use crate::ci::{CiConfig, CiGate};
use corpus::{Corpus, CorpusConfig};

/// Backtest parameters (defaults reproduce Fig 5's shape).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BacktestConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total weeks simulated.
    pub weeks: u32,
    /// Week at which the gate starts blocking PRs (1-based).
    pub deploy_week: u32,
    /// PRs per week.
    pub prs_per_week: usize,
    /// Probability that a PR's package contains a leak-injected scenario.
    pub pr_leak_rate: f64,
    /// Week of the bulk migration (the paper's 47-leak import), if any.
    pub migration_week: Option<u32>,
    /// Scenarios brought in by the migration.
    pub migration_prs: usize,
    /// After deployment: probability a blocked PR force-lands via a
    /// suppression addition (the paper's "critical ongoing PRs").
    pub escape_rate: f64,
}

impl Default for BacktestConfig {
    fn default() -> Self {
        BacktestConfig {
            seed: 0xF165,
            weeks: 25,
            deploy_week: 22,
            prs_per_week: 24,
            pr_leak_rate: 0.22,
            migration_week: Some(21),
            migration_prs: 150,
            escape_rate: 0.06,
        }
    }
}

/// One week's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeekStats {
    /// Week number (1-based).
    pub week: u32,
    /// PRs opened.
    pub prs: usize,
    /// PRs that contained at least one real leak (per the gate's own
    /// dynamic detection).
    pub leaky_prs: usize,
    /// New leaks that *landed* on main this week.
    pub leaks_landed: u64,
    /// PRs blocked by the gate.
    pub blocked: usize,
    /// Suppression-list size at week end.
    pub suppressions: usize,
    /// Whether the gate was active.
    pub gate_active: bool,
}

/// Full backtest output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BacktestResult {
    /// Per-week stats.
    pub weeks: Vec<WeekStats>,
}

impl BacktestResult {
    /// Median leaks landed per week over an inclusive week range.
    pub fn median_landed(&self, from: u32, to: u32) -> u64 {
        let mut xs: Vec<u64> = self
            .weeks
            .iter()
            .filter(|w| w.week >= from && w.week <= to)
            .map(|w| w.leaks_landed)
            .collect();
        xs.sort_unstable();
        if xs.is_empty() {
            0
        } else {
            xs[xs.len() / 2]
        }
    }

    /// Renders an ASCII bar chart in the spirit of Fig 5.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("week | leaks landed (█ = 2)        | gate\n");
        for w in &self.weeks {
            let bars = "█".repeat((w.leaks_landed as usize).div_ceil(2).min(30));
            let _ = writeln!(
                out,
                "{:>4} | {:<28} | {}{}",
                w.week,
                format!("{:>3} {bars}", w.leaks_landed),
                if w.gate_active { "ON " } else { "off" },
                if w.blocked > 0 {
                    format!(" ({} PR blocked)", w.blocked)
                } else {
                    String::new()
                },
            );
        }
        out
    }
}

/// Runs the backtest.
pub fn run(config: &BacktestConfig) -> BacktestResult {
    let mut rng = SplitMix64::new(config.seed);
    let mut gate = CiGate::new(CiConfig::default());
    let mut weeks = Vec::new();
    let mut pr_counter = 0usize;

    for week in 1..=config.weeks {
        let gate_active = week >= config.deploy_week;
        let mut prs = config.prs_per_week;
        if config.migration_week == Some(week) {
            prs += config.migration_prs;
        }
        // Each PR is a one-package corpus with its own seed; the gate
        // really compiles and runs its tests.
        let mut leaky_prs = 0;
        let mut landed = 0u64;
        let mut blocked = 0;
        for _ in 0..prs {
            pr_counter += 1;
            let pr_repo = Corpus::generate(CorpusConfig {
                packages: 1,
                seed: rng.next_u64(),
                leak_rate: config.pr_leak_rate,
                scenarios_per_pkg: (1, 2),
                mix: corpus::KindMix::concurrent_heavy(),
                pkg_offset: pr_counter,
            });
            let pkg = &pr_repo.packages[0];
            let result = gate.check_pr(&[pkg]);
            // Fig 5 counts *partial deadlocks* (unique source locations),
            // not lingering goroutines: a fan-out leak with five workers
            // is one bug.
            let sites: std::collections::BTreeSet<String> = result
                .all_leaks()
                .map(|l| {
                    l.blocking_frame
                        .as_ref()
                        .map(|f| f.loc.to_string())
                        .unwrap_or_else(|| l.goroutine.clone())
                })
                .collect();
            let leaks_in_pr = sites.len() as u64;
            if leaks_in_pr > 0 {
                leaky_prs += 1;
            }
            if !gate_active {
                // Pre-deployment: everything lands.
                landed += leaks_in_pr;
                continue;
            }
            if result.passed() {
                landed += leaks_in_pr; // only already-suppressed leaks
            } else if rng.chance(config.escape_rate) {
                // Author force-lands by suppressing the new leaks.
                for leak in result.new_leaks() {
                    gate.suppressions.insert(leak.goroutine.clone());
                }
                landed += leaks_in_pr;
                blocked += 0;
            } else {
                blocked += 1; // author must fix; nothing lands
            }
        }
        weeks.push(WeekStats {
            week,
            prs,
            leaky_prs,
            leaks_landed: landed,
            blocked,
            suppressions: gate.suppressions.len(),
            gate_active,
        });
    }
    BacktestResult { weeks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_deployment_collapses_leak_inflow() {
        let cfg = BacktestConfig {
            weeks: 10,
            deploy_week: 6,
            prs_per_week: 8,
            migration_week: None,
            seed: 5,
            ..BacktestConfig::default()
        };
        let result = run(&cfg);
        let before = result.median_landed(1, 5);
        let after = result.median_landed(6, 10);
        assert!(
            after < before,
            "gate must reduce weekly leak inflow: before={before} after={after}\n{}",
            result.render()
        );
        assert!(result.weeks[..5].iter().all(|w| !w.gate_active));
        assert!(result.weeks[5..].iter().all(|w| w.gate_active));
    }

    #[test]
    fn migration_week_spikes() {
        let cfg = BacktestConfig {
            weeks: 6,
            deploy_week: 7,
            prs_per_week: 6,
            migration_week: Some(5),
            migration_prs: 40,
            seed: 8,
            ..BacktestConfig::default()
        };
        let result = run(&cfg);
        let normal: u64 = result.weeks[..4]
            .iter()
            .map(|w| w.leaks_landed)
            .max()
            .unwrap();
        let spike = result.weeks[4].leaks_landed;
        assert!(spike > normal, "migration week spikes: {spike} vs {normal}");
    }

    #[test]
    fn blocked_prs_only_after_deployment() {
        let cfg = BacktestConfig {
            weeks: 6,
            deploy_week: 4,
            prs_per_week: 8,
            migration_week: None,
            escape_rate: 0.0,
            seed: 13,
            ..BacktestConfig::default()
        };
        let result = run(&cfg);
        assert!(result.weeks[..3].iter().all(|w| w.blocked == 0));
        let post_blocked: usize = result.weeks[3..].iter().map(|w| w.blocked).sum();
        assert!(
            post_blocked > 0,
            "gate blocks leaky PRs\n{}",
            result.render()
        );
        // With escape_rate 0, nothing new lands post-deployment.
        assert!(result.weeks[3..].iter().all(|w| w.leaks_landed == 0));
    }

    #[test]
    fn render_lists_every_week() {
        let cfg = BacktestConfig {
            weeks: 4,
            deploy_week: 3,
            prs_per_week: 3,
            migration_week: None,
            seed: 2,
            ..BacktestConfig::default()
        };
        let r = run(&cfg).render();
        for w in 1..=4 {
            assert!(
                r.contains(&format!("\n{w:>4} |")) || r.starts_with(&format!("{w:>4} |")),
                "{r}"
            );
        }
    }
}
