//! The networked production-monitor loop: the paper's daily sweep run
//! over real loopback TCP instead of in-process function calls.
//!
//! [`monitor_via_collector`] stands up a demo fleet behind a
//! [`collector::ProfileHub`] HTTP server, scrapes it with the bounded
//! concurrent scraper for a number of cycles (advancing the simulation a
//! day per cycle), streams every scraped profile into
//! [`leakprof::FleetAccumulator`], and cross-checks the streamed result
//! against the offline analyzer over the identical profile set.

use collector::{Daemon, DaemonConfig, DemoFleet, ScrapeConfig};
use gosim::GoroutineProfile;
use serde::{Deserialize, Serialize};

/// Configuration for the networked monitor loop.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Fleet seed.
    pub seed: u64,
    /// Approximate total fleet instances.
    pub instances: usize,
    /// Scrape cycles to run; the fleet advances one day per cycle.
    pub cycles: u32,
    /// LeakProf criterion-1 threshold (scaled for the simulated fleet).
    pub threshold: u64,
    /// Report only the top-N ranked sites.
    pub top_n: usize,
    /// Scraper tuning.
    pub scrape: ScrapeConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            seed: 7,
            instances: 16,
            cycles: 2,
            threshold: 40,
            top_n: 10,
            scrape: ScrapeConfig::default(),
        }
    }
}

/// What the monitor loop observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorOutcome {
    /// The streaming report after the final cycle.
    pub report: leakprof::Report,
    /// The offline report over the identical profiles in the identical
    /// order — must match `report` exactly (the differential test
    /// asserts byte-identical serialization).
    pub offline_report: leakprof::Report,
    /// Scrapes that succeeded, summed over cycles.
    pub scrapes_ok: u64,
    /// Scrapes that failed, summed over cycles.
    pub scrapes_failed: u64,
    /// All-time p99 scrape latency (µs).
    pub p99_us: u64,
    /// Ground-truth leak sites injected into the fleet.
    pub leak_sites: Vec<(String, u32)>,
}

impl MonitorOutcome {
    /// How many ground-truth sites the streamed report found.
    pub fn true_positives(&self) -> usize {
        self.report
            .suspects
            .iter()
            .filter(|s| {
                self.leak_sites
                    .iter()
                    .any(|(f, l)| s.stats.op.loc.file.as_ref() == f && s.stats.op.loc.line == *l)
            })
            .count()
    }
}

/// Runs the monitor loop over loopback TCP and returns the streamed
/// report, its offline cross-check, and scrape-health telemetry.
///
/// # Panics
///
/// Panics if the loopback server cannot bind or the daemon cannot be
/// constructed — both are programming errors in a test/demo context.
pub fn monitor_via_collector(config: MonitorConfig) -> MonitorOutcome {
    let mut demo = DemoFleet::build(config.instances, 1, config.seed);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    let targets = demo.targets(server.addr());
    let lp = demo.leakprof(config.threshold, config.top_n);

    let daemon_config = DaemonConfig {
        scrape: config.scrape.clone(),
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(
        daemon_config,
        demo.leakprof(config.threshold, config.top_n),
        targets,
    )
    .expect("daemon without history cannot fail");

    // Every profile the scraper delivered, in ingestion order, for the
    // offline cross-check.
    let mut delivered: Vec<GoroutineProfile> = Vec::new();
    for cycle in 0..config.cycles.max(1) {
        if cycle > 0 {
            demo.advance_and_republish(1);
        }
        let report = daemon.run_cycle();
        delivered.extend(report.profiles.iter().cloned());
    }

    let report = daemon
        .last_report()
        .cloned()
        .expect("at least one cycle ran");
    let offline_report = lp.analyze(&delivered);

    MonitorOutcome {
        report,
        offline_report,
        scrapes_ok: daemon.health().scrapes_ok,
        scrapes_failed: daemon.health().scrapes_failed,
        p99_us: daemon.health().latency.p99_us(),
        leak_sites: demo.leak_sites.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn networked_monitor_matches_offline_analysis_and_finds_leaks() {
        let outcome = monitor_via_collector(MonitorConfig {
            seed: 3,
            instances: 8,
            cycles: 2,
            threshold: 40,
            ..MonitorConfig::default()
        });
        assert_eq!(outcome.scrapes_failed, 0);
        assert!(outcome.scrapes_ok > 0);
        // The streamed pipeline must agree with the offline analyzer
        // byte-for-byte on the same profiles.
        let streamed = serde_json::to_string(&outcome.report).unwrap();
        let offline = serde_json::to_string(&outcome.offline_report).unwrap();
        assert_eq!(streamed, offline);
        assert!(
            outcome.true_positives() >= 2,
            "networked sweep finds the leaky services\n{}",
            outcome.report.render()
        );
    }
}
