//! Feature census over a corpus — the reproduction of the paper's
//! Tables I and II. All numbers are *measured* by walking the generated
//! ASTs, never hard-coded.

use std::collections::BTreeMap;

use minigo::ast::{walk_stmts, Expr, File, GoCall, RecvSrc, Stmt};
use serde::{Deserialize, Serialize};

use crate::gen::{Corpus, PkgKind};

/// Table II-style feature counts for one slice (source or tests).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureCounts {
    /// Named function declarations.
    pub named_functions: u64,
    /// Anonymous functions (`go func(){}` closures and wrapper closures).
    pub anonymous_functions: u64,
    /// Functions with channel-typed parameters.
    pub funcs_with_chan_params: u64,
    /// Goroutines created with the `go` keyword.
    pub go_keyword_spawns: u64,
    /// Goroutines created via wrapper APIs.
    pub wrapper_spawns: u64,
    /// `make(chan T)` — unbuffered.
    pub chan_unbuffered: u64,
    /// `make(chan T, 1)`.
    pub chan_size_one: u64,
    /// `make(chan T, k)` with constant k > 1.
    pub chan_const_gt1: u64,
    /// `make(chan T, expr)` with dynamic capacity.
    pub chan_dynamic: u64,
    /// Send operations `ch <-`.
    pub sends: u64,
    /// Receive operations `<-ch` (including ranges and select arms).
    pub receives: u64,
    /// `close(ch)` calls.
    pub closes: u64,
    /// Blocking `select` statements.
    pub select_blocking: u64,
    /// Non-blocking `select` statements (with `default`).
    pub select_nonblocking: u64,
    /// Histogram of case counts over blocking selects.
    pub select_case_hist: BTreeMap<usize, u64>,
}

impl FeatureCounts {
    /// Total channel allocations.
    pub fn chan_total(&self) -> u64 {
        self.chan_unbuffered + self.chan_size_one + self.chan_const_gt1 + self.chan_dynamic
    }

    /// Total goroutine creations.
    pub fn spawn_total(&self) -> u64 {
        self.go_keyword_spawns + self.wrapper_spawns
    }

    /// Percentile of blocking-select case counts (e.g. 0.5, 0.9).
    pub fn select_case_percentile(&self, q: f64) -> usize {
        let total: u64 = self.select_case_hist.values().sum();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil() as u64;
        let mut acc = 0;
        for (cases, n) in &self.select_case_hist {
            acc += n;
            if acc >= target {
                return *cases;
            }
        }
        *self.select_case_hist.keys().last().unwrap_or(&0)
    }

    /// The most common blocking-select case count.
    pub fn select_case_mode(&self) -> usize {
        self.select_case_hist
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(c, _)| *c)
            .unwrap_or(0)
    }

    /// Maximum blocking-select case count.
    pub fn select_case_max(&self) -> usize {
        self.select_case_hist.keys().max().copied().unwrap_or(0)
    }

    fn add_file(&mut self, file: &File) {
        for f in &file.funcs {
            self.named_functions += 1;
            if f.params
                .iter()
                .any(|p| matches!(p.ty, minigo::ast::TypeExpr::Chan(_)))
            {
                self.funcs_with_chan_params += 1;
            }
            walk_stmts(&f.body, &mut |s| self.add_stmt(s));
        }
    }

    fn add_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::MakeChan { cap, .. } => match cap {
                None => self.chan_unbuffered += 1,
                Some(Expr::Int(0)) => self.chan_unbuffered += 1,
                Some(Expr::Int(1)) => self.chan_size_one += 1,
                Some(Expr::Int(_)) => self.chan_const_gt1 += 1,
                Some(_) => self.chan_dynamic += 1,
            },
            Stmt::Send { .. } => self.sends += 1,
            Stmt::Recv { .. } => self.receives += 1,
            Stmt::Close { .. } => self.closes += 1,
            Stmt::Go { call, .. } => match call {
                GoCall::Closure { .. } => {
                    self.anonymous_functions += 1;
                    self.go_keyword_spawns += 1;
                }
                GoCall::Named { .. } => self.go_keyword_spawns += 1,
                GoCall::Wrapper { .. } => {
                    self.anonymous_functions += 1;
                    self.wrapper_spawns += 1;
                }
            },
            Stmt::Select { cases, default, .. } => {
                if default.is_some() {
                    self.select_nonblocking += 1;
                } else {
                    self.select_blocking += 1;
                    *self.select_case_hist.entry(cases.len()).or_insert(0) += 1;
                }
                for c in cases {
                    if matches!(
                        c,
                        minigo::ast::SelCase::Recv {
                            src: RecvSrc::Chan(_),
                            ..
                        } | minigo::ast::SelCase::Recv {
                            src: RecvSrc::CtxDone(_),
                            ..
                        } | minigo::ast::SelCase::Recv {
                            src: RecvSrc::TimeAfter(_),
                            ..
                        } | minigo::ast::SelCase::Recv {
                            src: RecvSrc::TimeTick(_),
                            ..
                        }
                    ) {
                        self.receives += 1;
                    } else {
                        self.sends += 1;
                    }
                }
            }
            Stmt::For {
                kind: minigo::ast::ForKind::Range { .. },
                ..
            } => {
                self.receives += 1;
            }
            _ => {}
        }
    }
}

/// The Table I + Table II census of a corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Census {
    /// Package counts by kind.
    pub packages_mp: u64,
    /// Shared-memory packages.
    pub packages_sm: u64,
    /// Packages using both paradigms.
    pub packages_both: u64,
    /// All packages.
    pub packages_total: u64,
    /// Source/test file counts.
    pub files_source: u64,
    /// Test files.
    pub files_test: u64,
    /// Effective (non-blank) lines, source.
    pub eloc_source: u64,
    /// Effective lines, tests.
    pub eloc_test: u64,
    /// Feature counts in source files.
    pub source: FeatureCounts,
    /// Feature counts in test files.
    pub tests: FeatureCounts,
}

/// Computes the census by parsing every file of the corpus.
pub fn census(corpus: &Corpus) -> Census {
    let mut c = Census {
        packages_total: corpus.packages.len() as u64,
        ..Census::default()
    };
    for p in &corpus.packages {
        match p.kind {
            PkgKind::MessagePassing => c.packages_mp += 1,
            PkgKind::SharedMemory => c.packages_sm += 1,
            PkgKind::Both => c.packages_both += 1,
            PkgKind::Plain => {}
        }
        c.files_source += p.files.len() as u64;
        c.files_test += p.tests.len() as u64;
        for f in &p.files {
            let parsed = minigo::parse_file(&f.text, &f.path).expect("generated file parses");
            c.source.add_file(&parsed);
            c.eloc_source += f.text.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        }
        for f in &p.tests {
            let parsed = minigo::parse_file(&f.text, &f.path).expect("generated file parses");
            c.tests.add_file(&parsed);
            c.eloc_test += f.text.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        }
    }
    c
}

impl Census {
    /// Renders Table I (package/file/ELoC distribution).
    pub fn render_table1(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Concurrency paradigm  | Packages | Files (src/test) | ELoC (src/test)"
        );
        let _ = writeln!(
            out,
            "----------------------+----------+------------------+----------------"
        );
        let _ = writeln!(
            out,
            "Message passing (MP)  | {:>8} |                  |",
            self.packages_mp
        );
        let _ = writeln!(
            out,
            "Shared memory (SM)    | {:>8} |                  |",
            self.packages_sm
        );
        let _ = writeln!(
            out,
            "MP ∩ SM               | {:>8} |                  |",
            self.packages_both
        );
        let _ = writeln!(
            out,
            "Entire monorepo       | {:>8} | {:>7} / {:<7} | {} / {}",
            self.packages_total,
            self.files_source,
            self.files_test,
            self.eloc_source,
            self.eloc_test
        );
        out
    }

    /// Renders Table II (feature prominence).
    pub fn render_table2(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Feature                              | Source  | Tests"
        );
        let _ = writeln!(
            out,
            "-------------------------------------+---------+-------"
        );
        let row = |out: &mut String, label: &str, s: u64, t: u64| {
            let _ = writeln!(out, "{label:<37}| {s:>7} | {t:>6}");
        };
        row(
            &mut out,
            "Named functions",
            self.source.named_functions,
            self.tests.named_functions,
        );
        row(
            &mut out,
            "Anonymous functions",
            self.source.anonymous_functions,
            self.tests.anonymous_functions,
        );
        row(
            &mut out,
            "Functions with channel parameter(s)",
            self.source.funcs_with_chan_params,
            self.tests.funcs_with_chan_params,
        );
        row(
            &mut out,
            "Goroutines via go keyword",
            self.source.go_keyword_spawns,
            self.tests.go_keyword_spawns,
        );
        row(
            &mut out,
            "Goroutines via wrapper function",
            self.source.wrapper_spawns,
            self.tests.wrapper_spawns,
        );
        row(
            &mut out,
            "Chan alloc: unbuffered",
            self.source.chan_unbuffered,
            self.tests.chan_unbuffered,
        );
        row(
            &mut out,
            "Chan alloc: size-1 buffer",
            self.source.chan_size_one,
            self.tests.chan_size_one,
        );
        row(
            &mut out,
            "Chan alloc: constant (>1) buffer",
            self.source.chan_const_gt1,
            self.tests.chan_const_gt1,
        );
        row(
            &mut out,
            "Chan alloc: dynamically sized",
            self.source.chan_dynamic,
            self.tests.chan_dynamic,
        );
        row(&mut out, "Sends: c<-", self.source.sends, self.tests.sends);
        row(
            &mut out,
            "Receives: <-c",
            self.source.receives,
            self.tests.receives,
        );
        row(&mut out, "close", self.source.closes, self.tests.closes);
        row(
            &mut out,
            "Blocking selects",
            self.source.select_blocking,
            self.tests.select_blocking,
        );
        row(
            &mut out,
            "Non-blocking selects",
            self.source.select_nonblocking,
            self.tests.select_nonblocking,
        );
        let _ = writeln!(
            out,
            "Blocking select cases: P50={} P90={} max={} mode={}",
            self.source.select_case_percentile(0.5),
            self.source.select_case_percentile(0.9),
            self.source.select_case_max(),
            self.source.select_case_mode(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CorpusConfig;

    fn census_of(packages: usize, seed: u64) -> Census {
        census(&Corpus::generate(CorpusConfig {
            packages,
            seed,
            ..CorpusConfig::default()
        }))
    }

    #[test]
    fn census_counts_are_consistent() {
        let c = census_of(150, 3);
        assert_eq!(
            c.source.chan_total(),
            c.source.chan_unbuffered
                + c.source.chan_size_one
                + c.source.chan_const_gt1
                + c.source.chan_dynamic
        );
        assert!(c.source.named_functions > 0);
        assert!(c.files_source > 0 && c.files_test > 0);
        assert!(c.eloc_source > c.files_source, "files have >1 line each");
    }

    #[test]
    fn unbuffered_channels_dominate_like_table2() {
        let c = census_of(600, 11);
        assert!(
            c.source.chan_unbuffered > c.source.chan_size_one,
            "unbuffered ({}) should dominate size-1 ({})",
            c.source.chan_unbuffered,
            c.source.chan_size_one
        );
    }

    #[test]
    fn select_case_stats_match_table2_shape() {
        let c = census_of(600, 11);
        // Paper Table II: P50 = 2, mode = 2.
        assert_eq!(c.source.select_case_percentile(0.5), 2);
        assert_eq!(c.source.select_case_mode(), 2);
    }

    #[test]
    fn tables_render_without_panicking() {
        let c = census_of(80, 2);
        let t1 = c.render_table1();
        let t2 = c.render_table2();
        assert!(t1.contains("Message passing"));
        assert!(t2.contains("go keyword"));
    }

    #[test]
    fn percentile_edge_cases() {
        let f = FeatureCounts::default();
        assert_eq!(f.select_case_percentile(0.5), 0);
        assert_eq!(f.select_case_mode(), 0);
        assert_eq!(f.select_case_max(), 0);
    }
}
