//! # corpus — a synthetic Go monorepo with ground-truth goroutine leaks
//!
//! The paper evaluates its tools on Uber's 75 MLoC monorepo. This crate
//! generates a deterministic stand-in: mini-Go packages whose concurrency
//! feature mix is calibrated to the paper's Table I/II distributions,
//! with unit tests for every scenario, and — crucially — *ground-truth
//! labels* for every injected leak (pattern class, blocking location,
//! expected lingering goroutine count, wrapper visibility).
//!
//! Ground truth is what turns the Table III tool comparison into a real
//! measurement: precision/recall are computed by running each detector
//! and matching its reports against the labels, never assumed.
//!
//! ```
//! use corpus::{Corpus, CorpusConfig};
//!
//! let c = Corpus::generate(CorpusConfig { packages: 60, ..CorpusConfig::default() });
//! assert!(!c.truth.is_empty(), "leaks were injected");
//! // every generated package compiles and carries tests
//! let pkg = c.leaky_packages().next().expect("some package leaks");
//! let prog = pkg.compile();
//! assert!(prog.len() > 0);
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod patterns;
pub mod races;
pub mod stats;

pub use gen::{Corpus, CorpusConfig, KindMix, Package, PkgKind, SourceFile};
pub use patterns::{BenignPattern, LeakPattern, LeakSite};
pub use races::{RaceControl, RacePattern, RaceSite, RenderedRace};
pub use stats::{census, Census, FeatureCounts};
