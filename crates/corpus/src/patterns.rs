//! Leak-pattern taxonomy and template registry.
//!
//! Each template renders a complete mini-Go source file (one scenario
//! function plus helpers) together with a unit-test file exercising it
//! and, for leaky templates, ground-truth labels: the blocking source
//! locations and how many goroutines are expected to leak when the test
//! runs. Templates are text with *fixed line structure*, so ground-truth
//! line numbers are constants by construction.
//!
//! The taxonomy mirrors the paper's Sections VI-A/B/C and VII-A.

use gosim::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// The leak-pattern taxonomy from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LeakPattern {
    /// §VII-A1 / Listing 7: parent returns before receiving.
    PrematureReturn,
    /// §VII-A2 / Listing 8: context timeout abandons the sender.
    Timeout,
    /// §VII-A3 / Listing 9: N senders, one receiver.
    NCast,
    /// §VI-B1 / Listing 5: missing return after error-path send.
    DoubleSend,
    /// §VI-A1 / Listing 3: `for range ch` with no `close`.
    UnclosedRange,
    /// §VI-A2 / Listing 4: infinite timer receive loop (runaway).
    TimerLoop,
    /// §VI-A "other": producer errors out and never sends.
    MissingSender,
    /// §VI-C1 / Listing 6: Start without Stop (done channel).
    ContractViolation,
    /// §VI-C1 variant: contract via context cancellation never invoked.
    CtxContractViolation,
    /// §VI-C: blocking select outside any loop, arms never ready.
    SelectOutsideLoop,
    /// §VI-C: `select{}` with no cases.
    EmptySelect,
    /// Non-channel runaway: blocked on (simulated) I/O forever.
    IoBlock,
    /// Non-channel runaway: stuck in a syscall.
    SyscallHang,
    /// Non-channel runaway: very long timer sleep.
    Sleeper,
    /// Cross-file: handshake completes, then the caller abandons the
    /// result channel on an early return; the helper's result send (in a
    /// separate file) blocks forever. Guarded so every intraprocedural
    /// baseline misses the true site.
    CrossFileHandoff,
    /// Cross-file: a helper in a separate file fans out gated workers
    /// that all send on the caller's channel; the caller reads once.
    CrossFileFanout,
    /// Cross-file: a helper in a separate file drains the caller's
    /// channel with `for range` after a handshake; the caller never
    /// closes it.
    CrossFileMissingClose,
    /// Non-channel runaway: waiting on a WaitGroup that never drains.
    MissingWgDone,
    /// Non-channel runaway: mutex locked and never unlocked.
    ForgottenUnlock,
    /// Non-channel runaway: `sync.Cond.Wait` never signalled.
    CondForever,
    /// Non-channel runaway: busy spin loop.
    BusyLoop,
}

impl LeakPattern {
    /// The blocking category the leak manifests as at runtime
    /// (label text matches `goleak::BlockKind::label`).
    pub fn expected_block(&self) -> &'static str {
        match self {
            LeakPattern::PrematureReturn
            | LeakPattern::Timeout
            | LeakPattern::NCast
            | LeakPattern::DoubleSend
            | LeakPattern::CrossFileHandoff
            | LeakPattern::CrossFileFanout => "chan send (non-nil chan)",
            LeakPattern::UnclosedRange
            | LeakPattern::TimerLoop
            | LeakPattern::MissingSender
            | LeakPattern::CrossFileMissingClose => "chan receive (non-nil chan)",
            LeakPattern::ContractViolation
            | LeakPattern::CtxContractViolation
            | LeakPattern::SelectOutsideLoop => "select (>0 cases)",
            LeakPattern::EmptySelect => "select (0 cases)",
            LeakPattern::IoBlock => "IO wait",
            LeakPattern::SyscallHang => "System call",
            LeakPattern::Sleeper => "Sleep",
            LeakPattern::MissingWgDone | LeakPattern::ForgottenUnlock => "Semaphore Acquire",
            LeakPattern::CondForever => "Condition Wait",
            LeakPattern::BusyLoop => "Running/Runnable",
        }
    }

    /// True for message-passing (channel) leaks.
    pub fn is_channel_leak(&self) -> bool {
        matches!(
            self,
            LeakPattern::PrematureReturn
                | LeakPattern::Timeout
                | LeakPattern::NCast
                | LeakPattern::DoubleSend
                | LeakPattern::UnclosedRange
                | LeakPattern::TimerLoop
                | LeakPattern::MissingSender
                | LeakPattern::ContractViolation
                | LeakPattern::CtxContractViolation
                | LeakPattern::SelectOutsideLoop
                | LeakPattern::EmptySelect
                | LeakPattern::CrossFileHandoff
                | LeakPattern::CrossFileFanout
                | LeakPattern::CrossFileMissingClose
        )
    }

    /// True for patterns whose blocking operation lives in a helper file
    /// distinct from the scenario file — the regime only interprocedural
    /// analysis can localize.
    pub fn is_cross_file(&self) -> bool {
        matches!(
            self,
            LeakPattern::CrossFileHandoff
                | LeakPattern::CrossFileFanout
                | LeakPattern::CrossFileMissingClose
        )
    }
}

/// One ground-truth leak site in a rendered file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeakSite {
    /// Pattern class.
    pub pattern: LeakPattern,
    /// File path of the blocking operation.
    pub file: String,
    /// 1-based line of the blocking operation.
    pub line: u32,
    /// Number of goroutines expected to linger when the test runs.
    pub goroutines: u64,
    /// True when the leaking goroutine is spawned through a wrapper API
    /// (invisible to naive static analysis).
    pub via_wrapper: bool,
}

/// A rendered scenario: one source file, one test file, ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rendered {
    /// Source file path.
    pub path: String,
    /// Source text.
    pub source: String,
    /// Test file path.
    pub test_path: String,
    /// Test text (a `TestXxx` function exercising the scenario).
    pub test_source: String,
    /// Name of the test function (unqualified).
    pub test_func: String,
    /// Additional non-test source files (path, text) the scenario needs —
    /// cross-file templates put their callee here.
    pub helpers: Vec<(String, String)>,
    /// Ground-truth leak sites (empty for benign scenarios).
    pub truth: Vec<LeakSite>,
}

/// Renders one scenario of the given pattern into package `pkg`, using
/// `idx` to uniquify names and `rng` for parameter jitter.
pub fn render_leaky(pattern: LeakPattern, pkg: &str, idx: usize, rng: &mut SplitMix64) -> Rendered {
    let fname = format!("{pkg}/leak_{idx}.go");
    let tname = format!("{pkg}/leak_{idx}_test.go");
    let f = format!("Scenario{idx}");
    let test_func = format!("TestScenario{idx}");
    let workers = rng.range_i64(2, 5);
    let items = rng.range_i64(3, 8);
    let via_wrapper = matches!(pattern, LeakPattern::PrematureReturn) && rng.chance(0.4);

    let hname = format!("{pkg}/leak_{idx}_helper.go");
    let mut helpers: Vec<(String, String)> = Vec::new();
    // Cross-file templates label their truth sites in the helper file.
    let mut truth_file = fname.clone();

    let (source, leak_lines, goroutines): (String, Vec<u32>, u64) = match pattern {
        LeakPattern::PrematureReturn => {
            if via_wrapper {
                (
                    format!(
                        "package {pkg}\n\nfunc {f}(fail bool) {{\n\tch := make(chan int)\n\tasyncutil.Go(func() {{\n\t\tsim.Work(2)\n\t\tch <- 1\n\t}})\n\tif fail {{\n\t\treturn\n\t}}\n\t<-ch\n}}\n"
                    ),
                    vec![7],
                    1,
                )
            } else {
                (
                    format!(
                        "package {pkg}\n\nfunc {f}(fail bool) {{\n\tch := make(chan int)\n\tgo func() {{\n\t\tsim.Work(2)\n\t\tch <- 1\n\t}}()\n\tif fail {{\n\t\treturn\n\t}}\n\t<-ch\n}}\n"
                    ),
                    vec![7],
                    1,
                )
            }
        }
        LeakPattern::Timeout => (
            format!(
                "package {pkg}\n\nfunc {f}(parent context.Context) {{\n\tctx, cancel := context.WithTimeout(parent, 5)\n\tdefer cancel()\n\tch := make(chan int)\n\tgo func() {{\n\t\ttime.Sleep(50)\n\t\tch <- 1\n\t}}()\n\tselect {{\n\tcase item := <-ch:\n\t\t_ = item\n\tcase <-ctx.Done():\n\t\treturn\n\t}}\n}}\n"
            ),
            vec![9],
            1,
        ),
        LeakPattern::NCast => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\tch := make(chan int)\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\tch <- i\n\t\t}}()\n\t}}\n\tfirst := <-ch\n\t_ = first\n}}\n"
            ),
            vec![7],
            (items - 1) as u64,
        ),
        LeakPattern::DoubleSend => (
            format!(
                "package {pkg}\n\nfunc {f}(fail bool) {{\n\tch := make(chan int)\n\tgo sender{idx}(ch, fail)\n\titem := <-ch\n\t_ = item\n}}\n\nfunc sender{idx}(ch chan int, fail bool) {{\n\tif fail {{\n\t\tch <- 0\n\t}}\n\tch <- 1\n}}\n"
            ),
            vec![14],
            1,
        ),
        LeakPattern::UnclosedRange => (
            format!(
                "package {pkg}\n\nfunc {f}(workers int, items int) {{\n\tch := make(chan int)\n\tfor w := 0; w < workers; w++ {{\n\t\tgo func() {{\n\t\t\tfor item := range ch {{\n\t\t\t\tsim.Work(item)\n\t\t\t}}\n\t\t}}()\n\t}}\n\tfor i := 0; i < items; i++ {{\n\t\tch <- i\n\t}}\n}}\n"
            ),
            vec![7],
            workers as u64,
        ),
        LeakPattern::TimerLoop => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tgo func() {{\n\t\tfor {{\n\t\t\t<-time.After(10)\n\t\t\tsim.Work(1)\n\t\t}}\n\t}}()\n}}\n"
            ),
            vec![6],
            1,
        ),
        LeakPattern::MissingSender => (
            format!(
                "package {pkg}\n\nfunc {f}(fail bool) {{\n\tch := make(chan int)\n\tgo func() {{\n\t\tif fail {{\n\t\t\treturn\n\t\t}}\n\t\tch <- 1\n\t}}()\n\t<-ch\n}}\n"
            ),
            vec![11],
            1,
        ),
        LeakPattern::ContractViolation => (
            format!(
                "package {pkg}\n\nfunc {f}(callStop bool) {{\n\tch := make(chan int)\n\tdone := make(chan int)\n\tfor w := 0; w < {workers}; w++ {{\n\t\tgo func() {{\n\t\t\tfor {{\n\t\t\t\tselect {{\n\t\t\t\tcase <-ch:\n\t\t\t\t\tsim.Work(1)\n\t\t\t\tcase <-done:\n\t\t\t\t\treturn\n\t\t\t\t}}\n\t\t\t}}\n\t\t}}()\n\t}}\n\tif callStop {{\n\t\tclose(done)\n\t}}\n}}\n"
            ),
            vec![9],
            workers as u64,
        ),
        LeakPattern::CtxContractViolation => (
            format!(
                "package {pkg}\n\nfunc {f}(parent context.Context) {{\n\tctx, cancel := context.WithCancel(parent)\n\t_ = cancel\n\tch := make(chan int)\n\tfor w := 0; w < {workers}; w++ {{\n\t\tgo func() {{\n\t\t\tfor {{\n\t\t\t\tselect {{\n\t\t\t\tcase <-ch:\n\t\t\t\t\tsim.Work(1)\n\t\t\t\tcase <-ctx.Done():\n\t\t\t\t\treturn\n\t\t\t\t}}\n\t\t\t}}\n\t\t}}()\n\t}}\n}}\n"
            ),
            vec![10],
            workers as u64,
        ),
        LeakPattern::SelectOutsideLoop => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\ta := make(chan int)\n\tb := make(chan int)\n\tfor w := 0; w < {workers}; w++ {{\n\t\tgo func() {{\n\t\t\tselect {{\n\t\t\tcase <-a:\n\t\t\t\tsim.Work(1)\n\t\t\tcase <-b:\n\t\t\t\tsim.Work(2)\n\t\t\t}}\n\t\t}}()\n\t}}\n}}\n"
            ),
            vec![8],
            workers as u64,
        ),
        LeakPattern::EmptySelect => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tgo func() {{\n\t\tselect {{\n\t\t}}\n\t}}()\n}}\n"
            ),
            vec![5],
            1,
        ),
        LeakPattern::IoBlock => (
            format!("package {pkg}\n\nfunc {f}() {{\n\tgo func() {{\n\t\tsim.Block()\n\t}}()\n}}\n"),
            vec![5],
            1,
        ),
        LeakPattern::SyscallHang => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tgo func() {{\n\t\tsim.Syscall()\n\t}}()\n}}\n"
            ),
            vec![5],
            1,
        ),
        LeakPattern::Sleeper => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tgo func() {{\n\t\ttime.Sleep(1000000)\n\t}}()\n}}\n"
            ),
            vec![5],
            1,
        ),
        LeakPattern::CrossFileHandoff => {
            helpers.push((
                hname.clone(),
                format!(
                    "package {pkg}\n\nfunc relay{idx}(ready chan int, out chan int) {{\n\t<-ready\n\tsim.Work(1)\n\tout <- 1\n}}\n"
                ),
            ));
            truth_file = hname.clone();
            (
                format!(
                    "package {pkg}\n\nfunc {f}(fail bool) {{\n\tready := make(chan int)\n\tout := make(chan int)\n\tgo relay{idx}(ready, out)\n\tready <- 1\n\tif fail {{\n\t\treturn\n\t}}\n\tres := <-out\n\t_ = res\n}}\n"
                ),
                vec![6],
                1,
            )
        }
        LeakPattern::CrossFileFanout => {
            helpers.push((
                hname.clone(),
                format!(
                    "package {pkg}\n\nfunc fan{idx}(gate chan int, out chan int, n int) {{\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\t<-gate\n\t\t\tout <- i\n\t\t}}()\n\t}}\n}}\n"
                ),
            ));
            truth_file = hname.clone();
            (
                format!(
                    "package {pkg}\n\nfunc {f}(n int) {{\n\tgate := make(chan int, n)\n\tout := make(chan int)\n\tgo fan{idx}(gate, out, n)\n\tfor i := 0; i < n; i++ {{\n\t\tgate <- i\n\t}}\n\tfirst := <-out\n\t_ = first\n}}\n"
                ),
                vec![7],
                (items - 1) as u64,
            )
        }
        LeakPattern::CrossFileMissingClose => {
            helpers.push((
                hname.clone(),
                format!(
                    "package {pkg}\n\nfunc pump{idx}(ready chan int, in chan int) {{\n\t<-ready\n\tfor item := range in {{\n\t\tsim.Work(item)\n\t}}\n}}\n"
                ),
            ));
            truth_file = hname.clone();
            (
                format!(
                    "package {pkg}\n\nfunc {f}(items int) {{\n\tready := make(chan int, 1)\n\tch := make(chan int)\n\tgo pump{idx}(ready, ch)\n\tready <- 1\n\tfor i := 0; i < items; i++ {{\n\t\tch <- i\n\t}}\n}}\n"
                ),
                vec![5],
                1,
            )
        }
        LeakPattern::MissingWgDone => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tvar wg sync.WaitGroup\n\twg.Add(2)\n\tgo func() {{\n\t\tdefer wg.Done()\n\t\tsim.Work(1)\n\t}}()\n\tgo func() {{\n\t\twg.Wait()\n\t}}()\n}}\n"
            ),
            vec![11],
            1,
        ),
        LeakPattern::ForgottenUnlock => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tgo func() {{\n\t\tmu.Lock()\n\t\tmu.Unlock()\n\t}}()\n}}\n"
            ),
            vec![7],
            1,
        ),
        LeakPattern::CondForever => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tvar cv sync.Cond\n\tgo func() {{\n\t\tcv.Wait()\n\t}}()\n}}\n"
            ),
            vec![6],
            1,
        ),
        LeakPattern::BusyLoop => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\tgo func() {{\n\t\tfor n > 0 {{\n\t\t\tsim.Work(1)\n\t\t}}\n\t}}()\n}}\n"
            ),
            vec![6],
            1,
        ),
    };

    // Test file exercising the failure path of the scenario.
    let call = match pattern {
        LeakPattern::PrematureReturn
        | LeakPattern::DoubleSend
        | LeakPattern::MissingSender
        | LeakPattern::CrossFileHandoff => {
            format!("{f}(true)")
        }
        LeakPattern::ContractViolation => format!("{f}(false)"),
        LeakPattern::Timeout | LeakPattern::CtxContractViolation => format!("{f}(nil)"),
        LeakPattern::NCast | LeakPattern::CrossFileFanout | LeakPattern::CrossFileMissingClose => {
            format!("{f}({items})")
        }
        LeakPattern::UnclosedRange => format!("{f}({workers}, {items})"),
        LeakPattern::BusyLoop => format!("{f}(1)"),
        _ => format!("{f}()"),
    };
    let test_source = format!("package {pkg}\n\nfunc {test_func}() {{\n\t{call}\n}}\n");

    Rendered {
        path: fname,
        source,
        test_path: tname,
        test_source,
        test_func,
        helpers,
        truth: leak_lines
            .into_iter()
            .map(|line| LeakSite {
                pattern,
                file: truth_file.clone(),
                line,
                goroutines,
                via_wrapper,
            })
            .collect(),
    }
}

/// Benign scenario shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenignPattern {
    /// Producer + range consumers with proper close.
    ClosedPipeline,
    /// Buffered request/response pair.
    BufferedHandoff,
    /// WaitGroup fan-out/fan-in.
    WgFan,
    /// Mutex-protected counter.
    MutexCounter,
    /// Non-blocking select with default.
    SelectDefault,
    /// Listing 8 with the capacity-one fix.
    TimeoutFixed,
    /// Listing 6 worker with Stop called.
    WorkerWithStop,
    /// Heartbeat loop with context cancellation (transient select).
    HeartbeatCtx,
    /// Dynamic-capacity gather (the NCast fix).
    GatherCap,
    /// Cross-file drain helper with the producer closing the channel
    /// (the benign twin of [`LeakPattern::CrossFileMissingClose`]).
    CrossFileDrainClosed,
    /// Cross-file handshake/result pipeline where the caller always
    /// collects the result (the benign twin of
    /// [`LeakPattern::CrossFileHandoff`]).
    CrossFilePipeline,
    /// Pure computation, no concurrency.
    PlainCompute,
    /// Fan-out through a wrapper spawn API (clean).
    WrapperFan,
    /// Worker listening on three channels, shut down via close (clean).
    ThreeWaySelect,
}

impl BenignPattern {
    /// All benign shapes.
    pub fn all() -> [BenignPattern; 14] {
        [
            BenignPattern::ClosedPipeline,
            BenignPattern::BufferedHandoff,
            BenignPattern::WgFan,
            BenignPattern::MutexCounter,
            BenignPattern::SelectDefault,
            BenignPattern::TimeoutFixed,
            BenignPattern::WorkerWithStop,
            BenignPattern::HeartbeatCtx,
            BenignPattern::GatherCap,
            BenignPattern::CrossFileDrainClosed,
            BenignPattern::CrossFilePipeline,
            BenignPattern::WrapperFan,
            BenignPattern::ThreeWaySelect,
            BenignPattern::PlainCompute,
        ]
    }
}

/// Renders a benign scenario.
pub fn render_benign(
    pattern: BenignPattern,
    pkg: &str,
    idx: usize,
    rng: &mut SplitMix64,
) -> Rendered {
    let fname = format!("{pkg}/ok_{idx}.go");
    let tname = format!("{pkg}/ok_{idx}_test.go");
    let f = format!("Ok{idx}");
    let test_func = format!("TestOk{idx}");
    let n = rng.range_i64(2, 6);
    let hname = format!("{pkg}/ok_{idx}_helper.go");
    let mut helpers: Vec<(String, String)> = Vec::new();

    let (source, call) = match pattern {
        BenignPattern::ClosedPipeline => (
            format!(
                "package {pkg}\n\nfunc {f}(workers int, items int) {{\n\tch := make(chan int)\n\tvar wg sync.WaitGroup\n\twg.Add(workers)\n\tfor w := 0; w < workers; w++ {{\n\t\tgo func() {{\n\t\t\tdefer wg.Done()\n\t\t\tfor item := range ch {{\n\t\t\t\tsim.Work(item)\n\t\t\t}}\n\t\t}}()\n\t}}\n\tfor i := 0; i < items; i++ {{\n\t\tch <- i\n\t}}\n\tclose(ch)\n\twg.Wait()\n}}\n"
            ),
            format!("{f}({n}, {})", n + 2),
        ),
        BenignPattern::BufferedHandoff => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tch := make(chan int, 1)\n\tgo func() {{\n\t\tch <- 42\n\t}}()\n\tv := <-ch\n\tsim.Work(v)\n}}\n"
            ),
            format!("{f}()"),
        ),
        BenignPattern::WgFan => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\tvar wg sync.WaitGroup\n\twg.Add(n)\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\tdefer wg.Done()\n\t\t\tsim.Work(i)\n\t\t}}()\n\t}}\n\twg.Wait()\n}}\n"
            ),
            format!("{f}({n})"),
        ),
        BenignPattern::MutexCounter => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\tvar mu sync.Mutex\n\tvar wg sync.WaitGroup\n\twg.Add(n)\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\tdefer wg.Done()\n\t\t\tmu.Lock()\n\t\t\tsim.Work(1)\n\t\t\tmu.Unlock()\n\t\t}}()\n\t}}\n\twg.Wait()\n}}\n"
            ),
            format!("{f}({n})"),
        ),
        BenignPattern::SelectDefault => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tch := make(chan int)\n\tselect {{\n\tcase v := <-ch:\n\t\tsim.Work(v)\n\tdefault:\n\t\tsim.Work(1)\n\t}}\n}}\n"
            ),
            format!("{f}()"),
        ),
        BenignPattern::TimeoutFixed => (
            format!(
                "package {pkg}\n\nfunc {f}(parent context.Context) {{\n\tctx, cancel := context.WithTimeout(parent, 5)\n\tdefer cancel()\n\tch := make(chan int, 1)\n\tgo func() {{\n\t\ttime.Sleep(50)\n\t\tch <- 1\n\t}}()\n\tselect {{\n\tcase item := <-ch:\n\t\t_ = item\n\tcase <-ctx.Done():\n\t\treturn\n\t}}\n}}\n"
            ),
            format!("{f}(nil)"),
        ),
        BenignPattern::WorkerWithStop => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tch := make(chan int)\n\tdone := make(chan int)\n\tgo func() {{\n\t\tfor {{\n\t\t\tselect {{\n\t\t\tcase <-ch:\n\t\t\t\tsim.Work(1)\n\t\t\tcase <-done:\n\t\t\t\treturn\n\t\t\t}}\n\t\t}}\n\t}}()\n\tclose(done)\n}}\n"
            ),
            format!("{f}()"),
        ),
        BenignPattern::HeartbeatCtx => (
            format!(
                "package {pkg}\n\nfunc {f}(parent context.Context) {{\n\tctx, cancel := context.WithTimeout(parent, 40)\n\tdefer cancel()\n\tgo func() {{\n\t\tfor {{\n\t\t\tselect {{\n\t\t\tcase <-time.Tick(10):\n\t\t\t\tsim.Work(1)\n\t\t\tcase <-ctx.Done():\n\t\t\t\treturn\n\t\t\t}}\n\t\t}}\n\t}}()\n}}\n"
            ),
            format!("{f}(nil)"),
        ),
        BenignPattern::GatherCap => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\tch := make(chan int, n)\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\tch <- i\n\t\t}}()\n\t}}\n\tfirst := <-ch\n\tsim.Work(first)\n}}\n"
            ),
            format!("{f}({n})"),
        ),
        BenignPattern::CrossFileDrainClosed => {
            helpers.push((
                hname.clone(),
                format!(
                    "package {pkg}\n\nfunc drain{idx}(in chan int) {{\n\tfor item := range in {{\n\t\tsim.Work(item)\n\t}}\n}}\n"
                ),
            ));
            (
                format!(
                    "package {pkg}\n\nfunc {f}(items int) {{\n\tch := make(chan int)\n\tgo drain{idx}(ch)\n\tfor i := 0; i < items; i++ {{\n\t\tch <- i\n\t}}\n\tclose(ch)\n}}\n"
                ),
                format!("{f}({n})"),
            )
        }
        BenignPattern::CrossFilePipeline => {
            helpers.push((
                hname.clone(),
                format!(
                    "package {pkg}\n\nfunc echo{idx}(ready chan int, out chan int) {{\n\t<-ready\n\tout <- 1\n}}\n"
                ),
            ));
            (
                format!(
                    "package {pkg}\n\nfunc {f}() {{\n\tready := make(chan int)\n\tout := make(chan int)\n\tgo echo{idx}(ready, out)\n\tready <- 1\n\tres := <-out\n\tsim.Work(res)\n}}\n"
                ),
                format!("{f}()"),
            )
        }
        BenignPattern::PlainCompute => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) int {{\n\ttotal := 0\n\tfor i := 0; i < n; i++ {{\n\t\ttotal = total + i\n\t\tsim.Work(1)\n\t}}\n\treturn total\n}}\n"
            ),
            format!("{f}({n})"),
        ),
        BenignPattern::WrapperFan => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\tvar wg sync.WaitGroup\n\twg.Add(n)\n\tfor i := 0; i < n; i++ {{\n\t\tasyncutil.Go(func() {{\n\t\t\tdefer wg.Done()\n\t\t\tsim.Work(i)\n\t\t}})\n\t}}\n\twg.Wait()\n}}\n"
            ),
            format!("{f}({n})"),
        ),
        BenignPattern::ThreeWaySelect => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\ta := make(chan int)\n\tb := make(chan int)\n\tdone := make(chan int)\n\tgo func() {{\n\t\tfor {{\n\t\t\tselect {{\n\t\t\tcase v := <-a:\n\t\t\t\tsim.Work(v)\n\t\t\tcase w := <-b:\n\t\t\t\tsim.Work(w)\n\t\t\tcase <-done:\n\t\t\t\treturn\n\t\t\t}}\n\t\t}}\n\t}}()\n\ta <- 1\n\tb <- 2\n\tclose(done)\n}}\n"
            ),
            format!("{f}()"),
        ),
    };

    let test_source = match pattern {
        BenignPattern::PlainCompute => {
            format!("package {pkg}\n\nfunc {test_func}() {{\n\tr := {call}\n\t_ = r\n}}\n")
        }
        _ => format!("package {pkg}\n\nfunc {test_func}() {{\n\t{call}\n}}\n"),
    };

    Rendered {
        path: fname,
        source,
        test_path: tname,
        test_source,
        test_func,
        helpers,
        truth: Vec::new(),
    }
}

/// The weighted leak mix calibrated to the paper's observed taxonomy:
/// select ≈ 45% of unique leaks (86% of those are contract violations),
/// receive ≈ 40% (44% timer loops, 42% unclosed ranges), send ≈ 15%
/// (57% premature receiver return, 3% double send), plus a tail of
/// non-channel runaways (Table IV's IO/syscall/sleep/semaphore rows).
pub fn leak_mix() -> Vec<(LeakPattern, f64)> {
    vec![
        // -- send leaks (≈15% of channel leaks)
        (LeakPattern::PrematureReturn, 6.5),
        (LeakPattern::Timeout, 3.0),
        (LeakPattern::NCast, 2.0),
        (LeakPattern::DoubleSend, 0.5),
        (LeakPattern::CrossFileHandoff, 2.0),
        (LeakPattern::CrossFileFanout, 1.5),
        // -- receive leaks (≈40%)
        (LeakPattern::TimerLoop, 14.0),
        (LeakPattern::UnclosedRange, 13.5),
        (LeakPattern::MissingSender, 4.5),
        (LeakPattern::CrossFileMissingClose, 2.5),
        // -- select leaks (≈45%)
        (LeakPattern::ContractViolation, 24.0),
        (LeakPattern::CtxContractViolation, 7.0),
        (LeakPattern::SelectOutsideLoop, 11.0),
        (LeakPattern::EmptySelect, 2.5),
        // -- non-channel runaways (beyond the 857, like the paper's
        //    "other kinds of runaway goroutines")
        (LeakPattern::IoBlock, 4.5),
        (LeakPattern::SyscallHang, 3.2),
        (LeakPattern::Sleeper, 2.8),
        (LeakPattern::MissingWgDone, 1.2),
        (LeakPattern::ForgottenUnlock, 1.0),
        (LeakPattern::CondForever, 0.8),
        (LeakPattern::BusyLoop, 0.8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::Runtime;

    fn run_scenario(r: &Rendered) -> Runtime {
        let mut sources = vec![
            (r.source.clone(), r.path.clone()),
            (r.test_source.clone(), r.test_path.clone()),
        ];
        for (path, text) in &r.helpers {
            sources.push((text.clone(), path.clone()));
        }
        let prog = minigo::compile_many(&sources)
            .unwrap_or_else(|e| panic!("{} does not compile: {e:?}\n{}", r.path, r.source));
        let pkg = r.path.split('/').next().unwrap();
        let mut rt = Runtime::with_seed(13);
        prog.spawn_func(&mut rt, &format!("{pkg}.{}", r.test_func), vec![])
            .expect("test function exists");
        rt.advance(5_000, 30_000);
        rt
    }

    #[test]
    fn every_leaky_template_compiles_and_leaks_at_declared_site() {
        let mut rng = SplitMix64::new(99);
        for (pattern, _) in leak_mix() {
            let r = render_leaky(pattern, "pkgx", 1, &mut rng);
            let rt = run_scenario(&r);
            let site = &r.truth[0];
            assert!(
                rt.live_count() as u64 >= 1,
                "{pattern:?} must leave at least one goroutine, got 0"
            );
            // Channel leaks must block at exactly the declared line.
            if pattern.is_channel_leak() && pattern != LeakPattern::TimerLoop {
                let profile = rt.goroutine_profile("t");
                let hit = profile.goroutines.iter().any(|g| {
                    g.blocking_frame()
                        .map(|fr| fr.loc.line == site.line && *fr.loc.file == *site.file)
                        .unwrap_or(false)
                });
                assert!(
                    hit,
                    "{pattern:?}: no goroutine blocked at declared {}:{}\n{}",
                    site.file,
                    site.line,
                    profile.render()
                );
            }
        }
    }

    #[test]
    fn leaky_goroutine_counts_match_truth() {
        let mut rng = SplitMix64::new(7);
        for (pattern, _) in leak_mix() {
            let r = render_leaky(pattern, "pkgy", 2, &mut rng);
            let rt = run_scenario(&r);
            let expected: u64 = r.truth.iter().map(|t| t.goroutines).sum();
            assert_eq!(
                rt.live_count() as u64,
                expected,
                "{pattern:?} expected {expected} lingering goroutines"
            );
        }
    }

    #[test]
    fn every_benign_template_compiles_and_is_clean() {
        let mut rng = SplitMix64::new(5);
        for pattern in BenignPattern::all() {
            let r = render_benign(pattern, "pkgz", 3, &mut rng);
            let rt = run_scenario(&r);
            assert_eq!(
                rt.live_count(),
                0,
                "{pattern:?} must not leak; profile:\n{}",
                rt.goroutine_profile("t").render()
            );
            assert_eq!(
                rt.stats().panicked,
                0,
                "{pattern:?} panicked: {:?}",
                rt.exits()
            );
        }
    }

    #[test]
    fn leak_mix_weights_are_positive_and_cover_taxonomy() {
        let mix = leak_mix();
        assert!(mix.iter().all(|(_, w)| *w > 0.0));
        let channel: f64 = mix
            .iter()
            .filter(|(p, _)| p.is_channel_leak())
            .map(|(_, w)| w)
            .sum();
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!(
            channel / total > 0.8,
            "paper: >80% of leaks are message-passing"
        );
    }
}
