//! Monorepo generation.
//!
//! [`Corpus::generate`] produces a deterministic synthetic monorepo whose
//! package mix is calibrated to the paper's Table I: a small fraction of
//! packages use message passing (MP), shared memory (SM), or both, and
//! the rest are plain code. MP packages receive benign concurrency
//! scenarios plus — at a configurable rate — leak-injected scenarios with
//! ground-truth labels drawn from the paper's observed pattern taxonomy.

use std::collections::BTreeMap;

use gosim::rng::SplitMix64;
use serde::{Deserialize, Serialize};

use crate::patterns::{leak_mix, render_benign, render_leaky, BenignPattern, LeakSite, Rendered};

/// What kind of concurrency a package uses (Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PkgKind {
    /// Message passing only.
    MessagePassing,
    /// Shared memory only.
    SharedMemory,
    /// Both.
    Both,
    /// No concurrency.
    Plain,
}

/// One source or test file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceFile {
    /// Repo-relative path.
    pub path: String,
    /// File contents (mini-Go).
    pub text: String,
    /// True for `_test.go` files.
    pub is_test: bool,
}

/// One generated package.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Package {
    /// Package (and directory) name.
    pub name: String,
    /// Concurrency category.
    pub kind: PkgKind,
    /// Source files (non-test).
    pub files: Vec<SourceFile>,
    /// Test files.
    pub tests: Vec<SourceFile>,
    /// Test function names (unqualified) across the test files.
    pub test_funcs: Vec<String>,
    /// Owning team (for LeakProf report routing).
    pub owner: String,
}

impl Package {
    /// All files, sources first.
    pub fn all_files(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter().chain(self.tests.iter())
    }

    /// Compiles the package (sources + tests) into one program.
    ///
    /// # Panics
    ///
    /// Panics if generated code fails to compile — that is a generator
    /// bug, not an input error.
    pub fn compile(&self) -> gosim::script::Prog {
        let sources: Vec<(String, String)> = self
            .all_files()
            .map(|f| (f.text.clone(), f.path.clone()))
            .collect();
        minigo::compile_many(&sources)
            .unwrap_or_else(|e| panic!("generated package {} failed to compile: {e:?}", self.name))
    }

    /// Parses all files to ASTs (for the static analyzers).
    pub fn parse(&self) -> Vec<minigo::ast::File> {
        self.all_files()
            .map(|f| {
                minigo::parse_file(&f.text, &f.path)
                    .unwrap_or_else(|e| panic!("generated file {} failed to parse: {e:?}", f.path))
            })
            .collect()
    }
}

/// Package-kind probabilities.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KindMix {
    /// Probability of a message-passing package.
    pub mp: f64,
    /// Probability of a shared-memory package.
    pub sm: f64,
    /// Probability of a package using both paradigms.
    pub both: f64,
}

impl Default for KindMix {
    /// The paper's Table I distribution (MP 3.92%, SM 5.53%, both 2.02%).
    fn default() -> Self {
        KindMix {
            mp: 0.0392,
            sm: 0.0553,
            both: 0.0202,
        }
    }
}

impl KindMix {
    /// A concurrency-heavy mix, used when generating PR batches that are
    /// interesting to a leak gate.
    pub fn concurrent_heavy() -> Self {
        KindMix {
            mp: 0.55,
            sm: 0.2,
            both: 0.15,
        }
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total number of packages (Uber: 119 816; default scales 1:100).
    pub packages: usize,
    /// Probability that a message-passing scenario slot is leak-injected.
    pub leak_rate: f64,
    /// Scenarios (files) per concurrent package: lo..=hi.
    pub scenarios_per_pkg: (usize, usize),
    /// Package-kind probabilities (defaults to Table I).
    pub mix: KindMix,
    /// Numbering offset for package names (`pkg{offset+i}`); lets callers
    /// generate disjoint batches (e.g. weekly PR streams) whose package
    /// and function identities never collide.
    pub pkg_offset: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC60,
            packages: 1198,
            leak_rate: 0.18,
            scenarios_per_pkg: (2, 5),
            mix: KindMix::default(),
            pkg_offset: 0,
        }
    }
}

/// A generated monorepo with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Generation parameters.
    pub config: CorpusConfig,
    /// All packages.
    pub packages: Vec<Package>,
    /// Ground-truth leak sites across the repo.
    pub truth: Vec<LeakSite>,
}

impl Corpus {
    /// Generates a corpus deterministically from the configuration.
    pub fn generate(config: CorpusConfig) -> Corpus {
        let mut rng = SplitMix64::new(config.seed);
        let mix = leak_mix();
        let (leak_patterns, leak_weights): (Vec<_>, Vec<_>) = mix.into_iter().unzip();
        let benign = BenignPattern::all();

        let mut packages = Vec::with_capacity(config.packages);
        let mut truth = Vec::new();

        for p in 0..config.packages {
            let roll = rng.next_f64();
            let mix = config.mix;
            let kind = if roll < mix.mp {
                PkgKind::MessagePassing
            } else if roll < mix.mp + mix.sm {
                PkgKind::SharedMemory
            } else if roll < mix.mp + mix.sm + mix.both {
                PkgKind::Both
            } else {
                PkgKind::Plain
            };
            let name = format!("pkg{:04}", config.pkg_offset + p);
            let owner = format!("team-{}", p % 23);

            let mut files = Vec::new();
            let mut tests = Vec::new();
            let mut test_funcs = Vec::new();
            let push = |r: Rendered,
                        files: &mut Vec<SourceFile>,
                        tests: &mut Vec<SourceFile>,
                        test_funcs: &mut Vec<String>| {
                files.push(SourceFile {
                    path: r.path,
                    text: r.source,
                    is_test: false,
                });
                for (path, text) in r.helpers {
                    files.push(SourceFile {
                        path,
                        text,
                        is_test: false,
                    });
                }
                tests.push(SourceFile {
                    path: r.test_path,
                    text: r.test_source,
                    is_test: true,
                });
                test_funcs.push(r.test_func);
                r.truth
            };

            let n_scen = rng.range_i64(
                config.scenarios_per_pkg.0 as i64,
                config.scenarios_per_pkg.1 as i64,
            ) as usize;

            match kind {
                PkgKind::Plain => {
                    let r = render_benign(BenignPattern::PlainCompute, &name, 0, &mut rng);
                    truth.extend(push(r, &mut files, &mut tests, &mut test_funcs));
                }
                PkgKind::SharedMemory => {
                    for i in 0..n_scen {
                        let pat = match rng.index(3) {
                            0 => BenignPattern::WgFan,
                            1 => BenignPattern::MutexCounter,
                            _ => BenignPattern::PlainCompute,
                        };
                        let r = render_benign(pat, &name, i, &mut rng);
                        truth.extend(push(r, &mut files, &mut tests, &mut test_funcs));
                    }
                }
                PkgKind::MessagePassing | PkgKind::Both => {
                    for i in 0..n_scen {
                        let leaky = rng.chance(config.leak_rate);
                        let r = if leaky {
                            let pat = leak_patterns[rng.weighted(&leak_weights)];
                            render_leaky(pat, &name, i, &mut rng)
                        } else {
                            let pool: &[BenignPattern] = if kind == PkgKind::Both {
                                &benign
                            } else {
                                &benign[..11] // skip PlainCompute-only mix
                            };
                            render_benign(pool[rng.index(pool.len())], &name, i, &mut rng)
                        };
                        truth.extend(push(r, &mut files, &mut tests, &mut test_funcs));
                    }
                }
            }
            packages.push(Package {
                name,
                kind,
                files,
                tests,
                test_funcs,
                owner,
            });
        }
        Corpus {
            config,
            packages,
            truth,
        }
    }

    /// Packages with at least one injected leak.
    pub fn leaky_packages(&self) -> impl Iterator<Item = &Package> {
        let leaky: std::collections::BTreeSet<&str> = self
            .truth
            .iter()
            .map(|t| t.file.split('/').next().expect("path has package prefix"))
            .collect();
        self.packages
            .iter()
            .filter(move |p| leaky.contains(p.name.as_str()))
    }

    /// True ground-truth leak locations as a `(file, line)` set.
    pub fn truth_locs(&self) -> std::collections::BTreeSet<(String, u32)> {
        self.truth
            .iter()
            .map(|t| (t.file.clone(), t.line))
            .collect()
    }

    /// Count of packages per kind.
    pub fn kind_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for p in &self.packages {
            let k = match p.kind {
                PkgKind::MessagePassing => "message-passing",
                PkgKind::SharedMemory => "shared-memory",
                PkgKind::Both => "both",
                PkgKind::Plain => "plain",
            };
            *m.entry(k).or_insert(0) += 1;
        }
        m
    }

    /// Writes the corpus to disk as a real source tree:
    /// `<root>/<pkg>/<file>.go`, plus `<root>/TRUTH.json` with the
    /// ground-truth labels and `<root>/OWNERS.tsv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, root: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(root)?;
        for pkg in &self.packages {
            for f in pkg.all_files() {
                let path = root.join(&f.path);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                std::fs::write(path, &f.text)?;
            }
        }
        let truth = serde_json::to_string_pretty(&self.truth).expect("ground truth serializes");
        std::fs::write(root.join("TRUTH.json"), truth)?;
        let owners: String = self
            .packages
            .iter()
            .map(|p| format!("{}\t{}\n", p.name, p.owner))
            .collect();
        std::fs::write(root.join("OWNERS.tsv"), owners)?;
        Ok(())
    }

    /// Total effective lines of code (source, tests).
    pub fn eloc(&self) -> (u64, u64) {
        let count = |files: &[SourceFile]| {
            files
                .iter()
                .flat_map(|f| f.text.lines())
                .filter(|l| !l.trim().is_empty())
                .count() as u64
        };
        let src: u64 = self.packages.iter().map(|p| count(&p.files)).sum();
        let tst: u64 = self.packages.iter().map(|p| count(&p.tests)).sum();
        (src, tst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            packages: 200,
            seed: 42,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = serde_json::to_string(&small()).unwrap();
        let b = serde_json::to_string(&small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn kind_mix_roughly_matches_table1() {
        let c = Corpus::generate(CorpusConfig {
            packages: 4000,
            seed: 9,
            ..CorpusConfig::default()
        });
        let counts = c.kind_counts();
        let mp = counts["message-passing"] as f64 / 4000.0;
        let sm = counts["shared-memory"] as f64 / 4000.0;
        let both = counts["both"] as f64 / 4000.0;
        assert!((0.02..0.06).contains(&mp), "mp fraction {mp}");
        assert!((0.03..0.08).contains(&sm), "sm fraction {sm}");
        assert!((0.01..0.035).contains(&both), "both fraction {both}");
    }

    #[test]
    fn every_package_compiles() {
        let c = small();
        for p in &c.packages {
            let _ = p.compile();
            assert!(!p.test_funcs.is_empty());
        }
    }

    #[test]
    fn truth_sites_point_into_existing_files() {
        let c = small();
        for t in &c.truth {
            let pkg = t.file.split('/').next().unwrap();
            let p = c
                .packages
                .iter()
                .find(|p| p.name == pkg)
                .expect("package exists");
            let f = p
                .files
                .iter()
                .find(|f| f.path == t.file)
                .expect("file exists");
            let nlines = f.text.lines().count() as u32;
            assert!(
                t.line <= nlines,
                "{}:{} beyond {} lines",
                t.file,
                t.line,
                nlines
            );
        }
    }

    #[test]
    fn leak_rate_controls_truth_volume() {
        let none = Corpus::generate(CorpusConfig {
            packages: 300,
            leak_rate: 0.0,
            seed: 4,
            ..CorpusConfig::default()
        });
        assert!(none.truth.is_empty());
        let lots = Corpus::generate(CorpusConfig {
            packages: 300,
            leak_rate: 0.9,
            seed: 4,
            ..CorpusConfig::default()
        });
        assert!(lots.truth.len() > 10);
    }

    #[test]
    fn eloc_counts_nonempty_lines() {
        let c = small();
        let (src, tst) = c.eloc();
        assert!(src > 0 && tst > 0);
    }
}
