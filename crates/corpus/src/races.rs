//! Data-race pattern templates with ground-truth labels.
//!
//! The race taxonomy follows the Uber data-race study (the companion
//! line of work to the paper's leak study): unsynchronized composite
//! counter updates, racy double-checked initialization, loop-variable
//! capture by reference, misordered `WaitGroup.Done`, and flags guarded
//! by timers instead of real synchronization. Each racy template ships
//! with a race-free control twin so the detector's precision is pinned
//! alongside its recall: the controls exercise the same happens-before
//! edges (mutex, rendezvous channel, WaitGroup, channel close) that the
//! racy variants lack.
//!
//! Templates are text with *fixed line structure* — like
//! [`crate::patterns`] — so ground-truth line numbers are constants by
//! construction.

use serde::{Deserialize, Serialize};

/// The racy-pattern taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RacePattern {
    /// Composite `total = total + 1` from N goroutines, no mutex.
    UnprotectedCounter,
    /// Double-checked init where both the check and the init are
    /// unsynchronized (flag and cache race).
    DoubleCheckedInit,
    /// Loop induction variable captured by reference by goroutines
    /// spawned in the loop (pre-Go-1.22 semantics).
    LoopCapture,
    /// `wg.Done()` before the result write: the waiter's read is not
    /// ordered after the write.
    WgDoneBeforeWrite,
    /// A flag "guarded" by `<-time.After(..)`: timers create no
    /// happens-before edge, so the read races the write.
    TimerGuardedFlag,
}

impl RacePattern {
    /// All racy shapes.
    pub fn all() -> [RacePattern; 5] {
        [
            RacePattern::UnprotectedCounter,
            RacePattern::DoubleCheckedInit,
            RacePattern::LoopCapture,
            RacePattern::WgDoneBeforeWrite,
            RacePattern::TimerGuardedFlag,
        ]
    }
}

/// Race-free control twins: same shapes, correctly synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RaceControl {
    /// The counter under a mutex ([`RacePattern::UnprotectedCounter`]'s
    /// fix).
    MutexCounter,
    /// Write published through a rendezvous channel send/receive.
    ChannelHandoff,
    /// Write *before* `wg.Done()` ([`RacePattern::WgDoneBeforeWrite`]'s
    /// fix).
    WgWriteBeforeDone,
    /// Flag published by `close(done)` before the reader's receive
    /// ([`RacePattern::TimerGuardedFlag`]'s fix).
    CloseGuardedFlag,
}

impl RaceControl {
    /// All control shapes.
    pub fn all() -> [RaceControl; 4] {
        [
            RaceControl::MutexCounter,
            RaceControl::ChannelHandoff,
            RaceControl::WgWriteBeforeDone,
            RaceControl::CloseGuardedFlag,
        ]
    }
}

/// One ground-truth race in a rendered file: the variable plus the
/// line(s) a correct detector may localize the racing write to (some
/// patterns have symmetric writes, e.g. double-checked init, where
/// either write line is a correct answer).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaceSite {
    /// Pattern class.
    pub pattern: RacePattern,
    /// The racing variable.
    pub var: String,
    /// File path of the racing accesses.
    pub file: String,
    /// Acceptable 1-based lines for the racing *write*.
    pub write_lines: Vec<u32>,
}

/// A rendered race scenario: source, test, ground truth (empty for
/// controls).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RenderedRace {
    /// Source file path.
    pub path: String,
    /// Source text.
    pub source: String,
    /// Test file path.
    pub test_path: String,
    /// Test text.
    pub test_source: String,
    /// Name of the test function (unqualified).
    pub test_func: String,
    /// Ground-truth races (empty for controls).
    pub truth: Vec<RaceSite>,
}

impl RenderedRace {
    /// The `(source, path)` pairs for `minigo::compile_many_race`.
    pub fn sources(&self) -> Vec<(String, String)> {
        vec![
            (self.source.clone(), self.path.clone()),
            (self.test_source.clone(), self.test_path.clone()),
        ]
    }

    /// Qualified entry point (`pkg.TestXxx`).
    pub fn entry(&self) -> String {
        let pkg = self.path.split('/').next().unwrap_or("main");
        format!("{pkg}.{}", self.test_func)
    }
}

/// Renders one racy scenario of the given pattern into package `pkg`.
pub fn render_racy(pattern: RacePattern, pkg: &str, idx: usize) -> RenderedRace {
    let fname = format!("{pkg}/race_{idx}.go");
    let tname = format!("{pkg}/race_{idx}_test.go");
    let f = format!("Race{idx}");
    let test_func = format!("TestRace{idx}");

    let site = |var: &str, write_lines: Vec<u32>| RaceSite {
        pattern,
        var: var.to_string(),
        file: fname.clone(),
        write_lines,
    };

    let (source, call, truth): (String, String, Vec<RaceSite>) = match pattern {
        RacePattern::UnprotectedCounter => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\ttotal := 0\n\tvar wg sync.WaitGroup\n\twg.Add(n)\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\ttotal = total + 1\n\t\t\twg.Done()\n\t\t}}()\n\t}}\n\twg.Wait()\n\tsim.Work(total)\n}}\n"
            ),
            format!("{f}(4)"),
            vec![site("total", vec![9])],
        ),
        RacePattern::DoubleCheckedInit => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tready := 0\n\tcache := 0\n\tdone := make(chan int)\n\tgo func() {{\n\t\tif ready == 0 {{\n\t\t\tcache = 42\n\t\t\tready = 1\n\t\t}}\n\t\tdone <- 1\n\t}}()\n\tif ready == 0 {{\n\t\tcache = 42\n\t\tready = 1\n\t}}\n\t<-done\n}}\n"
            ),
            format!("{f}()"),
            vec![site("cache", vec![9, 15]), site("ready", vec![10, 16])],
        ),
        RacePattern::LoopCapture => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\tvar wg sync.WaitGroup\n\twg.Add(n)\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\tsim.Work(i)\n\t\t\twg.Done()\n\t\t}}()\n\t}}\n\twg.Wait()\n}}\n"
            ),
            format!("{f}(4)"),
            vec![site("i", vec![6])],
        ),
        RacePattern::WgDoneBeforeWrite => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tresult := 0\n\tgo func() {{\n\t\twg.Done()\n\t\tresult = 42\n\t}}()\n\twg.Wait()\n\tsim.Work(result)\n}}\n"
            ),
            format!("{f}()"),
            vec![site("result", vec![9])],
        ),
        RacePattern::TimerGuardedFlag => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tflag := 0\n\tgo func() {{\n\t\tsim.Work(1)\n\t\tflag = 1\n\t}}()\n\t<-time.After(50)\n\tsim.Work(flag)\n}}\n"
            ),
            format!("{f}()"),
            vec![site("flag", vec![7])],
        ),
    };

    RenderedRace {
        path: fname,
        source,
        test_path: tname,
        test_source: format!("package {pkg}\n\nfunc {test_func}() {{\n\t{call}\n}}\n"),
        test_func,
        truth,
    }
}

/// Renders one race-free control scenario.
pub fn render_control(control: RaceControl, pkg: &str, idx: usize) -> RenderedRace {
    let fname = format!("{pkg}/ctrl_{idx}.go");
    let tname = format!("{pkg}/ctrl_{idx}_test.go");
    let f = format!("Ctrl{idx}");
    let test_func = format!("TestCtrl{idx}");

    let (source, call): (String, String) = match control {
        RaceControl::MutexCounter => (
            format!(
                "package {pkg}\n\nfunc {f}(n int) {{\n\ttotal := 0\n\tvar mu sync.Mutex\n\tvar wg sync.WaitGroup\n\twg.Add(n)\n\tfor i := 0; i < n; i++ {{\n\t\tgo func() {{\n\t\t\tmu.Lock()\n\t\t\ttotal = total + 1\n\t\t\tmu.Unlock()\n\t\t\twg.Done()\n\t\t}}()\n\t}}\n\twg.Wait()\n\tsim.Work(total)\n}}\n"
            ),
            format!("{f}(4)"),
        ),
        RaceControl::ChannelHandoff => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tdata := 0\n\tch := make(chan int)\n\tgo func() {{\n\t\tdata = 42\n\t\tch <- 1\n\t}}()\n\t<-ch\n\tsim.Work(data)\n}}\n"
            ),
            format!("{f}()"),
        ),
        RaceControl::WgWriteBeforeDone => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tresult := 0\n\tgo func() {{\n\t\tresult = 42\n\t\twg.Done()\n\t}}()\n\twg.Wait()\n\tsim.Work(result)\n}}\n"
            ),
            format!("{f}()"),
        ),
        RaceControl::CloseGuardedFlag => (
            format!(
                "package {pkg}\n\nfunc {f}() {{\n\tflag := 0\n\tdone := make(chan int)\n\tgo func() {{\n\t\tflag = 1\n\t\tclose(done)\n\t}}()\n\t<-done\n\tsim.Work(flag)\n}}\n"
            ),
            format!("{f}()"),
        ),
    };

    RenderedRace {
        path: fname,
        source,
        test_path: tname,
        test_source: format!("package {pkg}\n\nfunc {test_func}() {{\n\t{call}\n}}\n"),
        test_func,
        truth: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::Runtime;

    fn run_race_mode(r: &RenderedRace) -> (Runtime, Vec<gosim::AccessEvent>) {
        let prog = minigo::compile_many_race(&r.sources())
            .unwrap_or_else(|e| panic!("{} does not compile: {e:?}\n{}", r.path, r.source));
        let mut rt = Runtime::with_seed(13);
        rt.enable_hb();
        prog.spawn_func(&mut rt, &r.entry(), vec![])
            .expect("test function exists");
        rt.advance(5_000, 30_000);
        let events = rt.take_access_events();
        (rt, events)
    }

    #[test]
    fn racy_templates_compile_run_clean_and_emit_shared_accesses() {
        for (i, pattern) in RacePattern::all().into_iter().enumerate() {
            let r = render_racy(pattern, "rpkg", i);
            let (rt, events) = run_race_mode(&r);
            assert_eq!(rt.live_count(), 0, "{pattern:?} must not leak goroutines");
            assert_eq!(rt.stats().panicked, 0, "{pattern:?} panicked");
            for t in &r.truth {
                assert!(
                    events.iter().any(|e| e.var == t.var),
                    "{pattern:?}: no access events for truth var `{}`",
                    t.var
                );
            }
        }
    }

    #[test]
    fn truth_lines_point_at_write_accesses() {
        for (i, pattern) in RacePattern::all().into_iter().enumerate() {
            let r = render_racy(pattern, "wpkg", i);
            let (_, events) = run_race_mode(&r);
            for t in &r.truth {
                assert!(
                    events.iter().any(|e| e.var == t.var
                        && e.is_write
                        && t.write_lines.contains(&e.loc.line)),
                    "{pattern:?}: no write access to `{}` at declared lines {:?}",
                    t.var,
                    t.write_lines
                );
            }
        }
    }

    #[test]
    fn control_templates_compile_and_run_clean() {
        for (i, control) in RaceControl::all().into_iter().enumerate() {
            let r = render_control(control, "cpkg", i);
            let (rt, _) = run_race_mode(&r);
            assert_eq!(rt.live_count(), 0, "{control:?} must not leak goroutines");
            assert_eq!(rt.stats().panicked, 0, "{control:?} panicked");
        }
    }

    #[test]
    fn plain_compilation_of_race_sources_emits_no_access_events() {
        // The un-instrumented path must stay untouched by race mode.
        let r = render_racy(RacePattern::UnprotectedCounter, "ppkg", 0);
        let prog = minigo::compile_many(&r.sources()).expect("compiles");
        let mut rt = Runtime::with_seed(13);
        rt.enable_hb();
        prog.spawn_func(&mut rt, &r.entry(), vec![])
            .expect("test function exists");
        rt.advance(5_000, 30_000);
        assert!(rt.take_access_events().is_empty());
    }
}
