//! Property: every file the corpus generator emits survives a
//! parse → print → parse round trip with an identical AST, and the
//! printed variant behaves identically under the runtime. This pins the
//! parser and pretty-printer against the full space of generated shapes.

use corpus::{Corpus, CorpusConfig, KindMix};
use proptest::prelude::*;

fn canon(file: &minigo::ast::File) -> String {
    let mut js = serde_json::to_value(file).expect("ast serializes");
    fn strip(v: &mut serde_json::Value) {
        match v {
            serde_json::Value::Object(m) => {
                m.remove("line");
                m.remove("path");
                for (_, x) in m.iter_mut() {
                    strip(x);
                }
            }
            serde_json::Value::Array(xs) => {
                for x in xs {
                    strip(x);
                }
            }
            _ => {}
        }
    }
    strip(&mut js);
    js.to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_corpus_roundtrips_through_the_printer(seed in 0u64..10_000) {
        let repo = Corpus::generate(CorpusConfig {
            packages: 6,
            leak_rate: 0.6,
            seed,
            mix: KindMix::concurrent_heavy(),
            ..CorpusConfig::default()
        });
        for pkg in &repo.packages {
            for f in pkg.all_files() {
                let a = minigo::parse_file(&f.text, &f.path).expect("generated file parses");
                let printed = minigo::print_file(&a);
                let b = minigo::parse_file(&printed, &f.path).unwrap_or_else(|e| {
                    panic!("printed {} fails to parse: {e:?}\n{printed}", f.path)
                });
                prop_assert_eq!(canon(&a), canon(&b), "roundtrip diverged for {}", f.path);
            }
        }
    }

    #[test]
    fn printed_packages_leak_identically(seed in 0u64..10_000) {
        let repo = Corpus::generate(CorpusConfig {
            packages: 4,
            leak_rate: 0.7,
            seed,
            mix: KindMix::concurrent_heavy(),
            ..CorpusConfig::default()
        });
        for pkg in repo.packages.iter().filter(|p| !p.test_funcs.is_empty()).take(2) {
            // Compile the original and the pretty-printed sources.
            let original: Vec<(String, String)> =
                pkg.all_files().map(|f| (f.text.clone(), f.path.clone())).collect();
            let printed: Vec<(String, String)> = pkg
                .all_files()
                .map(|f| {
                    let ast = minigo::parse_file(&f.text, &f.path).expect("parses");
                    (minigo::print_file(&ast), f.path.clone())
                })
                .collect();
            let p1 = minigo::compile_many(&original).expect("original compiles");
            let p2 = minigo::compile_many(&printed).expect("printed compiles");
            for test in &pkg.test_funcs {
                let q = format!("{}.{test}", pkg.name);
                let run = |prog: &gosim::script::Prog| {
                    let mut rt = gosim::Runtime::with_seed(7);
                    prog.spawn_func(&mut rt, &q, vec![]).expect("test exists");
                    rt.advance(2_000, 30_000);
                    rt.live_count()
                };
                prop_assert_eq!(run(&p1), run(&p2), "behaviour diverged for {}", q);
            }
        }
    }
}
