//! Blocking-type classification of lingering goroutines — the taxonomy of
//! the paper's Table IV.

use std::collections::BTreeMap;
use std::fmt;

use gosim::{GoStatus, GoroutineProfile, GoroutineRecord};
use serde::{Deserialize, Serialize};

/// The blocking categories of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BlockKind {
    /// `chan receive (non-nil chan)`.
    ChanReceive,
    /// `chan receive (nil chan)` — a guaranteed partial deadlock.
    ChanReceiveNil,
    /// `chan send (non-nil chan)`.
    ChanSend,
    /// `chan send (nil chan)` — a guaranteed partial deadlock.
    ChanSendNil,
    /// `select` with at least one case.
    Select,
    /// `select` with zero cases — blocks forever by definition.
    SelectNoCases,
    /// Blocked on I/O.
    IoWait,
    /// Blocked in a system call.
    Syscall,
    /// Sleeping on a timer.
    Sleep,
    /// Still running or runnable at verification time.
    RunningRunnable,
    /// `sync.Cond.Wait`.
    CondWait,
    /// Semaphore acquisition (mutexes, waitgroups).
    SemAcquire,
}

impl BlockKind {
    /// Classifies a goroutine status.
    pub fn of(status: GoStatus) -> BlockKind {
        match status {
            GoStatus::ChanReceive { nil_chan: false } => BlockKind::ChanReceive,
            GoStatus::ChanReceive { nil_chan: true } => BlockKind::ChanReceiveNil,
            GoStatus::ChanSend { nil_chan: false } => BlockKind::ChanSend,
            GoStatus::ChanSend { nil_chan: true } => BlockKind::ChanSendNil,
            GoStatus::Select { ncases: 0 } => BlockKind::SelectNoCases,
            GoStatus::Select { .. } => BlockKind::Select,
            GoStatus::IoWait => BlockKind::IoWait,
            GoStatus::Syscall => BlockKind::Syscall,
            GoStatus::Sleep => BlockKind::Sleep,
            GoStatus::Running | GoStatus::Runnable => BlockKind::RunningRunnable,
            GoStatus::CondWait => BlockKind::CondWait,
            GoStatus::SemAcquire => BlockKind::SemAcquire,
        }
    }

    /// True for the message-passing categories (the paper's headline:
    /// message passing causes >80% of non-terminated goroutines).
    pub fn is_message_passing(&self) -> bool {
        matches!(
            self,
            BlockKind::ChanReceive
                | BlockKind::ChanReceiveNil
                | BlockKind::ChanSend
                | BlockKind::ChanSendNil
                | BlockKind::Select
                | BlockKind::SelectNoCases
        )
    }

    /// Row label used in the Table IV reproduction.
    pub fn label(&self) -> &'static str {
        match self {
            BlockKind::ChanReceive => "chan receive (non-nil chan)",
            BlockKind::ChanReceiveNil => "chan receive (nil chan)",
            BlockKind::ChanSend => "chan send (non-nil chan)",
            BlockKind::ChanSendNil => "chan send (nil chan)",
            BlockKind::Select => "select (>0 cases)",
            BlockKind::SelectNoCases => "select (0 cases)",
            BlockKind::IoWait => "IO wait",
            BlockKind::Syscall => "System call",
            BlockKind::Sleep => "Sleep",
            BlockKind::RunningRunnable => "Running/Runnable",
            BlockKind::CondWait => "Condition Wait",
            BlockKind::SemAcquire => "Semaphore Acquire",
        }
    }

    /// All categories, in Table IV row order.
    pub fn all() -> [BlockKind; 12] {
        [
            BlockKind::ChanReceive,
            BlockKind::ChanReceiveNil,
            BlockKind::ChanSend,
            BlockKind::ChanSendNil,
            BlockKind::Select,
            BlockKind::SelectNoCases,
            BlockKind::IoWait,
            BlockKind::Syscall,
            BlockKind::Sleep,
            BlockKind::RunningRunnable,
            BlockKind::CondWait,
            BlockKind::SemAcquire,
        ]
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Aggregated counts per blocking category (a Table IV instance).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    counts: BTreeMap<BlockKind, u64>,
}

impl Classification {
    /// Creates an empty classification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one goroutine record.
    pub fn add(&mut self, rec: &GoroutineRecord) {
        self.add_kind(BlockKind::of(rec.status));
    }

    /// Adds one pre-classified goroutine.
    pub fn add_kind(&mut self, kind: BlockKind) {
        *self.counts.entry(kind).or_insert(0) += 1;
    }

    /// Adds every goroutine of a profile.
    pub fn add_profile(&mut self, profile: &GoroutineProfile) {
        for g in &profile.goroutines {
            self.add(g);
        }
    }

    /// Merges another classification into this one.
    pub fn merge(&mut self, other: &Classification) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += v;
        }
    }

    /// Count for one category.
    pub fn count(&self, kind: BlockKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total classified goroutines.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fraction of goroutines in message-passing categories.
    pub fn message_passing_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mp: u64 = self
            .counts
            .iter()
            .filter(|(k, _)| k.is_message_passing())
            .map(|(_, v)| *v)
            .sum();
        mp as f64 / total as f64
    }

    /// Renders the classification as a Table IV-style text table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let total = self.total().max(1);
        let mut out = String::from("Type                          | Count   | Percentage\n");
        out.push_str("------------------------------+---------+-----------\n");
        for kind in BlockKind::all() {
            let c = self.count(kind);
            let _ = writeln!(
                out,
                "{:<29} | {:>7} | {:>8.2}%",
                kind.label(),
                c,
                100.0 * c as f64 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "{:<29} | {:>7} | {:>8.2}%",
            "Total",
            self.total(),
            100.0
        );
        out
    }
}

impl FromIterator<BlockKind> for Classification {
    fn from_iter<T: IntoIterator<Item = BlockKind>>(iter: T) -> Self {
        let mut c = Classification::new();
        for k in iter {
            *c.counts.entry(k).or_insert(0) += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::{Frame, Gid, Loc};

    fn rec(status: GoStatus) -> GoroutineRecord {
        GoroutineRecord {
            gid: Gid(1),
            name: "f".into(),
            status,
            stack: vec![],
            created_by: Frame::new("main", Loc::unknown()),
            wait_ticks: 0,
            retained_bytes: 0,
        }
    }

    #[test]
    fn classify_matches_table_iv_rows() {
        assert_eq!(
            BlockKind::of(GoStatus::ChanReceive { nil_chan: false }),
            BlockKind::ChanReceive
        );
        assert_eq!(
            BlockKind::of(GoStatus::Select { ncases: 0 }),
            BlockKind::SelectNoCases
        );
        assert_eq!(
            BlockKind::of(GoStatus::Select { ncases: 3 }),
            BlockKind::Select
        );
        assert_eq!(
            BlockKind::of(GoStatus::Runnable),
            BlockKind::RunningRunnable
        );
    }

    #[test]
    fn message_passing_fraction() {
        let mut c = Classification::new();
        c.add(&rec(GoStatus::Select { ncases: 2 }));
        c.add(&rec(GoStatus::ChanReceive { nil_chan: false }));
        c.add(&rec(GoStatus::ChanSend { nil_chan: false }));
        c.add(&rec(GoStatus::IoWait));
        assert!((c.message_passing_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Classification::new();
        a.add(&rec(GoStatus::Sleep));
        let mut b = Classification::new();
        b.add(&rec(GoStatus::Sleep));
        b.add(&rec(GoStatus::Syscall));
        a.merge(&b);
        assert_eq!(a.count(BlockKind::Sleep), 2);
        assert_eq!(a.count(BlockKind::Syscall), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn render_contains_all_rows_and_total() {
        let c: Classification = [BlockKind::ChanSend, BlockKind::Select]
            .into_iter()
            .collect();
        let table = c.render_table();
        for kind in BlockKind::all() {
            assert!(table.contains(kind.label()), "missing row {kind}");
        }
        assert!(table.contains("Total"));
    }
}
