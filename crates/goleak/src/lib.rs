//! # goleak — test-time goroutine leak detection (paper Section IV)
//!
//! This crate reimplements the paper's GOLEAK workflow against the
//! [`gosim`] runtime:
//!
//! * [`find`] snapshots all lingering goroutines at the end of a test,
//!   exactly like `goleak.Find`;
//! * [`find_with_retry`] first lets the runtime settle (retry + virtual
//!   time backoff) so goroutines that are merely *slow* to exit are not
//!   reported as leaks — the dynamic-analysis analogue of goleak's retry
//!   loop;
//! * [`verify_test`] / [`verify_test_main`] are the `VerifyTestMain`
//!   analogues: they fail a test when non-suppressed goroutines linger;
//! * [`SuppressionList`] supports the paper's incremental rollout: leaks
//!   present in legacy code are recorded and only *new* leaks block a PR;
//! * [`classify`] reproduces the Table IV blocking-type taxonomy.
//!
//! ## Example
//!
//! ```
//! use gosim::script::{fnb, Expr, Prog};
//! use gosim::Runtime;
//! use goleak::{find_with_retry, Options};
//!
//! let prog = Prog::build(|p| {
//!     p.func(fnb("pkg.TestLeaky", "pkg/x_test.go").body(|b| {
//!         b.make_chan("ch", 0, 3);
//!         b.go_closure(4, |g| {
//!             g.send("ch", Expr::int(1), 5); // no receiver: leaks
//!         });
//!     }));
//! });
//! let mut rt = Runtime::with_seed(0);
//! prog.spawn_func(&mut rt, "pkg.TestLeaky", vec![]);
//! rt.run_until_blocked(10_000);
//!
//! let leaks = find_with_retry(&mut rt, &Options::default());
//! assert_eq!(leaks.len(), 1);
//! assert_eq!(leaks[0].goroutine, "pkg.TestLeaky$1");
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod suppress;

pub use classify::{BlockKind, Classification};
pub use suppress::SuppressionList;

use std::fmt;

use gosim::{Frame, Gid, GoStatus, GoroutineRecord, Runtime};
use serde::{Deserialize, Serialize};

/// Options controlling leak detection, mirroring `goleak.Option`s.
#[derive(Debug, Clone)]
pub struct Options {
    /// Number of settle retries before goroutines are reported.
    pub max_retries: u32,
    /// Virtual ticks granted per retry (doubles each retry, like the
    /// upstream library's backoff).
    pub retry_ticks: u64,
    /// Goroutine root functions to ignore, the analogue of
    /// `goleak.IgnoreTopFunction`.
    pub ignore_functions: Vec<String>,
    /// Treat goroutines sleeping on plain timers as benign (off by
    /// default: the paper counts them, Table IV's `Sleep` row).
    pub ignore_sleepers: bool,
    /// Scheduler slice budget for each settle attempt.
    pub settle_budget: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_retries: 4,
            retry_ticks: 8,
            ignore_functions: Vec::new(),
            ignore_sleepers: false,
            settle_budget: 1_000_000,
        }
    }
}

/// One lingering goroutine, as reported at test end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeakReport {
    /// Goroutine id in the runtime.
    pub gid: Gid,
    /// Root function (display) name — the suppression key.
    pub goroutine: String,
    /// Observed status.
    pub status: GoStatus,
    /// Table IV category.
    pub kind: BlockKind,
    /// The user-code frame of the blocking operation, if any.
    pub blocking_frame: Option<Frame>,
    /// Where the goroutine was created (`created by ...`).
    pub created_by: Frame,
    /// How long the goroutine has been waiting, in virtual ticks.
    pub wait_ticks: u64,
    /// Bytes retained by the leak (stack + attributed heap).
    pub retained_bytes: u64,
}

impl LeakReport {
    fn from_record(rec: &GoroutineRecord) -> Self {
        LeakReport {
            gid: rec.gid,
            goroutine: rec.name.clone(),
            status: rec.status,
            kind: BlockKind::of(rec.status),
            blocking_frame: rec.blocking_frame().cloned(),
            created_by: rec.created_by.clone(),
            wait_ticks: rec.wait_ticks,
            retained_bytes: rec.retained_bytes,
        }
    }
}

impl fmt::Display for LeakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "found unexpected goroutine {} [{}]",
            self.goroutine,
            self.status.wait_reason()
        )?;
        if let Some(frame) = &self.blocking_frame {
            write!(f, " blocked at {}", frame.loc)?;
        }
        write!(
            f,
            " created by {} at {}",
            self.created_by.func, self.created_by.loc
        )
    }
}

/// Snapshots lingering goroutines without letting the runtime settle.
///
/// Corollary 1 of the paper: any goroutine alive at test end *may* be a
/// partial deadlock. `find` reports them all (modulo the ignore options);
/// prefer [`find_with_retry`] to avoid flagging goroutines that are
/// merely still finishing.
pub fn find(rt: &Runtime, opts: &Options) -> Vec<LeakReport> {
    rt.goroutine_profile("goleak")
        .goroutines
        .iter()
        .filter(|g| !opts.ignore_functions.iter().any(|n| n == &g.name))
        .filter(|g| !(opts.ignore_sleepers && g.status == GoStatus::Sleep))
        .map(LeakReport::from_record)
        .collect()
}

/// Lets the runtime settle (drain runnable goroutines, then grant
/// exponentially growing slices of virtual time) before reporting
/// whatever still lingers.
pub fn find_with_retry(rt: &mut Runtime, opts: &Options) -> Vec<LeakReport> {
    rt.run_until_blocked(opts.settle_budget);
    let mut backoff = opts.retry_ticks.max(1);
    for _ in 0..opts.max_retries {
        if rt.live_count() == 0 {
            return Vec::new();
        }
        rt.advance(backoff, opts.settle_budget);
        backoff = backoff.saturating_mul(2);
    }
    find(rt, opts)
}

/// The outcome of verifying one test target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Verdict {
    /// Leaks not covered by the suppression list: these block the PR.
    pub new_leaks: Vec<LeakReport>,
    /// Leaks matched by the suppression list: logged, not blocking.
    pub suppressed: Vec<LeakReport>,
}

impl Verdict {
    /// True when the test target passes (no unsuppressed leaks).
    pub fn passed(&self) -> bool {
        self.new_leaks.is_empty()
    }

    /// All leaks regardless of suppression.
    pub fn all_leaks(&self) -> impl Iterator<Item = &LeakReport> {
        self.new_leaks.iter().chain(self.suppressed.iter())
    }

    /// Renders the verdict like a failing `go test` log.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(out, "PASS (goleak: no unsuppressed goroutine leaks)");
        } else {
            let _ = writeln!(
                out,
                "FAIL: {} goroutine leak(s) found",
                self.new_leaks.len()
            );
        }
        for l in &self.new_leaks {
            let _ = writeln!(out, "  {l}");
        }
        for l in &self.suppressed {
            let _ = writeln!(out, "  [suppressed] {l}");
        }
        out
    }
}

/// Verifies a test runtime: the `goleak.VerifyTestMain` analogue without
/// a suppression list.
pub fn verify_test(rt: &mut Runtime, opts: &Options) -> Verdict {
    verify_test_main(rt, opts, &SuppressionList::new())
}

/// Verifies a test runtime against a suppression list: only leaks whose
/// goroutine function is *not* suppressed block the test. This is the
/// incremental-rollout mechanism of the paper (Section IV-A).
pub fn verify_test_main(
    rt: &mut Runtime,
    opts: &Options,
    suppressions: &SuppressionList,
) -> Verdict {
    let leaks = find_with_retry(rt, opts);
    let (suppressed, new_leaks) = leaks
        .into_iter()
        .partition(|l: &LeakReport| suppressions.matches(l));
    Verdict {
        new_leaks,
        suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::script::{fnb, Expr, Prog};

    fn leaky_runtime(n: i64) -> Runtime {
        let prog = Prog::build(|p| {
            p.func(fnb("pkg.TestX", "pkg/x_test.go").body(|b| {
                b.make_chan("ch", 0, 2);
                b.for_n("i", Expr::int(n), 3, |l| {
                    l.go_closure(4, |g| {
                        g.send("ch", Expr::var("i"), 5);
                    });
                });
            }));
        });
        let mut rt = Runtime::with_seed(1);
        prog.spawn_func(&mut rt, "pkg.TestX", vec![]);
        rt.run_until_blocked(100_000);
        rt
    }

    #[test]
    fn find_reports_all_lingering_goroutines() {
        let rt = leaky_runtime(3);
        let leaks = find(&rt, &Options::default());
        assert_eq!(leaks.len(), 3);
        for l in &leaks {
            assert_eq!(l.kind, BlockKind::ChanSend);
            assert_eq!(l.blocking_frame.as_ref().unwrap().loc.line, 5);
            assert_eq!(l.created_by.loc.line, 4);
        }
    }

    #[test]
    fn clean_test_passes() {
        let prog = Prog::build(|p| {
            p.func(fnb("pkg.TestOk", "pkg/ok_test.go").body(|b| {
                b.make_chan("ch", 1, 2);
                b.send("ch", Expr::int(1), 3);
                b.recv("ch", 4);
            }));
        });
        let mut rt = Runtime::with_seed(0);
        prog.spawn_func(&mut rt, "pkg.TestOk", vec![]);
        rt.run_until_blocked(10_000);
        let v = verify_test(&mut rt, &Options::default());
        assert!(v.passed());
        assert!(v.render().contains("PASS"));
    }

    #[test]
    fn retry_settles_slow_goroutines() {
        // A goroutine that sleeps briefly then exits must NOT be reported.
        let prog = Prog::build(|p| {
            p.func(fnb("pkg.TestSlow", "pkg/slow_test.go").body(|b| {
                b.go_closure(2, |g| {
                    g.sleep(Expr::int(20), 3);
                });
            }));
        });
        let mut rt = Runtime::with_seed(0);
        prog.spawn_func(&mut rt, "pkg.TestSlow", vec![]);
        rt.run_until_blocked(10_000);
        assert_eq!(rt.live_count(), 1, "still sleeping at test end");

        // Without retries: false positive.
        let eager = find(&rt, &Options::default());
        assert_eq!(eager.len(), 1);

        // With retries: the sleeper finishes within the backoff budget.
        let settled = find_with_retry(&mut rt, &Options::default());
        assert!(settled.is_empty(), "retry absorbed the in-flight goroutine");
    }

    #[test]
    fn suppression_list_splits_old_from_new() {
        let mut rt = leaky_runtime(2);
        let mut sup = SuppressionList::new();
        sup.insert("pkg.TestX$1");
        let v = verify_test_main(&mut rt, &Options::default(), &sup);
        assert!(v.passed(), "legacy leak suppressed");
        assert_eq!(v.suppressed.len(), 2);
        assert!(v.render().contains("[suppressed]"));
    }

    #[test]
    fn ignore_functions_option() {
        let rt = leaky_runtime(1);
        let opts = Options {
            ignore_functions: vec!["pkg.TestX$1".into()],
            ..Options::default()
        };
        assert!(find(&rt, &opts).is_empty());
    }

    #[test]
    fn leak_report_display_carries_evidence() {
        let rt = leaky_runtime(1);
        let l = &find(&rt, &Options::default())[0];
        let s = l.to_string();
        assert!(s.contains("pkg.TestX$1"));
        assert!(s.contains("chan send"));
        assert!(s.contains("pkg/x_test.go:5"));
    }
}
