//! Suppression lists: the paper's incremental-rollout mechanism.
//!
//! An offline trial run collects the goroutine function names of all
//! pre-existing leaks; those are suppressed so that only PRs *adding*
//! leaks are blocked, while owners burn the legacy list down over time
//! (paper Section IV-A: the list started at 1040 entries, 857 of which
//! were partial deadlocks).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::LeakReport;

/// A set of suppressed goroutine function names.
///
/// Keys are goroutine root-function display names, e.g.
/// `transactions.ComputeCost$1` — the same identity the paper uses
/// ("leaking goroutine locations as function names").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuppressionList {
    names: BTreeSet<String>,
}

impl SuppressionList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a list from an iterator of names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SuppressionList {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Builds the initial list from a trial run's leak reports — the
    /// paper's "offline trial run with instrumentation".
    pub fn from_trial_run<'a, I: IntoIterator<Item = &'a LeakReport>>(leaks: I) -> Self {
        SuppressionList {
            names: leaks.into_iter().map(|l| l.goroutine.clone()).collect(),
        }
    }

    /// Adds a name. Returns false if it was already present.
    pub fn insert(&mut self, name: impl Into<String>) -> bool {
        self.names.insert(name.into())
    }

    /// Removes a name once its leak is fixed. Returns true if present.
    pub fn remove(&mut self, name: &str) -> bool {
        self.names.remove(name)
    }

    /// True if the report's goroutine function is suppressed.
    pub fn matches(&self, report: &LeakReport) -> bool {
        self.names.contains(&report.goroutine)
    }

    /// True if a bare name is suppressed.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Number of suppressed entries.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over suppressed names in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }

    /// Serializes to the on-disk one-name-per-line format.
    pub fn to_text(&self) -> String {
        let mut s: String = self.names.iter().map(|n| format!("{n}\n")).collect();
        if s.ends_with('\n') {
            s.pop();
        }
        s
    }

    /// Parses the one-name-per-line format (blank lines and `#` comments
    /// ignored).
    pub fn from_text(text: &str) -> Self {
        SuppressionList {
            names: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned)
                .collect(),
        }
    }
}

impl Extend<String> for SuppressionList {
    fn extend<T: IntoIterator<Item = String>>(&mut self, iter: T) {
        self.names.extend(iter);
    }
}

impl FromIterator<String> for SuppressionList {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        SuppressionList {
            names: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = SuppressionList::new();
        assert!(s.is_empty());
        assert!(s.insert("pkg.F$1"));
        assert!(!s.insert("pkg.F$1"), "duplicate insert is a no-op");
        assert!(s.contains("pkg.F$1"));
        assert_eq!(s.len(), 1);
        assert!(s.remove("pkg.F$1"));
        assert!(!s.remove("pkg.F$1"));
        assert!(s.is_empty());
    }

    #[test]
    fn text_roundtrip_skips_comments() {
        let text = "# legacy leaks\npkg.A$1\n\npkg.B\n";
        let s = SuppressionList::from_text(text);
        assert_eq!(s.len(), 2);
        assert!(s.contains("pkg.A$1"));
        assert!(s.contains("pkg.B"));
        let round = SuppressionList::from_text(&s.to_text());
        assert_eq!(s, round);
    }

    #[test]
    fn from_names_builder() {
        let s = SuppressionList::from_names(["a", "b"]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
