//! Property tests: verification verdicts partition cleanly and the
//! classification algebra is conservative.

use goleak::{
    classify::BlockKind, find, verify_test_main, Classification, Options, SuppressionList,
};
use gosim::script::{fnb, Expr, Prog};
use gosim::Runtime;
use proptest::prelude::*;

fn leaky_rt(senders: u64, receivers: u64, seed: u64) -> Runtime {
    let prog = Prog::build(|p| {
        p.func(fnb("pkg.TestX", "pkg/x_test.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.for_n("i", Expr::Lit(gosim::Val::Int(senders as i64)), 2, |l| {
                l.go_closure(3, |g| {
                    g.send("ch", Expr::var("i"), 4);
                });
            });
            b.for_n("j", Expr::Lit(gosim::Val::Int(receivers as i64)), 6, |l| {
                l.go_closure(7, |g| {
                    g.recv("ch", 8);
                });
            });
        }));
    });
    let mut rt = Runtime::with_seed(seed);
    prog.spawn_func(&mut rt, "pkg.TestX", vec![]);
    rt.run_until_blocked(1_000_000);
    rt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// new_leaks ∪ suppressed == find(), disjointly, for any suppression
    /// choice.
    #[test]
    fn verdict_partitions_find(
        senders in 0u64..8,
        receivers in 0u64..8,
        suppress_senders in any::<bool>(),
        suppress_receivers in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let rt = leaky_rt(senders, receivers, seed);
        let all = find(&rt, &Options::default()).len();

        let mut sup = SuppressionList::new();
        if suppress_senders {
            sup.insert("pkg.TestX$1");
        }
        if suppress_receivers {
            sup.insert("pkg.TestX$2");
        }
        let mut rt2 = leaky_rt(senders, receivers, seed);
        let verdict = verify_test_main(&mut rt2, &Options::default(), &sup);
        prop_assert_eq!(verdict.new_leaks.len() + verdict.suppressed.len(), all);
        for l in &verdict.suppressed {
            prop_assert!(sup.contains(&l.goroutine));
        }
        for l in &verdict.new_leaks {
            prop_assert!(!sup.contains(&l.goroutine));
        }
    }

    /// Classification totals match report counts, and the send/recv split
    /// matches the CSP arithmetic of the scenario.
    #[test]
    fn classification_matches_arithmetic(
        senders in 0u64..10,
        receivers in 0u64..10,
        seed in 0u64..1000,
    ) {
        let rt = leaky_rt(senders, receivers, seed);
        let leaks = find(&rt, &Options::default());
        let mut class = Classification::new();
        for l in &leaks {
            class.add_kind(l.kind);
        }
        prop_assert_eq!(class.total() as usize, leaks.len());
        let expected_send = senders.saturating_sub(receivers);
        let expected_recv = receivers.saturating_sub(senders);
        prop_assert_eq!(class.count(BlockKind::ChanSend), expected_send);
        prop_assert_eq!(class.count(BlockKind::ChanReceive), expected_recv);
    }

    /// Suppression text round-trips for arbitrary printable names.
    #[test]
    fn suppression_text_roundtrip(names in proptest::collection::btree_set("[a-zA-Z0-9_.$]{1,24}", 0..20)) {
        let sup: SuppressionList = names.iter().cloned().collect();
        let round = SuppressionList::from_text(&sup.to_text());
        prop_assert_eq!(sup, round);
    }
}
