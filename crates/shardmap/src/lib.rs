//! # shardmap — deterministic fleet sharding for collector daemons
//!
//! The paper's LEAKPROF sweeps ~200K service instances; one collector
//! cannot scrape that alone. This crate splits a fleet across N
//! collector shards with **rendezvous (highest-random-weight) hashing**
//! on the instance id: every node that evaluates
//! [`ShardMap::owner`] for the same map gets the same answer with no
//! coordination, so shard daemons can be launched independently — each
//! scrapes exactly its slice and the union covers the fleet with no
//! overlap.
//!
//! Rendezvous hashing was chosen over a modulo split for its stability
//! property: when a shard dies, *only the dead shard's instances* move
//! (each survivor keeps every instance it already won, because removing
//! a loser never changes a contest's winner). [`ShardMap::rebalanced`]
//! exploits this for failover — the merge tier marks the dark shard's
//! seat dead and publishes a new map version; survivors pick up the
//! orphaned slice without reshuffling their own.
//!
//! Maps are versioned and serializable so a topology can be pinned to a
//! file, shipped to every daemon, and audited: state dirs are tagged
//! with the [`ShardIdentity`] they were collected under, and a daemon
//! refuses to reuse a state dir tagged for a different seat.

#![warn(missing_docs)]

use std::path::Path;

use serde::{Deserialize, Serialize};

/// Current [`ShardMap`] serialization format version.
/// [`ShardMap::from_json`] rejects other formats so a daemon never
/// silently scrapes the wrong slice after a layout change.
pub const SHARDMAP_FORMAT: u32 = 1;

/// One shard seat in the map. Seats keep their index forever — a dead
/// seat stays in the vector (marked `!alive`) so shard ids are stable
/// across rebalances and state dirs never change owner retroactively.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Seat {
    /// Shard index; equals the seat's position in [`ShardMap::seats`].
    pub id: u32,
    /// Whether this seat currently owns a slice. Dead seats lose every
    /// contest, so their instances spill to the survivors.
    pub alive: bool,
}

/// A versioned, deterministic assignment of fleet instances to N
/// collector shards.
///
/// The assignment is a pure function of `(seats, instance)` — no node
/// state, no RPC — so any two processes holding the same map agree on
/// every instance. Serialize with [`ShardMap::to_json`] /
/// [`ShardMap::save`] to pin a topology to a file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Serialization format; see [`SHARDMAP_FORMAT`].
    pub format: u32,
    /// Map version; bumped by every [`ShardMap::rebalanced`] /
    /// [`ShardMap::revived`] so daemons and the merge tier can detect a
    /// topology change.
    pub version: u64,
    /// The shard seats, indexed by shard id.
    pub seats: Vec<Seat>,
}

/// The shard identity a daemon stamps into its state dir (`shard.json`)
/// and reports in `/status`: which seat of which map version collected
/// this state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardIdentity {
    /// This daemon's shard index.
    pub shard: u32,
    /// Total seats in the map (alive or dead).
    pub of: u32,
    /// The map version the slice was computed from.
    pub map_version: u64,
}

impl std::fmt::Display for ShardIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} (map v{})", self.shard, self.of, self.map_version)
    }
}

/// 64-bit FNV-1a over a byte slice — stable across platforms and runs
/// (unlike `std`'s `DefaultHasher`, which is seeded per-process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: FNV output is well-distributed in the low bits
/// but weak in avalanche; one mixing round makes the (seat, instance)
/// weights behave like independent uniform draws, which is what keeps
/// rendezvous slices balanced.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous weight of `(seat, instance)`: the contest score the
/// highest of which wins ownership.
fn weight(seat: u32, instance: &str) -> u64 {
    let mut buf = Vec::with_capacity(instance.len() + 5);
    buf.extend_from_slice(&seat.to_le_bytes());
    buf.push(0xff); // domain separator: seat id vs instance bytes
    buf.extend_from_slice(instance.as_bytes());
    mix(fnv1a(&buf))
}

impl ShardMap {
    /// Creates a fresh map with `n` alive seats (version 1).
    pub fn new(n: u32) -> ShardMap {
        ShardMap {
            format: SHARDMAP_FORMAT,
            version: 1,
            seats: (0..n).map(|id| Seat { id, alive: true }).collect(),
        }
    }

    /// Total seats in the map, alive or dead.
    pub fn total(&self) -> u32 {
        self.seats.len() as u32
    }

    /// Ids of the seats currently alive.
    pub fn alive(&self) -> Vec<u32> {
        self.seats
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.id)
            .collect()
    }

    /// Whether seat `shard` is alive.
    pub fn is_alive(&self, shard: u32) -> bool {
        self.seats
            .get(shard as usize)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// The shard that owns `instance`: the alive seat with the highest
    /// rendezvous weight. `None` only when no seat is alive.
    ///
    /// Pure and deterministic: every node holding an equal map computes
    /// the same owner for every instance.
    pub fn owner(&self, instance: &str) -> Option<u32> {
        self.seats
            .iter()
            .filter(|s| s.alive)
            .map(|s| (weight(s.id, instance), s.id))
            .max()
            .map(|(_, id)| id)
    }

    /// Whether `instance` belongs to seat `shard` under this map.
    pub fn owns(&self, shard: u32, instance: &str) -> bool {
        self.owner(instance) == Some(shard)
    }

    /// This daemon's identity under the map, for state-dir tagging.
    pub fn identity(&self, shard: u32) -> ShardIdentity {
        ShardIdentity {
            shard,
            of: self.total(),
            map_version: self.version,
        }
    }

    /// A new map version with `dead` seats marked dead. Rendezvous
    /// stability guarantees only the dead seats' instances are
    /// reassigned; every surviving seat keeps its slice.
    pub fn rebalanced(&self, dead: &[u32]) -> ShardMap {
        let mut next = self.clone();
        next.version += 1;
        for seat in &mut next.seats {
            if dead.contains(&seat.id) {
                seat.alive = false;
            }
        }
        next
    }

    /// A new map version with `back` seats marked alive again (shard
    /// recovery). The revived seats win back exactly the instances they
    /// owned before going dark.
    pub fn revived(&self, back: &[u32]) -> ShardMap {
        let mut next = self.clone();
        next.version += 1;
        for seat in &mut next.seats {
            if back.contains(&seat.id) {
                seat.alive = true;
            }
        }
        next
    }

    /// Serializes the map as pretty JSON (deterministic: field order is
    /// fixed, seats are in id order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("shardmap serializes")
    }

    /// Parses a map from JSON, rejecting unknown formats.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a format other than
    /// [`SHARDMAP_FORMAT`], or seats whose ids don't match their index.
    pub fn from_json(json: &str) -> Result<ShardMap, String> {
        let map: ShardMap =
            serde_json::from_str(json).map_err(|e| format!("malformed shard map: {e}"))?;
        if map.format != SHARDMAP_FORMAT {
            return Err(format!(
                "unsupported shard map format {} (expected {})",
                map.format, SHARDMAP_FORMAT
            ));
        }
        for (i, seat) in map.seats.iter().enumerate() {
            if seat.id != i as u32 {
                return Err(format!(
                    "seat id {} at position {i}: ids must equal their index",
                    seat.id
                ));
            }
        }
        Ok(map)
    }

    /// Writes the map to `path` atomically (tmp + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a map from `path` via [`ShardMap::from_json`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; format errors surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<ShardMap> {
        let json = std::fs::read_to_string(path)?;
        ShardMap::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("svc-{}.pod-{i}", i % 7)).collect()
    }

    #[test]
    fn every_instance_has_exactly_one_owner() {
        let map = ShardMap::new(3);
        for inst in fleet(200) {
            let owner = map.owner(&inst).expect("alive seats exist");
            assert!(owner < 3);
            assert_eq!(
                (0..3).filter(|&s| map.owns(s, &inst)).count(),
                1,
                "instance {inst} owned by exactly one shard"
            );
        }
    }

    /// The differential guarantee: two independently constructed maps
    /// (and a serialization round-trip) assign every instance
    /// identically — the property that lets shard daemons launch with
    /// no coordination.
    #[test]
    fn assignment_is_identical_on_every_node() {
        for n in [1u32, 2, 3, 5, 8] {
            let here = ShardMap::new(n);
            let there = ShardMap::new(n);
            let wire = ShardMap::from_json(&here.to_json()).expect("roundtrip");
            for inst in fleet(150) {
                assert_eq!(here.owner(&inst), there.owner(&inst), "n={n} inst={inst}");
                assert_eq!(here.owner(&inst), wire.owner(&inst), "n={n} wire {inst}");
            }
        }
    }

    /// The union of N slices is the fleet and the slices are disjoint —
    /// any partition into N shards covers everything exactly once.
    #[test]
    fn slices_partition_the_fleet() {
        let map = ShardMap::new(4);
        let fleet = fleet(300);
        let mut seen = 0usize;
        for shard in 0..4 {
            let slice: Vec<&String> = fleet.iter().filter(|i| map.owns(shard, i)).collect();
            seen += slice.len();
        }
        assert_eq!(seen, fleet.len(), "slices cover the fleet exactly once");
    }

    #[test]
    fn slices_are_roughly_balanced() {
        let map = ShardMap::new(4);
        let fleet = fleet(4000);
        for shard in 0..4 {
            let got = fleet.iter().filter(|i| map.owns(shard, i)).count();
            // Expected 1000 per shard; allow a generous ±35% band.
            assert!(
                (650..=1350).contains(&got),
                "shard {shard} owns {got} of 4000 — badly unbalanced"
            );
        }
    }

    /// Rendezvous stability: killing one seat moves only that seat's
    /// instances; every survivor keeps its slice bit-for-bit.
    #[test]
    fn rebalance_moves_only_the_dead_shards_instances() {
        let map = ShardMap::new(3);
        let fleet = fleet(500);
        let dead = 1u32;
        let next = map.rebalanced(&[dead]);
        assert_eq!(next.version, map.version + 1);
        assert!(!next.is_alive(dead));
        for inst in &fleet {
            let before = map.owner(inst).unwrap();
            let after = next.owner(inst).unwrap();
            if before != dead {
                assert_eq!(before, after, "{inst} moved despite its owner surviving");
            } else {
                assert_ne!(after, dead, "{inst} still assigned to the dead shard");
            }
        }
        // Revival restores the original assignment exactly.
        let back = next.revived(&[dead]);
        assert_eq!(back.version, next.version + 1);
        for inst in &fleet {
            assert_eq!(map.owner(inst), back.owner(inst), "{inst} after revival");
        }
    }

    #[test]
    fn no_alive_seats_means_no_owner() {
        let map = ShardMap::new(2).rebalanced(&[0, 1]);
        assert_eq!(map.owner("anything"), None);
        assert!(map.alive().is_empty());
    }

    #[test]
    fn format_and_seat_validation() {
        let mut map = ShardMap::new(2);
        map.format = SHARDMAP_FORMAT + 1;
        let err = ShardMap::from_json(&map.to_json()).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");

        let mut bad = ShardMap::new(2);
        bad.seats[1].id = 7;
        let err = ShardMap::from_json(&bad.to_json()).unwrap_err();
        assert!(err.contains("ids must equal their index"), "{err}");
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shardmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.json");
        let map = ShardMap::new(5).rebalanced(&[2]);
        map.save(&path).unwrap();
        let loaded = ShardMap::load(&path).unwrap();
        assert_eq!(map, loaded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identity_renders_for_operators() {
        let map = ShardMap::new(3);
        let id = map.identity(1);
        assert_eq!(id.to_string(), "1/3 (map v1)");
    }
}
