//! Property tests for the rendezvous assignment: for arbitrary fleets
//! and any shard count, the partition is total, disjoint, deterministic
//! across nodes, and stable under seat death.

use proptest::prelude::*;
use shardmap::ShardMap;

fn instances() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{1,12}(-[0-9]{1,4})?", 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partition of the fleet into N shards produces the same
    /// assignment on every node: independently built maps and a
    /// JSON-roundtripped map all agree, and the slices partition the
    /// fleet.
    #[test]
    fn partition_is_total_disjoint_and_node_independent(insts in instances(), n in 1u32..9) {
        let a = ShardMap::new(n);
        let b = ShardMap::new(n);
        let wire = ShardMap::from_json(&a.to_json()).unwrap();
        for inst in &insts {
            let owner = a.owner(inst).expect("alive seats");
            prop_assert!(owner < n);
            prop_assert_eq!(b.owner(inst), Some(owner));
            prop_assert_eq!(wire.owner(inst), Some(owner));
            prop_assert_eq!((0..n).filter(|&s| a.owns(s, inst)).count(), 1);
        }
    }

    /// Killing any subset of seats never moves an instance whose owner
    /// survived.
    #[test]
    fn death_never_moves_a_survivors_instance(insts in instances(), n in 2u32..8, kill_mask in 0u32..64) {
        let map = ShardMap::new(n);
        let mut dead: Vec<u32> = (0..n).filter(|s| kill_mask & (1 << s) != 0).collect();
        dead.truncate(n as usize - 1); // keep at least one survivor
        let next = map.rebalanced(&dead);
        for inst in &insts {
            let before = map.owner(inst).unwrap();
            let after = next.owner(inst).unwrap();
            if !dead.contains(&before) {
                prop_assert_eq!(before, after);
            } else {
                prop_assert!(!dead.contains(&after));
            }
        }
    }
}
