//! Crash-safety: a store killed mid-append must reopen to a consistent
//! prefix of what was written — never a parse failure, never data from
//! the torn batch, never loss of anything before it.

use timeseries::{RollupSpec, StoreConfig, TsStore};

fn config(snapshot_every: u64) -> StoreConfig {
    StoreConfig {
        raw_capacity: 256,
        rollups: vec![RollupSpec {
            step: 4,
            capacity: 256,
        }],
        snapshot_every,
    }
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ts-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes `n` batches and returns the store dir (dropped without flush,
/// so the WAL carries everything since the last automatic snapshot).
fn write_batches(dir: &std::path::Path, n: u64, snapshot_every: u64) {
    let mut s = TsStore::open(dir, config(snapshot_every)).unwrap();
    for t in 0..n {
        s.append(t, &[("rms", t as f64), ("total", 2.0 * t as f64)])
            .unwrap();
    }
}

#[test]
fn torn_trailing_wal_line_recovers_to_prefix() {
    let dir = temp_dir("torn");
    write_batches(&dir, 10, 0); // snapshot never: all 10 batches in WAL
    let wal = dir.join("wal.jsonl");
    let content = std::fs::read_to_string(&wal).unwrap();
    assert_eq!(content.lines().count(), 10);
    // Kill -9 mid-append: chop the last line in half, no newline.
    let cut = content.len() - content.lines().last().unwrap().len() / 2 - 1;
    std::fs::write(&wal, &content[..cut]).unwrap();

    let s = TsStore::open(&dir, config(0)).unwrap();
    let pts = s.query("rms", 0, 100, Some(1));
    assert_eq!(pts.len(), 9, "the torn batch is dropped, the rest survives");
    assert_eq!(pts.last().unwrap().last, 8.0);
    // Both series lose exactly the torn batch.
    assert_eq!(s.query("total", 0, 100, Some(1)).len(), 9);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_wal_corruption_is_an_error_not_silent_loss() {
    let dir = temp_dir("midwal");
    write_batches(&dir, 5, 0);
    let wal = dir.join("wal.jsonl");
    let content = std::fs::read_to_string(&wal).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    let mut patched: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    patched[2] = "{torn".into();
    std::fs::write(&wal, patched.join("\n") + "\n").unwrap();

    let err = TsStore::open(&dir, config(0)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_plus_wal_recovers_everything_after_hard_kill() {
    let dir = temp_dir("snapwal");
    // snapshot_every 4: snapshots at t=3 and t=7, WAL holds 8..=10.
    write_batches(&dir, 11, 4);
    let s = TsStore::open(&dir, config(4)).unwrap();
    let pts = s.query("rms", 0, 100, Some(1));
    assert_eq!(pts.len(), 11, "snapshot + WAL replay is lossless");
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(p.last, i as f64);
    }
    // Rollups recovered too, with the same totals as raw.
    let raw_sum: f64 = pts.iter().map(|p| p.sum).sum();
    let rolled_sum: f64 = s.query("rms", 0, 100, Some(4)).iter().map(|p| p.sum).sum();
    assert_eq!(raw_sum, rolled_sum);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_after_recovery_continues_appending() {
    let dir = temp_dir("continue");
    write_batches(&dir, 6, 0);
    {
        let mut s = TsStore::open(&dir, config(0)).unwrap();
        s.append(6, &[("rms", 6.0)]).unwrap();
        s.flush().unwrap();
    }
    // After flush the WAL is empty and the snapshot carries everything.
    let wal = std::fs::read_to_string(dir.join("wal.jsonl")).unwrap();
    assert!(wal.is_empty(), "flush truncates the WAL");
    let s = TsStore::open(&dir, config(0)).unwrap();
    assert_eq!(s.query("rms", 0, 100, Some(1)).len(), 7);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_dir_opens_fresh() {
    let dir = temp_dir("fresh");
    let s = TsStore::open(&dir, config(0)).unwrap();
    assert!(s.series_ids().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
