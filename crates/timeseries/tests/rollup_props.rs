//! Property tests for the rollup/downsample algebra.
//!
//! Values are generated as small integers cast to `f64` so sums are
//! exactly representable and the merge invariants can be asserted
//! bit-for-bit rather than within an epsilon.

use proptest::prelude::*;
use timeseries::{merge_points, AggPoint, RollupSpec, StoreConfig, TsStore};

/// Unbounded-enough config so eviction never interferes with algebra.
fn big_config(step: u64) -> StoreConfig {
    StoreConfig {
        raw_capacity: 4096,
        rollups: vec![
            RollupSpec {
                step,
                capacity: 4096,
            },
            RollupSpec {
                step: step * 8,
                capacity: 4096,
            },
        ],
        snapshot_every: 0,
    }
}

/// Time-ordered points with small-integer values.
fn points() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..200, 0u32..1000), 1..80).prop_map(|mut raw| {
        raw.sort_by_key(|(gap, _)| *gap);
        // Strictly make times non-decreasing by folding gaps.
        let mut t = 0u64;
        raw.into_iter()
            .map(|(gap, v)| {
                t += gap % 4;
                (t, v as f64)
            })
            .collect()
    })
}

fn store_with(config: &StoreConfig, pts: &[(u64, f64)]) -> TsStore {
    let mut s = TsStore::in_memory(config.clone());
    for (t, v) in pts {
        s.append(*t, &[("x", *v)]).expect("monotone append");
    }
    s
}

fn full_query(s: &TsStore, res: u64) -> Vec<AggPoint> {
    s.query("x", 0, u64::MAX, Some(res))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every bucket's mean lies within [min, max], its last within
    /// [min, max], and count matches the raw points that fell in it.
    #[test]
    fn mean_within_min_max(pts in points(), step in 2u64..16) {
        let s = store_with(&big_config(step), &pts);
        for res in s.resolutions() {
            let mut total = 0u64;
            for b in full_query(&s, res) {
                prop_assert!(b.min <= b.max);
                prop_assert!(b.mean() >= b.min - 1e-9 && b.mean() <= b.max + 1e-9,
                    "mean {} outside [{}, {}]", b.mean(), b.min, b.max);
                prop_assert!(b.last >= b.min && b.last <= b.max);
                prop_assert!(b.count > 0, "no empty buckets may be returned");
                total += b.count;
            }
            prop_assert_eq!(total, pts.len() as u64, "every point lands in exactly one bucket at res {}", res);
        }
    }

    /// Rollup of a concatenation == merge of the rollups: ingesting
    /// xs++ys into one store equals merging the buckets of a store of
    /// xs with those of a store of ys. (The shard-merge invariant;
    /// raw resolution is excluded because raw points at an equal time
    /// deliberately stay separate rather than bucketing.)
    #[test]
    fn rollup_of_concat_is_merge_of_rollups(pts in points(), cut in 0usize..80, step in 2u64..16) {
        let config = big_config(step);
        let cut = cut.min(pts.len());
        let (xs, ys) = pts.split_at(cut);
        let whole = store_with(&config, &pts);
        let a = store_with(&config, xs);
        let b = store_with(&config, ys);
        for res in whole.resolutions().into_iter().filter(|r| *r > 1) {
            let merged = merge_points(&full_query(&a, res), &full_query(&b, res));
            prop_assert_eq!(full_query(&whole, res), merged, "res {}", res);
        }
    }

    /// Queries never fabricate: every returned bucket start is the
    /// aligned bucket of at least one appended point, every bucket
    /// intersects the query range, and an aligned range query returns
    /// exactly the buckets the appended data populates.
    #[test]
    fn query_never_fabricates_points(pts in points(), step in 2u64..16, from in 0u64..100, len in 0u64..100) {
        let s = store_with(&big_config(step), &pts);
        let to = from + len;
        for res in s.resolutions() {
            for b in s.query("x", from, to, Some(res)) {
                prop_assert_eq!(b.t % res, 0, "bucket start aligned to res {}", res);
                prop_assert!(b.t + res > from && b.t <= to, "bucket {} outside [{from}, {to}]", b.t);
                prop_assert!(
                    pts.iter().any(|(t, _)| t - t % res == b.t),
                    "bucket {} has no underlying point at res {}", b.t, res
                );
            }
        }
    }

    /// Auto-picked resolution returns a subset of some explicit
    /// resolution's answer — auto never invents data either.
    #[test]
    fn auto_resolution_matches_an_explicit_one(pts in points(), from in 0u64..100) {
        let s = store_with(&big_config(4), &pts);
        let auto = s.query("x", from, u64::MAX, None);
        let explicit: Vec<Vec<AggPoint>> = s
            .resolutions()
            .into_iter()
            .map(|r| s.query("x", from, u64::MAX, Some(r)))
            .collect();
        prop_assert!(
            explicit.iter().any(|e| e == &auto),
            "auto answer matches no explicit resolution"
        );
    }
}
