//! Property tests for the store-level shard merge: partitioning a
//! fleet's series across shard stores — or splitting one series'
//! timeline across shards — and merging back reproduces the
//! whole-fleet store at every resolution.

use proptest::prelude::*;
use timeseries::{AggPoint, RollupSpec, StoreConfig, TsStore};

fn big_config(step: u64) -> StoreConfig {
    StoreConfig {
        raw_capacity: 4096,
        rollups: vec![
            RollupSpec {
                step,
                capacity: 4096,
            },
            RollupSpec {
                step: step * 8,
                capacity: 4096,
            },
        ],
        snapshot_every: 0,
    }
}

/// Strictly increasing times so raw points never collide across a
/// time split (equal-t raw points combine on merge by design, which
/// single-store ingestion deliberately does not do).
fn points() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..3, 0u32..1000), 1..60).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(gap, v)| {
                t += gap + 1;
                (t, v as f64)
            })
            .collect()
    })
}

fn queries(s: &TsStore, id: &str) -> Vec<(u64, Vec<AggPoint>)> {
    s.resolutions()
        .into_iter()
        .map(|res| (res, s.query(id, 0, u64::MAX, Some(res))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shards own disjoint series (the real fleet partition: each
    /// instance's series live on its owner shard). Merging the shard
    /// stores in any order reproduces the whole store at every
    /// resolution, raw included.
    #[test]
    fn series_partition_merges_to_the_whole_store(
        a_pts in points(), b_pts in points(), c_pts in points(), step in 2u64..10,
    ) {
        let config = big_config(step);
        let mut whole = TsStore::in_memory(config.clone());
        let series: [(&str, &Vec<(u64, f64)>); 3] =
            [("s0", &a_pts), ("s1", &b_pts), ("s2", &c_pts)];
        let mut shards = Vec::new();
        for (id, pts) in series {
            let mut shard = TsStore::in_memory(config.clone());
            for (t, v) in pts {
                whole.append(*t, &[(id, *v)]).unwrap();
                shard.append(*t, &[(id, *v)]).unwrap();
            }
            shards.push(shard);
        }
        let mut fwd = TsStore::in_memory(config.clone());
        for s in &shards {
            fwd.merge(s).unwrap();
        }
        let mut rev = TsStore::in_memory(config.clone());
        for s in shards.iter().rev() {
            rev.merge(s).unwrap();
        }
        prop_assert_eq!(fwd.series_ids(), whole.series_ids());
        prop_assert_eq!(rev.series_ids(), whole.series_ids());
        for (id, _) in series {
            prop_assert_eq!(queries(&fwd, id), queries(&whole, id), "forward, series {}", id);
            prop_assert_eq!(queries(&rev, id), queries(&whole, id), "reverse, series {}", id);
            prop_assert_eq!(fwd.first_t(id), whole.first_t(id));
            prop_assert_eq!(fwd.last_t(id), whole.last_t(id));
        }
    }

    /// One series' timeline split at an arbitrary cut across two
    /// stores: merging oldest-first reproduces the whole store at
    /// every resolution, even when the cut lands mid-bucket.
    #[test]
    fn time_split_merges_to_the_whole_store(pts in points(), cut in 0usize..60, step in 2u64..10) {
        let config = big_config(step);
        let cut = cut.min(pts.len());
        let mut whole = TsStore::in_memory(config.clone());
        let mut early = TsStore::in_memory(config.clone());
        let mut late = TsStore::in_memory(config.clone());
        for (i, (t, v)) in pts.iter().enumerate() {
            whole.append(*t, &[("x", *v)]).unwrap();
            if i < cut {
                early.append(*t, &[("x", *v)]).unwrap();
            } else {
                late.append(*t, &[("x", *v)]).unwrap();
            }
        }
        let mut merged = TsStore::in_memory(config);
        merged.merge(&early).unwrap();
        merged.merge(&late).unwrap();
        prop_assert_eq!(queries(&merged, "x"), queries(&whole, "x"));
        prop_assert_eq!(merged.first_t("x"), whole.first_t("x"));
        prop_assert_eq!(merged.last_t("x"), whole.last_t("x"));
        // The merged store keeps absorbing appends exactly like the
        // whole store (the open bucket survived the merge open).
        if let Some(last) = whole.last_t("x") {
            let mut m2 = merged;
            let mut w2 = whole;
            m2.append(last + 1, &[("x", 17.0)]).unwrap();
            w2.append(last + 1, &[("x", 17.0)]).unwrap();
            prop_assert_eq!(queries(&m2, "x"), queries(&w2, "x"), "post-merge append diverged");
        }
    }
}
