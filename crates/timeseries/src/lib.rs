//! Embedded multi-resolution time-series storage for fleet health.
//!
//! The paper's most persuasive evidence is longitudinal — the 25-week
//! GOLEAK backtest (Fig 5), the post-fix blocked-goroutine decay
//! (Fig 6), the fleet-wide resource trends (Figs 1/2). This crate gives
//! `leakprofd` the across-cycle substrate those figures need: an
//! RRD-style store holding every telemetry series (per-site RMS and
//! totals, per-instance blocked counts, per-stage latencies, the scrape
//! interval itself) at multiple resolutions, plus the trend engine that
//! turns raw counts into *verdicts* — is this site improving, flat, or
//! regressing — the way LeakProf turns raw profiles into ranked
//! reports instead of dumping them on the operator.
//!
//! * [`store`] — append-only per-series segments with configurable
//!   rollup rings (raw → coarser steps, downsampled by
//!   min/max/mean/last), bounded memory, atomic tmp+rename snapshots
//!   plus a per-append WAL under a state directory, and a query API
//!   with automatic resolution selection.
//! * [`trend`] — windowed linear-regression slope, z-score step-change
//!   anomaly detection, and the improving/flat/regressing
//!   classification served at `/health` and replayed by
//!   `leakprofd backtest`.
//!
//! The time axis is a caller-supplied monotone `u64` (the daemon uses
//! its cycle counter): analysis over persisted data is therefore fully
//! deterministic, which is what lets an offline backtest reproduce the
//! online classification byte-for-byte even across a `kill -9`.

#![warn(missing_docs)]

pub mod store;
pub mod trend;

pub use store::{merge_points, AggPoint, RollupSpec, StoreConfig, TsStore, STORE_VERSION};
pub use trend::{analyze_trend, Trend, TrendClass, TrendConfig};
