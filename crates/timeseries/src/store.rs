//! The multi-resolution store.
//!
//! Layout per series: one bounded ring of raw points plus one bounded
//! ring per configured rollup resolution. A rollup ring holds *sealed*
//! buckets (their time window has passed) and at most one *open* bucket
//! still absorbing points. Appends must be monotone in time per series
//! — the daemon's cycle counter is — which keeps every downsample a
//! single fold and makes rollups mergeable across stores (the same
//! algebra `FleetAccumulator::merge` relies on for sharding).
//!
//! Durability mirrors the daemon's snapshot+WAL scheme: every append
//! batch is written to `wal.jsonl` (flushed) before it is applied, and
//! every `snapshot_every` batches the whole store is rewritten to
//! `store.json` via tmp+rename and the WAL truncated. Recovery loads
//! the snapshot, replays the WAL, and tolerates exactly one torn
//! trailing WAL line — the signature of a crash mid-append.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// On-disk snapshot format version.
pub const STORE_VERSION: u32 = 1;

/// One rollup resolution: buckets of `step` time units, keeping the
/// most recent `capacity` sealed buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollupSpec {
    /// Bucket width in time units (daemon: cycles). Must be ≥ 2.
    pub step: u64,
    /// Sealed buckets retained (oldest evicted beyond this).
    pub capacity: usize,
}

/// Store tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Raw points retained per series.
    pub raw_capacity: usize,
    /// Rollup rings, finest first. Steps must be strictly increasing.
    pub rollups: Vec<RollupSpec>,
    /// Snapshot (and truncate the WAL) every this many append batches;
    /// 0 snapshots only on explicit [`TsStore::flush`].
    pub snapshot_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            // At a 1s scrape interval this is ~8.5 min of raw points,
            // ~1.8 h at step 8, ~14 h at step 64 — the raw@interval →
            // 1m → 15m → 4h ladder scaled to cycle units.
            raw_capacity: 512,
            rollups: vec![
                RollupSpec {
                    step: 8,
                    capacity: 512,
                },
                RollupSpec {
                    step: 64,
                    capacity: 512,
                },
            ],
            snapshot_every: 32,
        }
    }
}

/// One downsampled bucket (or one raw point, where `min == max ==
/// last` and `count == 1`). The mean is derived from `sum`/`count` so
/// merging buckets stays exact for integral values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggPoint {
    /// Bucket start (raw points: the point's own time).
    pub t: u64,
    /// Minimum value in the bucket.
    pub min: f64,
    /// Maximum value in the bucket.
    pub max: f64,
    /// Sum of values (mean = sum / count).
    pub sum: f64,
    /// Most recent value in the bucket.
    pub last: f64,
    /// Points folded into the bucket.
    pub count: u64,
}

impl AggPoint {
    /// A bucket holding a single raw point.
    pub fn raw(t: u64, v: f64) -> AggPoint {
        AggPoint {
            t,
            min: v,
            max: v,
            sum: v,
            last: v,
            count: 1,
        }
    }

    /// Arithmetic mean of the bucket.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds a later point into this bucket.
    fn fold(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.last = v;
        self.count += 1;
    }

    /// Combines this bucket with a *later* bucket covering the same
    /// window (used when merging per-shard stores).
    fn combine(&mut self, later: &AggPoint) {
        self.min = self.min.min(later.min);
        self.max = self.max.max(later.max);
        self.sum += later.sum;
        self.last = later.last;
        self.count += later.count;
    }
}

/// Merges two time-ordered bucket lists (`b` later than or interleaved
/// with `a`); buckets sharing a start are combined. This is the shard
/// merge op: `rollup(xs ++ ys) == merge(rollup(xs), rollup(ys))` for
/// time-ordered inputs, an invariant pinned by the property tests.
pub fn merge_points(a: &[AggPoint], b: &[AggPoint]) -> Vec<AggPoint> {
    let mut by_t: BTreeMap<u64, AggPoint> = BTreeMap::new();
    for p in a.iter().chain(b) {
        match by_t.get_mut(&p.t) {
            Some(existing) => existing.combine(p),
            None => {
                by_t.insert(p.t, p.clone());
            }
        }
    }
    by_t.into_values().collect()
}

/// One rollup ring: sealed buckets plus the still-open one.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RollupRing {
    step: u64,
    capacity: usize,
    sealed: VecDeque<AggPoint>,
    open: Option<AggPoint>,
}

impl RollupRing {
    fn new(spec: &RollupSpec) -> RollupRing {
        RollupRing {
            step: spec.step,
            capacity: spec.capacity.max(1),
            sealed: VecDeque::new(),
            open: None,
        }
    }

    fn push(&mut self, t: u64, v: f64) {
        let bucket = t - t % self.step;
        match &mut self.open {
            Some(open) if open.t == bucket => open.fold(v),
            Some(open) => {
                debug_assert!(open.t < bucket, "appends are monotone");
                let sealed = std::mem::replace(open, AggPoint::raw(bucket, v));
                sealed_push(&mut self.sealed, sealed, self.capacity);
            }
            None => self.open = Some(AggPoint::raw(bucket, v)),
        }
    }

    /// Sealed + open buckets whose window intersects `[from, to]`.
    fn query(&self, from: u64, to: u64) -> Vec<AggPoint> {
        self.sealed
            .iter()
            .chain(self.open.iter())
            .filter(|p| p.t + self.step > from && p.t <= to)
            .cloned()
            .collect()
    }

    /// Start of the oldest retained bucket, if any.
    fn oldest(&self) -> Option<u64> {
        self.sealed.front().or(self.open.as_ref()).map(|p| p.t)
    }
}

fn sealed_push(ring: &mut VecDeque<AggPoint>, p: AggPoint, capacity: usize) {
    if ring.len() == capacity {
        ring.pop_front();
    }
    ring.push_back(p);
}

/// One series: raw ring + rollup rings.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Series {
    raw: VecDeque<AggPoint>,
    rollups: Vec<RollupRing>,
    first_t: u64,
    last_t: u64,
}

impl Series {
    fn new(config: &StoreConfig) -> Series {
        Series {
            raw: VecDeque::new(),
            rollups: config.rollups.iter().map(RollupRing::new).collect(),
            first_t: u64::MAX,
            last_t: 0,
        }
    }

    /// Re-trims every ring to `config`'s capacities (newest kept), for
    /// a series adopted from another store during a merge.
    fn trim(&mut self, config: &StoreConfig) {
        while self.raw.len() > config.raw_capacity {
            self.raw.pop_front();
        }
        for (ring, spec) in self.rollups.iter_mut().zip(&config.rollups) {
            ring.capacity = spec.capacity.max(1);
            while ring.sealed.len() > ring.capacity {
                ring.sealed.pop_front();
            }
        }
    }

    /// Merges `other` (same rollup steps) into this series under the
    /// bucket algebra; `other`'s values win `last` on shared buckets.
    fn merge_from(&mut self, other: &Series, config: &StoreConfig) {
        let mine: Vec<AggPoint> = self.raw.iter().cloned().collect();
        let theirs: Vec<AggPoint> = other.raw.iter().cloned().collect();
        let mut raw: VecDeque<AggPoint> = merge_points(&mine, &theirs).into();
        while raw.len() > config.raw_capacity {
            raw.pop_front();
        }
        self.raw = raw;
        for (ring, other_ring) in self.rollups.iter_mut().zip(&other.rollups) {
            debug_assert_eq!(ring.step, other_ring.step);
            let mine: Vec<AggPoint> = ring
                .sealed
                .iter()
                .chain(ring.open.iter())
                .cloned()
                .collect();
            let theirs: Vec<AggPoint> = other_ring
                .sealed
                .iter()
                .chain(other_ring.open.iter())
                .cloned()
                .collect();
            let mut merged: VecDeque<AggPoint> = merge_points(&mine, &theirs).into();
            // The newest merged bucket stays open only if it was open
            // in an input — it may still absorb appends; every earlier
            // bucket's window has passed.
            let open_ts: Vec<u64> = ring
                .open
                .iter()
                .chain(other_ring.open.iter())
                .map(|p| p.t)
                .collect();
            ring.open = match merged.back() {
                Some(last) if open_ts.contains(&last.t) => merged.pop_back(),
                _ => None,
            };
            while merged.len() > ring.capacity {
                merged.pop_front();
            }
            ring.sealed = merged;
        }
        self.first_t = self.first_t.min(other.first_t);
        self.last_t = self.last_t.max(other.last_t);
    }
}

/// One WAL line: every point appended at one time step.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WalBatch {
    t: u64,
    points: Vec<(String, f64)>,
}

/// Full-store snapshot (tmp+rename on write).
#[derive(Debug, Serialize, Deserialize)]
struct StoreSnapshot {
    version: u32,
    config: StoreConfig,
    series: Vec<(String, Series)>,
}

/// The embedded multi-resolution time-series store.
#[derive(Debug)]
pub struct TsStore {
    config: StoreConfig,
    series: BTreeMap<String, Series>,
    dir: Option<PathBuf>,
    appends_since_snapshot: u64,
    appended_total: u64,
}

impl TsStore {
    /// A purely in-memory store (no persistence; a daemon without
    /// `--state-dir` still gets trends and adaptivity).
    pub fn in_memory(config: StoreConfig) -> TsStore {
        TsStore {
            config,
            series: BTreeMap::new(),
            dir: None,
            appends_since_snapshot: 0,
            appended_total: 0,
        }
    }

    /// Opens (or creates) a durable store under `dir`, recovering
    /// snapshot + WAL left by a previous process. A torn trailing WAL
    /// line (crash mid-append) is discarded with a warning; corruption
    /// anywhere else fails the open with
    /// [`std::io::ErrorKind::InvalidData`].
    ///
    /// # Errors
    ///
    /// IO errors creating the directory or reading existing state, or
    /// `InvalidData` for mid-file corruption / an unsupported version.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> std::io::Result<TsStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut store = TsStore {
            config,
            series: BTreeMap::new(),
            dir: None, // filled in after recovery so replay skips the WAL
            appends_since_snapshot: 0,
            appended_total: 0,
        };
        let snap_path = dir.join("store.json");
        if snap_path.exists() {
            let bytes = std::fs::read_to_string(&snap_path)?;
            let snap: StoreSnapshot = serde_json::from_str(&bytes).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: corrupt store snapshot: {e}", snap_path.display()),
                )
            })?;
            if snap.version != STORE_VERSION {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: store version {} unsupported (want {STORE_VERSION})",
                        snap_path.display(),
                        snap.version
                    ),
                ));
            }
            store.series = snap.series.into_iter().collect();
        }
        // Replay WAL batches written after the snapshot.
        let wal_path = dir.join("wal.jsonl");
        if wal_path.exists() {
            let content = std::fs::read_to_string(&wal_path)?;
            let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
            for (i, line) in lines.iter().enumerate() {
                match serde_json::from_str::<WalBatch>(line) {
                    Ok(batch) => {
                        let points: Vec<(&str, f64)> = batch
                            .points
                            .iter()
                            .map(|(id, v)| (id.as_str(), *v))
                            .collect();
                        store.apply_batch(batch.t, &points);
                    }
                    Err(e) if i + 1 == lines.len() => {
                        eprintln!(
                            "timeseries: {}: discarded torn trailing batch (crash mid-append?): {e}",
                            wal_path.display()
                        );
                    }
                    Err(e) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!(
                                "{}: corrupt batch on line {} of {}: {e}",
                                wal_path.display(),
                                i + 1,
                                lines.len()
                            ),
                        ));
                    }
                }
            }
        }
        store.dir = Some(dir);
        Ok(store)
    }

    /// Appends one batch of `(series id, value)` points at time `t`.
    /// Times must be monotone non-decreasing per series; a point older
    /// than its series' newest is rejected. With persistence on, the
    /// batch hits the WAL (flushed) *before* it is applied, so a crash
    /// at any instant loses at most the in-flight batch.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for out-of-order appends; IO errors from the WAL
    /// (the batch is still applied in memory).
    pub fn append(&mut self, t: u64, points: &[(&str, f64)]) -> std::io::Result<()> {
        for (id, _) in points {
            if let Some(s) = self.series.get(*id) {
                if t < s.last_t {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("series {id}: append at t={t} behind newest t={}", s.last_t),
                    ));
                }
            }
        }
        let mut wal_err = None;
        if let Some(dir) = &self.dir {
            let batch = WalBatch {
                t,
                points: points.iter().map(|(id, v)| (id.to_string(), *v)).collect(),
            };
            let line = serde_json::to_string(&batch).expect("batch serializes");
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("wal.jsonl"))
                .and_then(|mut f| {
                    writeln!(f, "{line}")?;
                    f.flush()
                });
            if let Err(e) = result {
                wal_err = Some(e);
            }
        }
        self.apply_batch(t, points);
        self.appends_since_snapshot += 1;
        self.appended_total += 1;
        if self.config.snapshot_every > 0
            && self.appends_since_snapshot >= self.config.snapshot_every
        {
            self.flush()?;
        }
        match wal_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn apply_batch(&mut self, t: u64, points: &[(&str, f64)]) {
        for (id, v) in points {
            let series = self
                .series
                .entry(id.to_string())
                .or_insert_with(|| Series::new(&self.config));
            if t < series.last_t {
                continue; // WAL replay of pre-snapshot batches
            }
            series.first_t = series.first_t.min(t);
            series.last_t = t;
            sealed_push(
                &mut series.raw,
                AggPoint::raw(t, *v),
                self.config.raw_capacity,
            );
            for ring in &mut series.rollups {
                ring.push(t, *v);
            }
        }
    }

    /// Rewrites the snapshot (tmp+rename) and truncates the WAL. No-op
    /// in memory-only mode.
    ///
    /// # Errors
    ///
    /// IO errors writing the snapshot.
    pub fn flush(&mut self) -> std::io::Result<()> {
        let Some(dir) = &self.dir else {
            self.appends_since_snapshot = 0;
            return Ok(());
        };
        let snap = StoreSnapshot {
            version: STORE_VERSION,
            config: self.config.clone(),
            series: self
                .series
                .iter()
                .map(|(id, s)| (id.clone(), s.clone()))
                .collect(),
        };
        let tmp = dir.join("store.json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(
                serde_json::to_string(&snap)
                    .expect("snapshot serializes")
                    .as_bytes(),
            )?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dir.join("store.json"))?;
        // WAL content is now covered by the snapshot.
        std::fs::write(dir.join("wal.jsonl"), b"")?;
        self.appends_since_snapshot = 0;
        Ok(())
    }

    /// Folds every series of `other` into this store — the store-level
    /// shard merge. Series present only in `other` are adopted (rings
    /// re-trimmed to this store's capacities); series present in both
    /// merge ring-by-ring under the [`merge_points`] algebra, so
    /// min/max/sum/count of every bucket at every resolution equal
    /// what one store ingesting both streams would hold. Raw points at
    /// an equal time combine into one bucket. On buckets covered by
    /// both stores, `last` takes `other`'s value — fold shards oldest
    /// first (the merge tier folds in shard order) for a deterministic
    /// result.
    ///
    /// Merged data bypasses the WAL; call [`TsStore::flush`] to persist
    /// a merged durable store.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the stores' rollup steps differ — buckets of
    /// unequal widths have no lossless merge.
    pub fn merge(&mut self, other: &TsStore) -> std::io::Result<()> {
        let my_steps: Vec<u64> = self.config.rollups.iter().map(|r| r.step).collect();
        let their_steps: Vec<u64> = other.config.rollups.iter().map(|r| r.step).collect();
        if my_steps != their_steps {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("rollup steps differ: {my_steps:?} vs {their_steps:?}"),
            ));
        }
        for (id, theirs) in &other.series {
            match self.series.get_mut(id) {
                None => {
                    let mut adopted = theirs.clone();
                    adopted.trim(&self.config);
                    self.series.insert(id.clone(), adopted);
                }
                Some(mine) => mine.merge_from(theirs, &self.config),
            }
        }
        Ok(())
    }

    /// All series ids, sorted.
    pub fn series_ids(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Total append batches over this store handle's lifetime.
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// The newest time appended to `id` (None for an unknown series).
    pub fn last_t(&self, id: &str) -> Option<u64> {
        self.series.get(id).map(|s| s.last_t)
    }

    /// The first time ever appended to `id` (None for an unknown
    /// series) — the series' true start even after old points rotate
    /// out of every ring.
    pub fn first_t(&self, id: &str) -> Option<u64> {
        self.series
            .get(id)
            .map(|s| s.first_t)
            .filter(|t| *t != u64::MAX)
    }

    /// Available resolutions (step 1 = raw, then the rollup steps).
    pub fn resolutions(&self) -> Vec<u64> {
        let mut steps = vec![1];
        steps.extend(self.config.rollups.iter().map(|r| r.step));
        steps
    }

    /// Queries `[from, to]` at resolution `res` (a step from
    /// [`TsStore::resolutions`]; other values snap to the next coarser
    /// step). `None` auto-picks: the finest resolution whose retention
    /// still covers `from`, falling back to the coarsest. Returns only
    /// buckets real points landed in — never fabricates.
    pub fn query(&self, id: &str, from: u64, to: u64, res: Option<u64>) -> Vec<AggPoint> {
        let Some(series) = self.series.get(id) else {
            return Vec::new();
        };
        let step = self.resolution_for(id, from, res);
        if step == 1 {
            return series
                .raw
                .iter()
                .filter(|p| p.t >= from && p.t <= to)
                .cloned()
                .collect();
        }
        series
            .rollups
            .iter()
            .find(|r| r.step == step)
            .map(|r| r.query(from, to))
            .unwrap_or_default()
    }

    /// The last recorded value of `id` at or before time `t` (`None`
    /// for an unknown series or for `t` before the series' first
    /// point — a rollup bucket's span can start earlier than any data
    /// in it, and answering from one would leak later values backward
    /// in time). Raw points answer exactly; once `t` has rotated out
    /// of the raw ring the finest rollup still covering it answers
    /// with its closing `last` value — the best surviving
    /// approximation. This is how the flame tier resolves
    /// `?from=&to=` differential windows to per-site blocked counts.
    pub fn value_at(&self, id: &str, t: u64) -> Option<f64> {
        let series = self.series.get(id)?;
        if t < series.first_t {
            return None;
        }
        if let Some(p) = series.raw.iter().rev().find(|p| p.t <= t) {
            return Some(p.last);
        }
        series
            .rollups
            .iter()
            .find_map(|ring| ring.query(0, t).last().map(|b| b.last))
    }

    /// The most recent `n` raw values of `id`, oldest first (for
    /// sparklines and trend windows).
    pub fn recent(&self, id: &str, n: usize) -> Vec<(u64, f64)> {
        let Some(series) = self.series.get(id) else {
            return Vec::new();
        };
        let skip = series.raw.len().saturating_sub(n);
        series
            .raw
            .iter()
            .skip(skip)
            .map(|p| (p.t, p.last))
            .collect()
    }

    /// The resolution [`TsStore::query`] answers at for this request —
    /// exposed so an API layer can report which step a `res=None`
    /// query was served from. Unknown series answer 1.
    pub fn resolution_for(&self, id: &str, from: u64, res: Option<u64>) -> u64 {
        let Some(series) = self.series.get(id) else {
            return 1;
        };
        match res {
            Some(want) => self
                .resolutions()
                .into_iter()
                .find(|s| *s >= want)
                .unwrap_or_else(|| self.resolutions().last().copied().unwrap_or(1)),
            None => self.auto_resolution(series, from),
        }
    }

    fn auto_resolution(&self, series: &Series, from: u64) -> u64 {
        if series.raw.front().is_some_and(|p| p.t <= from) {
            return 1;
        }
        for ring in &series.rollups {
            if ring.oldest().is_some_and(|t| t <= from) {
                return ring.step;
            }
        }
        self.resolutions().last().copied().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(raw: usize, steps: &[(u64, usize)]) -> StoreConfig {
        StoreConfig {
            raw_capacity: raw,
            rollups: steps
                .iter()
                .map(|(step, capacity)| RollupSpec {
                    step: *step,
                    capacity: *capacity,
                })
                .collect(),
            snapshot_every: 0,
        }
    }

    #[test]
    fn raw_and_rollup_queries_agree_on_totals() {
        let mut s = TsStore::in_memory(cfg(1024, &[(4, 1024)]));
        for t in 0..40u64 {
            s.append(t, &[("x", t as f64)]).unwrap();
        }
        let raw = s.query("x", 0, 39, Some(1));
        assert_eq!(raw.len(), 40);
        let rolled = s.query("x", 0, 39, Some(4));
        assert_eq!(rolled.len(), 10);
        let raw_sum: f64 = raw.iter().map(|p| p.sum).sum();
        let rolled_sum: f64 = rolled.iter().map(|p| p.sum).sum();
        assert_eq!(raw_sum, rolled_sum);
        assert_eq!(rolled[0].min, 0.0);
        assert_eq!(rolled[0].max, 3.0);
        assert_eq!(rolled[0].last, 3.0);
        assert_eq!(rolled[0].mean(), 1.5);
    }

    #[test]
    fn auto_resolution_degrades_with_age() {
        // Raw keeps 8 points, step-4 rollup keeps everything.
        let mut s = TsStore::in_memory(cfg(8, &[(4, 1024)]));
        for t in 0..64u64 {
            s.append(t, &[("x", 1.0)]).unwrap();
        }
        // Recent range: raw resolution.
        let recent = s.query("x", 60, 63, None);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].count, 1);
        // Old range: raw ring no longer covers it → step-4 buckets.
        let old = s.query("x", 0, 63, None);
        assert!(old.iter().all(|p| p.t % 4 == 0));
        assert_eq!(old.len(), 16);
    }

    #[test]
    fn value_at_answers_raw_then_degrades_to_rollups() {
        let mut s = TsStore::in_memory(cfg(8, &[(4, 1024)]));
        for t in 0..64u64 {
            s.append(t, &[("x", t as f64 * 10.0)]).unwrap();
        }
        assert_eq!(s.value_at("x", 63), Some(630.0));
        assert_eq!(s.value_at("x", 60), Some(600.0), "exact from raw");
        assert_eq!(s.value_at("x", 100), Some(630.0), "future clamps to last");
        // t=30 rotated out of the 8-slot raw ring: the covering step-4
        // bucket [28,32) answers with its closing value.
        assert_eq!(s.value_at("x", 30), Some(310.0));
        assert_eq!(s.value_at("y", 5), None, "unknown series");
        let empty = TsStore::in_memory(cfg(8, &[]));
        assert_eq!(empty.value_at("x", 5), None);

        // A series starting late answers None before its first point,
        // even though its open rollup bucket's span reaches back to 0 —
        // later values must never leak backward in time.
        let mut late = TsStore::in_memory(cfg(8, &[(4, 1024)]));
        for t in 3..6u64 {
            late.append(t, &[("z", t as f64)]).unwrap();
        }
        assert_eq!(late.value_at("z", 2), None, "before first point");
        assert_eq!(late.value_at("z", 3), Some(3.0));
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let mut s = TsStore::in_memory(cfg(8, &[]));
        s.append(5, &[("x", 1.0)]).unwrap();
        let err = s.append(3, &[("x", 1.0)]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Equal time is fine (two points in the same cycle).
        s.append(5, &[("x", 2.0)]).unwrap();
        assert_eq!(s.query("x", 0, 10, Some(1)).len(), 2);
    }

    #[test]
    fn persistence_roundtrips_and_replays_wal() {
        let dir = std::env::temp_dir().join(format!("tsstore-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = cfg(64, &[(4, 64)]);
        config.snapshot_every = 4; // snapshot at t=3, WAL holds 4..6
        {
            let mut s = TsStore::open(&dir, config.clone()).unwrap();
            for t in 0..7u64 {
                s.append(t, &[("a", t as f64), ("b", -(t as f64))]).unwrap();
            }
        } // dropped without flush: WAL carries the tail
        let s = TsStore::open(&dir, config).unwrap();
        assert_eq!(s.query("a", 0, 10, Some(1)).len(), 7);
        assert_eq!(s.query("b", 0, 10, Some(1)).len(), 7);
        assert_eq!(s.query("a", 6, 6, Some(1))[0].last, 6.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_rejects_mismatched_rollup_steps() {
        let mut a = TsStore::in_memory(cfg(8, &[(4, 8)]));
        let b = TsStore::in_memory(cfg(8, &[(5, 8)]));
        assert_eq!(
            a.merge(&b).unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn merge_trims_adopted_series_to_own_capacities() {
        let mut big = TsStore::in_memory(cfg(64, &[(4, 64)]));
        for t in 0..32u64 {
            big.append(t, &[("x", t as f64)]).unwrap();
        }
        let mut small = TsStore::in_memory(cfg(4, &[(4, 2)]));
        small.merge(&big).unwrap();
        assert_eq!(small.query("x", 0, u64::MAX, Some(1)).len(), 4);
        // 2 sealed buckets + the open one survive.
        assert_eq!(small.query("x", 0, u64::MAX, Some(4)).len(), 3);
        assert_eq!(small.last_t("x"), Some(31));
    }

    #[test]
    fn unknown_series_and_empty_ranges_are_empty() {
        let mut s = TsStore::in_memory(cfg(8, &[(4, 8)]));
        assert!(s.query("nope", 0, 100, None).is_empty());
        s.append(10, &[("x", 1.0)]).unwrap();
        assert!(s.query("x", 20, 30, Some(1)).is_empty());
        assert!(s.query("x", 0, 5, Some(4)).is_empty());
    }
}
